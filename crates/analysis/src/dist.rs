//! Probability distributions: normal, lognormal, exponential.
//!
//! Each distribution offers `pdf` / `cdf` / `quantile` / `sample` plus a
//! moment-based `fit` constructor. The retention simulator uses:
//!
//! * [`Normal`] — per-cell failure CDF vs. refresh interval (paper Fig. 6a),
//! * [`LogNormal`] — per-cell CDF spread σ (Fig. 6b) and the weak-cell
//!   retention-time tail (Hamamoto-style),
//! * [`Exponential`] — memoryless VRT state dwell times (paper §2.3.1).

use crate::special::{phi, phi_inv};
use crate::{AnalysisError, Result};
use rand::Rng;

/// Normal (Gaussian) distribution `N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution with mean `mu` and standard deviation
    /// `sigma`.
    ///
    /// # Errors
    /// Returns [`AnalysisError::InvalidParameter`] if `sigma` is not a
    /// positive finite number or `mu` is not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(AnalysisError::InvalidParameter {
                name: "mu",
                reason: "must be finite",
            });
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(AnalysisError::InvalidParameter {
                name: "sigma",
                reason: "must be positive and finite",
            });
        }
        Ok(Self { mu, sigma })
    }

    /// Mean of the distribution.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Standard deviation of the distribution.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * core::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        phi((x - self.mu) / self.sigma)
    }

    /// Quantile (inverse CDF) at probability `p ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mu + self.sigma * phi_inv(p)
    }

    /// Draws one sample using the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * standard_normal(rng)
    }

    /// Fits a normal by the sample mean and (population) standard deviation.
    ///
    /// # Errors
    /// Returns [`AnalysisError::InsufficientData`] for fewer than 2 points,
    /// or [`AnalysisError::InvalidParameter`] if the data has zero variance.
    pub fn fit(data: &[f64]) -> Result<Self> {
        if data.len() < 2 {
            return Err(AnalysisError::InsufficientData {
                needed: 2,
                got: data.len(),
            });
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Normal::new(mean, var.sqrt())
    }
}

/// Draws one standard-normal sample via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > 0.0 {
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (2.0 * core::f64::consts::PI * u2).cos();
        }
    }
}

/// Lognormal distribution: `ln X ~ N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    log: Normal,
}

impl LogNormal {
    /// Creates a lognormal whose *logarithm* has mean `mu` and standard
    /// deviation `sigma`.
    ///
    /// # Errors
    /// Same conditions as [`Normal::new`].
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        Ok(Self {
            log: Normal::new(mu, sigma)?,
        })
    }

    /// Creates a lognormal from its **median** and the standard deviation of
    /// its logarithm. The median parameterization is the natural one for
    /// retention-time tails ("median cell retains for X seconds").
    ///
    /// # Errors
    /// Returns [`AnalysisError::InvalidParameter`] if `median <= 0` or
    /// `sigma_log` is not positive.
    pub fn from_median(median: f64, sigma_log: f64) -> Result<Self> {
        if !(median.is_finite() && median > 0.0) {
            return Err(AnalysisError::InvalidParameter {
                name: "median",
                reason: "must be positive and finite",
            });
        }
        Self::new(median.ln(), sigma_log)
    }

    /// Mean of `ln X`.
    pub fn mu(&self) -> f64 {
        self.log.mu()
    }

    /// Standard deviation of `ln X`.
    pub fn sigma(&self) -> f64 {
        self.log.sigma()
    }

    /// Median of the distribution (`e^mu`).
    pub fn median(&self) -> f64 {
        self.log.mu().exp()
    }

    /// Probability density at `x` (0 for `x <= 0`).
    pub fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        self.log.pdf(x.ln()) / x
    }

    /// Cumulative distribution function at `x` (0 for `x <= 0`).
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        self.log.cdf(x.ln())
    }

    /// Quantile at probability `p ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.log.quantile(p).exp()
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.log.sample(rng).exp()
    }

    /// Fits a lognormal by the mean/std of the log of the data.
    ///
    /// # Errors
    /// Returns [`AnalysisError::InvalidParameter`] if any point is
    /// non-positive, or the errors of [`Normal::fit`].
    pub fn fit(data: &[f64]) -> Result<Self> {
        if data.iter().any(|&x| x <= 0.0) {
            return Err(AnalysisError::InvalidParameter {
                name: "data",
                reason: "lognormal data must be strictly positive",
            });
        }
        let logs: Vec<f64> = data.iter().map(|x| x.ln()).collect();
        Ok(Self {
            log: Normal::fit(&logs)?,
        })
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Models the memoryless dwell times of VRT retention states
/// (paper §2.3.1: "based on a memoryless random process").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Errors
    /// Returns [`AnalysisError::InvalidParameter`] if `lambda` is not a
    /// positive finite number.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(AnalysisError::InvalidParameter {
                name: "lambda",
                reason: "must be positive and finite",
            });
        }
        Ok(Self { lambda })
    }

    /// Creates an exponential distribution from its mean (`1/lambda`).
    ///
    /// # Errors
    /// Same conditions as [`Exponential::new`].
    pub fn from_mean(mean: f64) -> Result<Self> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(AnalysisError::InvalidParameter {
                name: "mean",
                reason: "must be positive and finite",
            });
        }
        Self::new(1.0 / mean)
    }

    /// Rate parameter `lambda`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Mean (`1/lambda`).
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    /// Probability density at `x` (0 for `x < 0`).
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.lambda * (-self.lambda * x).exp()
        }
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * x).exp()
        }
    }

    /// Quantile at probability `p ∈ [0, 1)`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "quantile domain is [0,1), got {p}");
        -(1.0 - p).ln() / self.lambda
    }

    /// Draws one sample by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        // Guard u == 1.0 which would give ln(0).
        self.quantile(u.min(1.0 - 1e-16))
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Models VRT new-failure arrival counts over a profiling window
/// (paper §5.3: steady-state failure accumulation is well described by a
/// constant rate, i.e. Poisson arrivals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with mean `lambda >= 0`.
    ///
    /// # Errors
    /// Returns [`AnalysisError::InvalidParameter`] if `lambda` is negative
    /// or not finite.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda.is_finite() && lambda >= 0.0) {
            return Err(AnalysisError::InvalidParameter {
                name: "lambda",
                reason: "must be non-negative and finite",
            });
        }
        Ok(Self { lambda })
    }

    /// Mean (= variance) of the distribution.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draws one sample.
    ///
    /// Uses Knuth's product method for small `lambda` and a
    /// normal approximation (rounded, clamped at 0) for `lambda > 30`,
    /// which is accurate to well under the Monte-Carlo noise of the
    /// experiments that use it.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda > 30.0 {
            let x = self.lambda + self.lambda.sqrt() * standard_normal(rng);
            return x.round().max(0.0) as u64;
        }
        let l = (-self.lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            let u: f64 = rng.random();
            p *= u;
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn normal_pdf_integrates_to_one() {
        let n = Normal::new(1.0, 2.0).unwrap();
        let mut total = 0.0;
        let dx = 0.01;
        let mut x = -20.0;
        while x < 22.0 {
            total += n.pdf(x) * dx;
            x += dx;
        }
        assert!((total - 1.0).abs() < 1e-4, "integral = {total}");
    }

    #[test]
    fn normal_cdf_quantile_roundtrip() {
        let n = Normal::new(-3.0, 0.5).unwrap();
        for &p in &[0.001, 0.1, 0.5, 0.9, 0.999] {
            assert!((n.cdf(n.quantile(p)) - p).abs() < 1e-8);
        }
    }

    #[test]
    fn normal_sampling_moments() {
        let n = Normal::new(5.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let fit = Normal::fit(&samples).unwrap();
        assert!((fit.mu() - 5.0).abs() < 0.05, "mu = {}", fit.mu());
        assert!((fit.sigma() - 2.0).abs() < 0.05, "sigma = {}", fit.sigma());
    }

    #[test]
    fn normal_fit_needs_two_points() {
        assert!(matches!(
            Normal::fit(&[1.0]),
            Err(AnalysisError::InsufficientData { needed: 2, got: 1 })
        ));
    }

    #[test]
    fn lognormal_median_parameterization() {
        let ln = LogNormal::from_median(0.1, 0.8).unwrap();
        assert!((ln.median() - 0.1).abs() < 1e-12);
        assert!((ln.cdf(0.1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lognormal_rejects_nonpositive_median() {
        assert!(LogNormal::from_median(0.0, 1.0).is_err());
        assert!(LogNormal::from_median(-2.0, 1.0).is_err());
    }

    #[test]
    fn lognormal_cdf_zero_below_zero() {
        let ln = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(ln.cdf(-1.0), 0.0);
        assert_eq!(ln.cdf(0.0), 0.0);
        assert_eq!(ln.pdf(-1.0), 0.0);
    }

    #[test]
    fn lognormal_fit_recovers_parameters() {
        let ln = LogNormal::new(0.5, 0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..50_000).map(|_| ln.sample(&mut rng)).collect();
        let fit = LogNormal::fit(&samples).unwrap();
        assert!((fit.mu() - 0.5).abs() < 0.01);
        assert!((fit.sigma() - 0.25).abs() < 0.01);
    }

    #[test]
    fn lognormal_fit_rejects_nonpositive_data() {
        assert!(LogNormal::fit(&[1.0, -2.0, 3.0]).is_err());
    }

    #[test]
    fn exponential_mean_and_memoryless_cdf() {
        let e = Exponential::from_mean(4.0).unwrap();
        assert!((e.mean() - 4.0).abs() < 1e-12);
        assert!((e.cdf(4.0) - (1.0 - (-1.0_f64).exp())).abs() < 1e-12);
        // quantile roundtrip
        for &p in &[0.0, 0.3, 0.9, 0.999] {
            assert!((e.cdf(e.quantile(p)) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn exponential_sampling_mean() {
        let e = Exponential::from_mean(2.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mean: f64 = (0..50_000).map(|_| e.sample(&mut rng)).sum::<f64>() / 50_000.0;
        assert!((mean - 2.5).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn poisson_zero_lambda_always_zero() {
        let p = Poisson::new(0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(p.sample(&mut rng), 0);
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let p = Poisson::new(2.5).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 =
            (0..50_000).map(|_| p.sample(&mut rng) as f64).sum::<f64>() / 50_000.0;
        assert!((mean - 2.5).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean_and_variance() {
        let p = Poisson::new(200.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let samples: Vec<f64> = (0..20_000).map(|_| p.sample(&mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / samples.len() as f64;
        assert!((mean - 200.0).abs() < 1.0, "mean = {mean}");
        assert!((var - 200.0).abs() < 10.0, "var = {var}");
    }

    #[test]
    fn poisson_rejects_negative_lambda() {
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
    }

    #[test]
    fn exponential_rejects_bad_lambda() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::from_mean(0.0).is_err());
    }
}
