//! Least-squares fitting: linear regression and power-law (`y = a·x^b`) fits.
//!
//! The paper fits the steady-state VRT failure-accumulation rate vs. refresh
//! interval with power laws of the form `y = a·x^b` (Fig. 4). We implement
//! the standard log–log linearization.

use crate::{AnalysisError, Result};

/// Ordinary least-squares line `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (R²) of the fit.
    pub r_squared: f64,
}

impl LinearFit {
    /// Fits a straight line to `(x, y)` pairs by ordinary least squares.
    ///
    /// # Errors
    /// Returns [`AnalysisError::InsufficientData`] for fewer than 2 points
    /// and [`AnalysisError::InvalidParameter`] if all `x` are identical.
    pub fn fit(points: &[(f64, f64)]) -> Result<Self> {
        if points.len() < 2 {
            return Err(AnalysisError::InsufficientData {
                needed: 2,
                got: points.len(),
            });
        }
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let mx = sx / n;
        let my = sy / n;
        let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
        let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
        if sxx == 0.0 {
            return Err(AnalysisError::InvalidParameter {
                name: "x",
                reason: "all x values identical; slope undefined",
            });
        }
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let ss_tot: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
        let ss_res: f64 = points
            .iter()
            .map(|p| {
                let r = p.1 - (intercept + slope * p.0);
                r * r
            })
            .sum();
        let r_squared = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Ok(Self {
            slope,
            intercept,
            r_squared,
        })
    }

    /// Evaluates the fitted line at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Power-law fit `y = a·x^b`, obtained by linear regression in log–log space.
///
/// This is the model class the paper uses for VRT failure-accumulation rates
/// (Fig. 4: "well-fitting polynomial regressions of the form y = a * x^b").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Multiplier `a`.
    pub a: f64,
    /// Exponent `b`.
    pub b: f64,
    /// R² of the underlying log–log linear fit.
    pub r_squared: f64,
}

impl PowerLawFit {
    /// Fits `y = a·x^b` to strictly positive `(x, y)` pairs.
    ///
    /// # Errors
    /// Returns [`AnalysisError::InvalidParameter`] if any coordinate is
    /// non-positive, plus the errors of [`LinearFit::fit`].
    pub fn fit(points: &[(f64, f64)]) -> Result<Self> {
        if points.iter().any(|&(x, y)| x <= 0.0 || y <= 0.0) {
            return Err(AnalysisError::InvalidParameter {
                name: "points",
                reason: "power-law fit requires strictly positive x and y",
            });
        }
        let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
        let lin = LinearFit::fit(&logs)?;
        Ok(Self {
            a: lin.intercept.exp(),
            b: lin.slope,
            r_squared: lin.r_squared,
        })
    }

    /// Evaluates the fitted power law at `x`.
    ///
    /// # Panics
    /// Panics if `x <= 0`.
    pub fn eval(&self, x: f64) -> f64 {
        assert!(x > 0.0, "power law defined for x > 0, got {x}");
        self.a * x.powf(self.b)
    }
}

impl core::fmt::Display for PowerLawFit {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "y = {:.4e} * x^{:.3}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let fit = LinearFit::fit(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.eval(100.0) - 203.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_rejects_degenerate_x() {
        let pts = [(1.0, 2.0), (1.0, 3.0)];
        assert!(LinearFit::fit(&pts).is_err());
    }

    #[test]
    fn linear_fit_needs_two_points() {
        assert!(LinearFit::fit(&[(0.0, 0.0)]).is_err());
    }

    #[test]
    fn linear_fit_noisy_r_squared_below_one() {
        let pts = [(0.0, 0.0), (1.0, 1.5), (2.0, 1.8), (3.0, 3.3)];
        let fit = LinearFit::fit(&pts).unwrap();
        assert!(fit.r_squared < 1.0);
        assert!(fit.r_squared > 0.8);
    }

    #[test]
    fn power_law_exact_recovery() {
        // y = 0.5 * x^1.7
        let pts: Vec<(f64, f64)> = (1..20)
            .map(|i| {
                let x = i as f64 * 0.25;
                (x, 0.5 * x.powf(1.7))
            })
            .collect();
        let fit = PowerLawFit::fit(&pts).unwrap();
        assert!((fit.a - 0.5).abs() < 1e-9, "a = {}", fit.a);
        assert!((fit.b - 1.7).abs() < 1e-9, "b = {}", fit.b);
        assert!((fit.eval(3.0) - 0.5 * 3.0_f64.powf(1.7)).abs() < 1e-9);
    }

    #[test]
    fn power_law_rejects_nonpositive() {
        assert!(PowerLawFit::fit(&[(1.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(PowerLawFit::fit(&[(1.0, -1.0), (2.0, 2.0)]).is_err());
    }

    #[test]
    fn power_law_display_mentions_exponent() {
        let fit = PowerLawFit {
            a: 1.5,
            b: 2.0,
            r_squared: 1.0,
        };
        assert!(fit.to_string().contains("x^2.000"));
    }
}
