//! 2-D evaluation grids for contour-style experiments.
//!
//! The paper's Figs. 9 and 10 plot coverage / false-positive-rate / runtime
//! contours over a (Δ refresh-interval, Δ temperature) plane. [`Grid2`]
//! holds such a sampled surface and can extract iso-contour threshold
//! crossings along each row, which is how the figure harnesses print the
//! contour series.

use crate::{AnalysisError, Result};

/// A dense 2-D grid of `f64` values sampled at explicit x/y coordinates.
///
/// Values are stored row-major: `z[y_index][x_index]` flattened.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2 {
    xs: Vec<f64>,
    ys: Vec<f64>,
    z: Vec<f64>,
}

impl Grid2 {
    /// Creates a grid with the given axis coordinates, initialized to 0.
    ///
    /// # Errors
    /// Returns [`AnalysisError::InsufficientData`] if either axis is empty.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self> {
        if xs.is_empty() || ys.is_empty() {
            return Err(AnalysisError::InsufficientData {
                needed: 1,
                got: 0,
            });
        }
        let z = vec![0.0; xs.len() * ys.len()];
        Ok(Self { xs, ys, z })
    }

    /// X-axis coordinates.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Y-axis coordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.z.len()
    }

    /// True if the grid has no points (cannot happen for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.z.is_empty()
    }

    fn idx(&self, xi: usize, yi: usize) -> usize {
        assert!(xi < self.xs.len(), "x index {xi} out of bounds");
        assert!(yi < self.ys.len(), "y index {yi} out of bounds");
        yi * self.xs.len() + xi
    }

    /// Value at `(xi, yi)`.
    ///
    /// # Panics
    /// Panics if either index is out of bounds.
    pub fn get(&self, xi: usize, yi: usize) -> f64 {
        self.z[self.idx(xi, yi)]
    }

    /// Sets the value at `(xi, yi)`.
    ///
    /// # Panics
    /// Panics if either index is out of bounds.
    pub fn set(&mut self, xi: usize, yi: usize, v: f64) {
        let i = self.idx(xi, yi);
        self.z[i] = v;
    }

    /// Fills the grid by evaluating `f(x, y)` at every point.
    pub fn fill<F: FnMut(f64, f64) -> f64>(&mut self, mut f: F) {
        for yi in 0..self.ys.len() {
            for xi in 0..self.xs.len() {
                let v = f(self.xs[xi], self.ys[yi]);
                let i = self.idx(xi, yi);
                self.z[i] = v;
            }
        }
    }

    /// For each row (fixed y), returns the interpolated x at which the row
    /// first crosses `level` going left→right, or `None` if it never does.
    /// This extracts one iso-contour from a monotone-ish surface, matching
    /// how the paper's contour labels are read off Figs. 9/10.
    pub fn contour_crossings(&self, level: f64) -> Vec<Option<f64>> {
        let mut out = Vec::with_capacity(self.ys.len());
        for yi in 0..self.ys.len() {
            let mut found = None;
            for xi in 1..self.xs.len() {
                let a = self.get(xi - 1, yi);
                let b = self.get(xi, yi);
                if (a < level && b >= level) || (a > level && b <= level) {
                    let t = if (b - a).abs() < 1e-300 {
                        0.0
                    } else {
                        (level - a) / (b - a)
                    };
                    found = Some(self.xs[xi - 1] + t * (self.xs[xi] - self.xs[xi - 1]));
                    break;
                }
            }
            out.push(found);
        }
        out
    }

    /// Iterates over `(x, y, z)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        self.ys.iter().enumerate().flat_map(move |(yi, &y)| {
            self.xs
                .iter()
                .enumerate()
                .map(move |(xi, &x)| (x, y, self.get(xi, yi)))
        })
    }
}

/// Builds `n` evenly spaced values from `lo` to `hi` inclusive.
///
/// # Panics
/// Panics if `n < 2`.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least 2 points");
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_set_get_roundtrip() {
        let mut g = Grid2::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0]).unwrap();
        g.set(2, 1, 5.0);
        assert_eq!(g.get(2, 1), 5.0);
        assert_eq!(g.get(0, 0), 0.0);
        assert_eq!(g.len(), 6);
        assert!(!g.is_empty());
    }

    #[test]
    fn grid_rejects_empty_axes() {
        assert!(Grid2::new(vec![], vec![1.0]).is_err());
        assert!(Grid2::new(vec![1.0], vec![]).is_err());
    }

    #[test]
    fn grid_fill_applies_function() {
        let mut g = Grid2::new(linspace(0.0, 2.0, 3), linspace(0.0, 1.0, 2)).unwrap();
        g.fill(|x, y| x + 10.0 * y);
        assert_eq!(g.get(1, 0), 1.0);
        assert_eq!(g.get(2, 1), 12.0);
    }

    #[test]
    fn contour_crossings_interpolate() {
        let mut g = Grid2::new(linspace(0.0, 10.0, 11), vec![0.0]).unwrap();
        g.fill(|x, _| x * x);
        // z crosses 25 exactly at x = 5
        let c = g.contour_crossings(25.0);
        assert_eq!(c.len(), 1);
        let x = c[0].unwrap();
        assert!((x - 5.0).abs() < 0.3, "x = {x}");
    }

    #[test]
    fn contour_missing_when_never_crossed() {
        let mut g = Grid2::new(linspace(0.0, 1.0, 5), vec![0.0]).unwrap();
        g.fill(|_, _| 0.0);
        assert_eq!(g.contour_crossings(0.5), vec![None]);
    }

    #[test]
    fn iter_visits_all_points() {
        let mut g = Grid2::new(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
        g.fill(|x, y| x + y);
        let pts: Vec<(f64, f64, f64)> = g.iter().collect();
        assert_eq!(pts.len(), 4);
        assert!(pts.contains(&(1.0, 1.0, 2.0)));
    }

    #[test]
    fn linspace_endpoints() {
        let v = linspace(-1.0, 1.0, 5);
        assert_eq!(v[0], -1.0);
        assert_eq!(v[4], 1.0);
        assert_eq!(v.len(), 5);
        assert!((v[1] - -0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn linspace_rejects_single_point() {
        linspace(0.0, 1.0, 1);
    }
}
