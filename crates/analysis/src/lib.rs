//! Statistics substrate for the REAPER reproduction.
//!
//! The REAPER paper leans on a small set of statistical machinery:
//!
//! * per-cell retention-failure probabilities modeled as **normal CDFs**
//!   (paper §5.5, Fig. 6a),
//! * per-cell CDF spreads and DRAM leakage components modeled as
//!   **lognormal** distributions (Fig. 6b, [Li+ 2011]),
//! * **power-law fits** `y = a·x^b` of VRT failure-accumulation rates
//!   (Fig. 4),
//! * **binomial tail sums** for the ECC uncorrectable-bit-error-rate model
//!   (Eqs. 2–6, Table 1),
//! * box-plot summaries of workload distributions (Fig. 13).
//!
//! This crate implements all of that from first principles so the math stays
//! auditable against the paper's equations, and so the workspace needs no
//! statistics dependency beyond [`rand`].
//!
//! # Example
//!
//! ```
//! use reaper_analysis::dist::Normal;
//!
//! // A cell whose retention CDF is centered at 1.5s with 100ms spread fails
//! // a 1.6s retention trial ~84% of the time.
//! let cell = Normal::new(1.5, 0.1).unwrap();
//! let p = cell.cdf(1.6);
//! assert!((p - 0.8413).abs() < 1e-3);
//! ```

// Deny-wall escapes (DESIGN.md §"Static analysis & determinism
// invariants"): `reaper-lint` enforces the finer-grained forms of these
// lints — P1 requires `invariant: `-prefixed expect messages and audits
// indexing in the hot-path crates, C1 bans bare casts there — with
// per-site `// lint: allow` markers. Clippy's blanket versions are
// allowed at the crate root so `-D warnings` stays green without
// annotating every audited site twice.
#![allow(clippy::expect_used, clippy::indexing_slicing, clippy::cast_possible_truncation)]
// Tests additionally assert exact float equality on purpose — bit-identical
// outputs are the determinism contract, and clippy.toml has no in-tests
// knob for these lints.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod dist;
pub mod fit;
pub mod grid;
pub mod special;
pub mod stats;

pub use dist::{Exponential, LogNormal, Normal, Poisson};
pub use fit::{LinearFit, PowerLawFit};
pub use grid::Grid2;
pub use stats::{Histogram, Summary};

/// Error type for invalid statistical parameters or degenerate inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A distribution parameter was out of its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An operation needed more data points than were supplied.
    InsufficientData {
        /// How many points the operation needs.
        needed: usize,
        /// How many points it got.
        got: usize,
    },
}

impl core::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AnalysisError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            AnalysisError::InsufficientData { needed, got } => {
                write!(f, "insufficient data: needed {needed} points, got {got}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Convenient result alias used across this crate.
pub type Result<T> = core::result::Result<T, AnalysisError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let e = AnalysisError::InvalidParameter {
            name: "sigma",
            reason: "must be positive",
        };
        assert!(e.to_string().contains("sigma"));
        let e = AnalysisError::InsufficientData { needed: 2, got: 0 };
        assert!(e.to_string().contains("needed 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisError>();
    }
}
