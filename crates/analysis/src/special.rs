//! Special functions: error function, its inverse, log-gamma, and log-binomial
//! coefficients.
//!
//! These are the building blocks for the normal/lognormal distributions used
//! by the retention model (paper §5.5) and for the binomial ECC failure model
//! (paper Eqs. 2–6).

/// Error function `erf(x)`, accurate to ~1.2e-7 (Abramowitz & Stegun 7.1.26
/// refined with the Winitzki-style rational form used by Numerical Recipes).
///
/// # Example
/// ```
/// let e = reaper_analysis::special::erf(1.0);
/// assert!((e - 0.8427007).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Uses the Chebyshev-fitted expansion from Numerical Recipes (`erfcc`),
/// which keeps relative error below ~1.2e-7 everywhere and is well behaved
/// in the deep tails needed by the UBER model (RBER down to 1e-15).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;

    // Chebyshev coefficients for erfc on t ∈ [0, 1].
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];

    let mut d = 0.0_f64;
    let mut dd = 0.0_f64;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();

    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Inverse of [`erfc`]: returns `x` such that `erfc(x) = p` for `p ∈ (0, 2)`.
///
/// Implemented by one Newton refinement pass over an initial rational
/// approximation; accurate to ~1e-9 over the full domain.
///
/// # Panics
/// Panics if `p <= 0` or `p >= 2` (the function value is unbounded there).
pub fn inverse_erfc(p: f64) -> f64 {
    assert!(p > 0.0 && p < 2.0, "inverse_erfc domain is (0, 2), got {p}");
    if (p - 1.0).abs() < 1e-300 {
        return 0.0;
    }
    let pp = if p < 1.0 { p } else { 2.0 - p };
    let t = (-2.0 * (pp / 2.0).ln()).sqrt();
    // Initial guess (Numerical Recipes).
    let mut x = -core::f64::consts::FRAC_1_SQRT_2
        * ((2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) - t);
    // Two Newton steps: d/dx erfc(x) = -2/sqrt(pi) * exp(-x^2).
    for _ in 0..2 {
        let err = erfc(x) - pp;
        x += err / (2.0 / core::f64::consts::PI.sqrt() * (-x * x).exp());
    }
    if p < 1.0 {
        x
    } else {
        -x
    }
}

/// Inverse error function: returns `x` such that `erf(x) = p` for `p ∈ (-1, 1)`.
///
/// # Panics
/// Panics if `p <= -1` or `p >= 1`.
pub fn inverse_erf(p: f64) -> f64 {
    assert!(p > -1.0 && p < 1.0, "inverse_erf domain is (-1, 1), got {p}");
    inverse_erfc(1.0 - p)
}

/// Natural log of the gamma function, `ln Γ(x)` for `x > 0` (Lanczos).
///
/// # Panics
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015_f64;
    for &g in &G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// `ln C(n, k)` — natural log of the binomial coefficient.
///
/// Needed for the ECC UBER model (paper Eq. 5/6) where `C(w, n)` with
/// `w = 72` overflows naive factorial arithmetic but is trivial in log space.
///
/// # Panics
/// Panics if `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose requires k <= n, got k={k} n={n}");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Standard normal CDF `Φ(x)`.
///
/// # Example
/// ```
/// let p = reaper_analysis::special::phi(0.0);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
pub fn phi(x: f64) -> f64 {
    0.5 * erfc(-x * core::f64::consts::FRAC_1_SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// # Panics
/// Panics if `p <= 0` or `p >= 1`.
pub fn phi_inv(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "phi_inv domain is (0, 1), got {p}");
    -core::f64::consts::SQRT_2 * inverse_erfc(2.0 * p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn erf_known_values() {
        assert!(close(erf(0.0), 0.0, 1e-12));
        assert!(close(erf(0.5), 0.5204998778, 1e-7));
        assert!(close(erf(1.0), 0.8427007929, 1e-7));
        assert!(close(erf(2.0), 0.9953222650, 1e-7));
        assert!(close(erf(-1.0), -0.8427007929, 1e-7));
    }

    #[test]
    fn erfc_deep_tail_is_positive_and_tiny() {
        let v = erfc(6.0);
        assert!(v > 0.0);
        assert!(v < 1e-15);
    }

    #[test]
    fn erf_is_odd() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            assert!(close(erf(x), -erf(-x), 1e-12));
        }
    }

    #[test]
    fn inverse_erfc_round_trips() {
        for &x in &[-2.0, -1.0, -0.3, 0.0, 0.2, 1.0, 2.5] {
            let p = erfc(x);
            assert!(close(inverse_erfc(p), x, 1e-6), "x={x}");
        }
    }

    #[test]
    fn inverse_erf_round_trips() {
        for &p in &[-0.9, -0.5, 0.0, 0.3, 0.99] {
            assert!(close(erf(inverse_erf(p)), p, 1e-9), "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "inverse_erfc domain")]
    fn inverse_erfc_rejects_out_of_domain() {
        inverse_erfc(2.5);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0_f64;
        for n in 1..15_u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(
                close(ln_gamma(n as f64), fact.ln(), 1e-9),
                "n={n}: {} vs {}",
                ln_gamma(n as f64),
                fact.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert!(close(
            ln_gamma(0.5),
            core::f64::consts::PI.sqrt().ln(),
            1e-10
        ));
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!(close(ln_choose(5, 2), 10.0_f64.ln(), 1e-10));
        assert!(close(ln_choose(10, 5), 252.0_f64.ln(), 1e-10));
        assert!(close(ln_choose(72, 2), 2556.0_f64.ln(), 1e-9));
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
    }

    #[test]
    fn ln_choose_symmetry() {
        for k in 0..=64 {
            assert!(close(ln_choose(64, k), ln_choose(64, 64 - k), 1e-9));
        }
    }

    #[test]
    fn phi_and_quantile_round_trip() {
        for &p in &[1e-6, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0 - 1e-6] {
            let x = phi_inv(p);
            assert!(close(phi(x), p, 1e-8), "p={p}");
        }
    }

    #[test]
    fn phi_standard_values() {
        assert!(close(phi(1.0), 0.8413447461, 1e-7));
        assert!(close(phi(-1.96), 0.0249978951, 1e-7));
    }
}
