//! Descriptive statistics: summaries, percentiles, and histograms.
//!
//! The paper reports box plots (Fig. 13: 25th–75th percentile boxes with
//! whiskers, median, and mean) and histograms (Fig. 6b: per-cell σ). This
//! module provides both.

use crate::{AnalysisError, Result};

/// Arithmetic mean of a slice. Returns `None` for an empty slice.
pub fn mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        None
    } else {
        Some(data.iter().sum::<f64>() / data.len() as f64)
    }
}

/// Population variance of a slice. Returns `None` for an empty slice.
pub fn variance(data: &[f64]) -> Option<f64> {
    let m = mean(data)?;
    Some(data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64)
}

/// Population standard deviation of a slice. Returns `None` for an empty
/// slice.
pub fn std_dev(data: &[f64]) -> Option<f64> {
    variance(data).map(f64::sqrt)
}

/// Linearly interpolated percentile of **sorted** data, `p ∈ [0, 100]`.
///
/// # Panics
/// Panics if `p` is outside `[0, 100]` or `sorted` is empty.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty data");
    assert!((0.0..=100.0).contains(&p), "percentile p must be in [0,100]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Five-number box-plot summary plus the mean, as drawn in the paper's
/// Fig. 13 (box = 25th–75th percentile, whiskers = range, orange line =
/// median, black line = mean).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Minimum of the data (lower whisker).
    pub min: f64,
    /// 25th percentile (box bottom).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 75th percentile (box top).
    pub q3: f64,
    /// Maximum of the data (upper whisker).
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of observations.
    pub count: usize,
}

impl Summary {
    /// Computes the summary of `data`.
    ///
    /// # Errors
    /// Returns [`AnalysisError::InsufficientData`] for an empty slice.
    pub fn of(data: &[f64]) -> Result<Self> {
        if data.is_empty() {
            return Err(AnalysisError::InsufficientData { needed: 1, got: 0 });
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary data"));
        Ok(Self {
            min: sorted[0],
            q1: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            q3: percentile_sorted(&sorted, 75.0),
            max: *sorted.last().expect("nonempty"),
            mean: mean(data).expect("nonempty"),
            count: data.len(),
        })
    }

    /// Interquartile range (`q3 - q1`).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "min {:.4} | q1 {:.4} | med {:.4} | q3 {:.4} | max {:.4} | mean {:.4} (n={})",
            self.min, self.q1, self.median, self.q3, self.max, self.mean, self.count
        )
    }
}

/// Kolmogorov–Smirnov statistic of **sorted** data against a reference CDF:
/// `sup |F_empirical(x) − F(x)|`.
///
/// Used to quantify the paper's Fig. 6a claim that per-cell failure CDFs
/// are normal: the normalized empirical CDF should sit within a small KS
/// distance of Φ.
///
/// # Panics
/// Panics if `sorted` is empty.
pub fn ks_statistic<F: Fn(f64) -> f64>(sorted: &[f64], cdf: F) -> f64 {
    assert!(!sorted.is_empty(), "KS statistic of empty data");
    let n = sorted.len() as f64;
    let mut d = 0.0_f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((f - hi).abs());
    }
    d
}

/// Fixed-width histogram over `[lo, hi)` with values outside the range
/// clamped into the edge bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[lo, hi)`.
    ///
    /// # Errors
    /// Returns [`AnalysisError::InvalidParameter`] if `bins == 0` or
    /// `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(AnalysisError::InvalidParameter {
                name: "bins",
                reason: "must be nonzero",
            });
        }
        if hi <= lo {
            return Err(AnalysisError::InvalidParameter {
                name: "hi",
                reason: "must be greater than lo",
            });
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Adds one observation; out-of-range values land in the edge bins.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Adds every observation in `data`.
    pub fn add_all<I: IntoIterator<Item = f64>>(&mut self, data: I) {
        for x in data {
            self.add(x);
        }
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of bounds");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Fraction of observations in bin `i` (0 if the histogram is empty).
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Iterates over `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.counts.len()).map(move |i| (self.bin_center(i), self.counts[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_var_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(variance(&[2.0, 4.0]), Some(1.0));
        assert_eq!(std_dev(&[2.0, 4.0]), Some(1.0));
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&data, 0.0), 1.0);
        assert_eq!(percentile_sorted(&data, 100.0), 4.0);
        assert_eq!(percentile_sorted(&data, 50.0), 2.5);
        assert_eq!(percentile_sorted(&data, 25.0), 1.75);
    }

    #[test]
    fn percentile_single_point() {
        assert_eq!(percentile_sorted(&[7.0], 33.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile_sorted(&[], 50.0);
    }

    #[test]
    fn summary_of_known_data() {
        let s = Summary::of(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.count, 5);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn summary_empty_errors() {
        assert!(Summary::of(&[]).is_err());
    }

    #[test]
    fn summary_display_nonempty() {
        let s = Summary::of(&[1.0, 2.0]).unwrap();
        assert!(s.to_string().contains("med"));
    }

    #[test]
    fn ks_statistic_detects_fit_quality() {
        use crate::special::phi;
        // Samples from a standard normal (via quantiles) fit Φ tightly...
        let n = 500;
        let samples: Vec<f64> = (1..=n)
            .map(|i| crate::special::phi_inv(i as f64 / (n + 1) as f64))
            .collect();
        let d_good = ks_statistic(&samples, phi);
        assert!(d_good < 0.02, "good fit KS {d_good}");
        // ...and badly mismatch a shifted CDF.
        let d_bad = ks_statistic(&samples, |x| phi(x - 2.0));
        assert!(d_bad > 0.5, "bad fit KS {d_bad}");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn ks_statistic_rejects_empty() {
        ks_statistic(&[], |_| 0.5);
    }

    #[test]
    fn histogram_binning_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add_all([0.5, 1.5, 9.9, -5.0, 20.0]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts()[0], 2); // 0.5 and clamped -5.0
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[9], 2); // 9.9 and clamped 20.0
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.fraction(0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_bad_params() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
    }

    #[test]
    fn histogram_iter_pairs() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.add(1.5);
        let pairs: Vec<(f64, u64)> = h.iter().collect();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[1], (1.5, 1));
    }
}
