//! Descriptive statistics: summaries, percentiles, and histograms.
//!
//! The paper reports box plots (Fig. 13: 25th–75th percentile boxes with
//! whiskers, median, and mean) and histograms (Fig. 6b: per-cell σ). This
//! module provides both.

use crate::{AnalysisError, Result};

/// Arithmetic mean of a slice. Returns `None` for an empty slice.
pub fn mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        None
    } else {
        Some(data.iter().sum::<f64>() / data.len() as f64)
    }
}

/// Population variance of a slice. Returns `None` for an empty slice.
pub fn variance(data: &[f64]) -> Option<f64> {
    let m = mean(data)?;
    Some(data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64)
}

/// Population standard deviation of a slice. Returns `None` for an empty
/// slice.
pub fn std_dev(data: &[f64]) -> Option<f64> {
    variance(data).map(f64::sqrt)
}

/// Linearly interpolated percentile of **sorted** data, `p ∈ [0, 100]`.
///
/// Sortedness is a documented precondition checked only in debug builds;
/// unsorted input in release builds yields a well-defined but meaningless
/// interpolation.
///
/// # Errors
/// Returns [`AnalysisError::InsufficientData`] for an empty slice and
/// [`AnalysisError::InvalidParameter`] if `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Result<f64> {
    if sorted.is_empty() {
        return Err(AnalysisError::InsufficientData { needed: 1, got: 0 });
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(AnalysisError::InvalidParameter {
            name: "p",
            reason: "percentile must be in [0, 100]",
        });
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile_sorted input must be sorted ascending"
    );
    if sorted.len() == 1 {
        return Ok(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Five-number box-plot summary plus the mean, as drawn in the paper's
/// Fig. 13 (box = 25th–75th percentile, whiskers = range, orange line =
/// median, black line = mean).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Minimum of the data (lower whisker).
    pub min: f64,
    /// 25th percentile (box bottom).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 75th percentile (box top).
    pub q3: f64,
    /// Maximum of the data (upper whisker).
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of observations.
    pub count: usize,
}

impl Summary {
    /// Computes the summary of `data`.
    ///
    /// # Errors
    /// Returns [`AnalysisError::InsufficientData`] for an empty slice.
    pub fn of(data: &[f64]) -> Result<Self> {
        if data.is_empty() {
            return Err(AnalysisError::InsufficientData { needed: 1, got: 0 });
        }
        let mut sorted = data.to_vec();
        // lint: allow(panic) documented contract: summary stats over NaN-free data
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary data"));
        let pct = |p| {
            percentile_sorted(&sorted, p)
                .expect("invariant: data is non-empty and p is a literal in [0, 100]")
        };
        Ok(Self {
            min: sorted[0],
            q1: pct(25.0),
            median: pct(50.0),
            q3: pct(75.0),
            max: *sorted
                .last()
                .expect("invariant: emptiness is rejected at function entry"),
            mean: mean(data).expect("invariant: emptiness is rejected at function entry"),
            count: data.len(),
        })
    }

    /// Interquartile range (`q3 - q1`).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "min {:.4} | q1 {:.4} | med {:.4} | q3 {:.4} | max {:.4} | mean {:.4} (n={})",
            self.min, self.q1, self.median, self.q3, self.max, self.mean, self.count
        )
    }
}

/// Kolmogorov–Smirnov statistic of **sorted** data against a reference CDF:
/// `sup |F_empirical(x) − F(x)|`.
///
/// Used to quantify the paper's Fig. 6a claim that per-cell failure CDFs
/// are normal: the normalized empirical CDF should sit within a small KS
/// distance of Φ.
///
/// Sortedness is a documented precondition checked only in debug builds.
///
/// # Errors
/// Returns [`AnalysisError::InsufficientData`] for an empty slice.
pub fn ks_statistic<F: Fn(f64) -> f64>(sorted: &[f64], cdf: F) -> Result<f64> {
    if sorted.is_empty() {
        return Err(AnalysisError::InsufficientData { needed: 1, got: 0 });
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "ks_statistic input must be sorted ascending"
    );
    let n = sorted.len() as f64;
    let mut d = 0.0_f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((f - hi).abs());
    }
    Ok(d)
}

/// One-sample Kolmogorov–Smirnov critical value: the smallest `D` that
/// rejects the null hypothesis at significance level `alpha` for sample
/// size `n`, via the Dvoretzky–Kiefer–Wolfowitz bound with Massart's tight
/// constant: `D_crit = sqrt(ln(2/α) / (2n))`.
///
/// The bound is non-asymptotic (valid at every `n`), which matters here:
/// the Fig. 6a conformance check tests per-cell CDFs resolved from only
/// 16 trials per grid point.
///
/// # Errors
/// Returns [`AnalysisError::InvalidParameter`] if `n == 0` or `alpha` is
/// outside `(0, 1)`.
pub fn ks_critical_value(n: usize, alpha: f64) -> Result<f64> {
    if n == 0 {
        return Err(AnalysisError::InvalidParameter {
            name: "n",
            reason: "sample size must be nonzero",
        });
    }
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(AnalysisError::InvalidParameter {
            name: "alpha",
            reason: "significance level must be in (0, 1)",
        });
    }
    Ok(((2.0 / alpha).ln() / (2.0 * n as f64)).sqrt())
}

/// Approximate p-value of a one-sample KS statistic `d` at sample size `n`:
/// the probability under the null of observing a statistic at least this
/// large.
///
/// Uses the Kolmogorov distribution tail `Q(λ) = 2 Σ_{j≥1} (−1)^{j−1}
/// e^{−2j²λ²}` with the finite-`n` correction `λ = (√n + 0.12 + 0.11/√n)·d`
/// (Stephens 1970, as popularized by Numerical Recipes). Accurate to a few
/// percent for `n ≥ 5`; returns a value clamped to `[0, 1]`.
///
/// # Errors
/// Returns [`AnalysisError::InvalidParameter`] if `n == 0` or `d` is not
/// in `[0, 1]`.
pub fn ks_p_value(d: f64, n: usize) -> Result<f64> {
    if n == 0 {
        return Err(AnalysisError::InvalidParameter {
            name: "n",
            reason: "sample size must be nonzero",
        });
    }
    if !(0.0..=1.0).contains(&d) {
        return Err(AnalysisError::InvalidParameter {
            name: "d",
            reason: "KS statistic must be in [0, 1]",
        });
    }
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    // Below λ ≈ 0.3 the alternating series converges too slowly to sum
    // term-by-term, and Q(0.3) > 0.9999 anyway: report no evidence against
    // the null rather than a truncation artifact.
    if lambda < 0.3 {
        return Ok(1.0);
    }
    let mut sum = 0.0_f64;
    let mut sign = 1.0_f64;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    Ok((2.0 * sum).clamp(0.0, 1.0))
}

/// Percentile-bootstrap confidence interval for the **mean** of `data`.
///
/// Draws `resamples` with-replacement resamples using a deterministic
/// SplitMix64 stream seeded by `seed`, computes each resample's mean, and
/// returns the `(lo, hi)` quantiles that bracket the central `confidence`
/// mass. Deterministic for a fixed `(data, resamples, seed)` tuple, so
/// conformance checks built on it are reproducible.
///
/// # Errors
/// Returns [`AnalysisError::InsufficientData`] for an empty slice and
/// [`AnalysisError::InvalidParameter`] if `resamples == 0` or `confidence`
/// is outside `(0, 1)`.
pub fn bootstrap_mean_ci(
    data: &[f64],
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> Result<(f64, f64)> {
    if data.is_empty() {
        return Err(AnalysisError::InsufficientData { needed: 1, got: 0 });
    }
    if resamples == 0 {
        return Err(AnalysisError::InvalidParameter {
            name: "resamples",
            reason: "must be nonzero",
        });
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(AnalysisError::InvalidParameter {
            name: "confidence",
            reason: "must be in (0, 1)",
        });
    }
    // Private SplitMix64 so the bootstrap needs no external RNG dependency
    // and stays bit-reproducible across platforms.
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let n = data.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            // Multiply-shift keeps the index unbiased enough for bootstrap
            // purposes without a rejection loop.
            let idx = ((next() as u128 * n as u128) >> 64) as usize;
            sum += data[idx];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("invariant: resample means of finite data are finite")
    });
    let tail = (1.0 - confidence) / 2.0 * 100.0;
    let lo = percentile_sorted(&means, tail)?;
    let hi = percentile_sorted(&means, 100.0 - tail)?;
    Ok((lo, hi))
}

/// Fixed-width histogram over `[lo, hi)` with values outside the range
/// clamped into the edge bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[lo, hi)`.
    ///
    /// # Errors
    /// Returns [`AnalysisError::InvalidParameter`] if `bins == 0` or
    /// `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(AnalysisError::InvalidParameter {
                name: "bins",
                reason: "must be nonzero",
            });
        }
        if hi <= lo {
            return Err(AnalysisError::InvalidParameter {
                name: "hi",
                reason: "must be greater than lo",
            });
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Adds one observation; out-of-range values land in the edge bins.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Adds every observation in `data`.
    pub fn add_all<I: IntoIterator<Item = f64>>(&mut self, data: I) {
        for x in data {
            self.add(x);
        }
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of bounds");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Fraction of observations in bin `i` (0 if the histogram is empty).
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Iterates over `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.counts.len()).map(move |i| (self.bin_center(i), self.counts[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_var_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(variance(&[2.0, 4.0]), Some(1.0));
        assert_eq!(std_dev(&[2.0, 4.0]), Some(1.0));
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&data, 0.0), Ok(1.0));
        assert_eq!(percentile_sorted(&data, 100.0), Ok(4.0));
        assert_eq!(percentile_sorted(&data, 50.0), Ok(2.5));
        assert_eq!(percentile_sorted(&data, 25.0), Ok(1.75));
    }

    #[test]
    fn percentile_single_point() {
        assert_eq!(percentile_sorted(&[7.0], 33.0), Ok(7.0));
    }

    #[test]
    fn percentile_rejects_bad_input() {
        assert_eq!(
            percentile_sorted(&[], 50.0),
            Err(AnalysisError::InsufficientData { needed: 1, got: 0 })
        );
        assert!(percentile_sorted(&[1.0], -1.0).is_err());
        assert!(percentile_sorted(&[1.0], 100.1).is_err());
    }

    #[test]
    fn summary_of_known_data() {
        let s = Summary::of(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.count, 5);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn summary_empty_errors() {
        assert!(Summary::of(&[]).is_err());
    }

    #[test]
    fn summary_display_nonempty() {
        let s = Summary::of(&[1.0, 2.0]).unwrap();
        assert!(s.to_string().contains("med"));
    }

    #[test]
    fn ks_statistic_detects_fit_quality() {
        use crate::special::phi;
        // Samples from a standard normal (via quantiles) fit Φ tightly...
        let n = 500;
        let samples: Vec<f64> = (1..=n)
            .map(|i| crate::special::phi_inv(i as f64 / (n + 1) as f64))
            .collect();
        let d_good = ks_statistic(&samples, phi).unwrap();
        assert!(d_good < 0.02, "good fit KS {d_good}");
        // ...and badly mismatch a shifted CDF.
        let d_bad = ks_statistic(&samples, |x| phi(x - 2.0)).unwrap();
        assert!(d_bad > 0.5, "bad fit KS {d_bad}");
    }

    #[test]
    fn ks_statistic_rejects_empty() {
        assert_eq!(
            ks_statistic(&[], |_| 0.5),
            Err(AnalysisError::InsufficientData { needed: 1, got: 0 })
        );
    }

    #[test]
    fn ks_critical_value_known_points() {
        // Massart bound at α=0.05: sqrt(ln(40)/2n). For n=100: ≈0.1358.
        let d = ks_critical_value(100, 0.05).unwrap();
        assert!((d - 0.1358).abs() < 1e-3, "crit {d}");
        // Shrinks with n, grows as α shrinks.
        assert!(ks_critical_value(400, 0.05).unwrap() < d);
        assert!(ks_critical_value(100, 0.01).unwrap() > d);
        assert!(ks_critical_value(0, 0.05).is_err());
        assert!(ks_critical_value(10, 0.0).is_err());
        assert!(ks_critical_value(10, 1.0).is_err());
    }

    #[test]
    fn ks_p_value_behaves_like_a_p_value() {
        // Tiny statistic: cannot reject, p ≈ 1.
        assert!(ks_p_value(0.001, 50).unwrap() > 0.99);
        // Huge statistic: decisive rejection, p ≈ 0.
        assert!(ks_p_value(0.9, 50).unwrap() < 1e-6);
        // Monotone decreasing in d.
        let p1 = ks_p_value(0.1, 100).unwrap();
        let p2 = ks_p_value(0.2, 100).unwrap();
        assert!(p1 > p2, "{p1} vs {p2}");
        // Consistency with the critical value: at D = D_crit(α) the
        // asymptotic p-value is within a small factor of α.
        let crit = ks_critical_value(200, 0.05).unwrap();
        let p = ks_p_value(crit, 200).unwrap();
        assert!(p < 0.07, "p at critical value {p}");
        assert!(ks_p_value(0.5, 0).is_err());
        assert!(ks_p_value(1.5, 10).is_err());
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean() {
        let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let m = mean(&data).unwrap();
        let (lo, hi) = bootstrap_mean_ci(&data, 1000, 0.95, 7).unwrap();
        assert!(lo < m && m < hi, "{lo} < {m} < {hi}");
        // CI width shrinks with tighter confidence.
        let (lo90, hi90) = bootstrap_mean_ci(&data, 1000, 0.90, 7).unwrap();
        assert!(hi90 - lo90 <= hi - lo);
        // Deterministic per seed.
        assert_eq!(bootstrap_mean_ci(&data, 500, 0.95, 3).unwrap(),
                   bootstrap_mean_ci(&data, 500, 0.95, 3).unwrap());
        assert!(bootstrap_mean_ci(&[], 10, 0.95, 0).is_err());
        assert!(bootstrap_mean_ci(&data, 0, 0.95, 0).is_err());
        assert!(bootstrap_mean_ci(&data, 10, 1.0, 0).is_err());
    }

    #[test]
    fn bootstrap_ci_degenerate_data_is_a_point() {
        let (lo, hi) = bootstrap_mean_ci(&[4.2; 32], 200, 0.95, 1).unwrap();
        assert!((lo - 4.2).abs() < 1e-12 && (hi - 4.2).abs() < 1e-12);
        assert_eq!(lo, hi);
    }

    #[test]
    fn histogram_binning_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add_all([0.5, 1.5, 9.9, -5.0, 20.0]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts()[0], 2); // 0.5 and clamped -5.0
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[9], 2); // 9.9 and clamped 20.0
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.fraction(0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_bad_params() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
    }

    #[test]
    fn histogram_iter_pairs() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.add(1.5);
        let pairs: Vec<(f64, u64)> = h.iter().collect();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[1], (1.5, 1));
    }
}
