//! Property-based tests of the statistics substrate.

// Property tests assert exact float equality on purpose: bit-identical
// outputs are the determinism contract.
#![allow(clippy::float_cmp)]

use proptest::prelude::*;
use reaper_analysis::dist::{Exponential, LogNormal, Normal, Poisson};
use reaper_analysis::fit::{LinearFit, PowerLawFit};
use reaper_analysis::special::{erf, erfc, ln_choose, phi, phi_inv};
use reaper_analysis::stats::{percentile_sorted, Summary};

proptest! {
    #[test]
    fn erf_bounded_and_odd(x in -6.0..6.0f64) {
        let e = erf(x);
        prop_assert!((-1.0..=1.0).contains(&e));
        prop_assert!((e + erf(-x)).abs() < 1e-12);
    }

    #[test]
    fn erfc_complements_erf(x in -6.0..6.0f64) {
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phi_is_monotone(a in -8.0..8.0f64, b in -8.0..8.0f64) {
        prop_assume!(a < b);
        prop_assert!(phi(a) <= phi(b));
    }

    #[test]
    fn phi_inv_round_trip(p in 1e-6..0.999999f64) {
        prop_assert!((phi(phi_inv(p)) - p).abs() < 1e-7);
    }

    #[test]
    fn ln_choose_pascal_identity(n in 2u64..60, k in 1u64..59) {
        prop_assume!(k < n);
        // C(n,k) = C(n-1,k-1) + C(n-1,k)
        let lhs = ln_choose(n, k);
        let a = ln_choose(n - 1, k - 1);
        let b = ln_choose(n - 1, k);
        let rhs = (a.exp() + b.exp()).ln();
        prop_assert!((lhs - rhs).abs() < 1e-6, "n={n} k={k}: {lhs} vs {rhs}");
    }

    #[test]
    fn normal_cdf_monotone_and_quantile_inverts(
        mu in -100.0..100.0f64,
        sigma in 0.01..50.0f64,
        p in 0.001..0.999f64,
    ) {
        let n = Normal::new(mu, sigma).unwrap();
        let x = n.quantile(p);
        prop_assert!((n.cdf(x) - p).abs() < 1e-6);
        prop_assert!(n.cdf(x + sigma) > p);
    }

    #[test]
    fn lognormal_support_is_positive(mu in -3.0..3.0f64, sigma in 0.05..2.0f64, p in 0.001..0.999f64) {
        let ln = LogNormal::new(mu, sigma).unwrap();
        prop_assert!(ln.quantile(p) > 0.0);
        prop_assert_eq!(ln.cdf(0.0), 0.0);
    }

    #[test]
    fn exponential_is_memoryless(mean in 0.1..100.0f64, s in 0.1..5.0f64, t in 0.1..5.0f64) {
        let e = Exponential::from_mean(mean).unwrap();
        // P(X > s+t) = P(X > s) P(X > t)
        let lhs = 1.0 - e.cdf(s + t);
        let rhs = (1.0 - e.cdf(s)) * (1.0 - e.cdf(t));
        prop_assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn poisson_samples_are_finite(lambda in 0.0..500.0f64, seed: u64) {
        use rand::{rngs::StdRng, SeedableRng};
        let p = Poisson::new(lambda).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = p.sample(&mut rng);
        // Crude 12-sigma tail bound: samples stay near lambda.
        prop_assert!((x as f64) < lambda + 12.0 * lambda.sqrt() + 20.0);
    }

    #[test]
    fn linear_fit_recovers_any_line(
        slope in -100.0..100.0f64,
        intercept in -100.0..100.0f64,
    ) {
        let pts: Vec<(f64, f64)> =
            (0..10).map(|i| (i as f64, intercept + slope * i as f64)).collect();
        let fit = LinearFit::fit(&pts).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-6 * (1.0 + intercept.abs()));
    }

    #[test]
    fn power_law_fit_recovers_exponent(a in 0.01..100.0f64, b in -3.0..5.0f64) {
        let pts: Vec<(f64, f64)> = (1..12)
            .map(|i| {
                let x = i as f64 * 0.5;
                (x, a * x.powf(b))
            })
            .collect();
        let fit = PowerLawFit::fit(&pts).unwrap();
        prop_assert!((fit.b - b).abs() < 1e-6, "b {} vs {}", fit.b, b);
    }

    #[test]
    fn summary_orders_quartiles(data in proptest::collection::vec(-1e6..1e6f64, 1..200)) {
        let s = Summary::of(&data).unwrap();
        prop_assert!(s.min <= s.q1);
        prop_assert!(s.q1 <= s.median);
        prop_assert!(s.median <= s.q3);
        prop_assert!(s.q3 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert_eq!(s.count, data.len());
    }

    #[test]
    fn percentile_is_monotone_in_p(
        data in proptest::collection::vec(-1e3..1e3f64, 2..100),
        p1 in 0.0..100.0f64,
        p2 in 0.0..100.0f64,
    ) {
        prop_assume!(p1 <= p2);
        let mut sorted = data;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(percentile_sorted(&sorted, p1).unwrap() <= percentile_sorted(&sorted, p2).unwrap());
    }

    #[test]
    fn ks_statistic_is_a_distance(
        data in proptest::collection::vec(-5.0..5.0f64, 1..200),
    ) {
        use reaper_analysis::stats::ks_statistic;
        let mut sorted = data;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Against any CDF, D ∈ [0, 1]; against a constant CDF stuck at 0,
        // the empirical CDF reaches 1, so D = 1.
        let d = ks_statistic(&sorted, reaper_analysis::special::phi).unwrap();
        prop_assert!((0.0..=1.0).contains(&d), "D {}", d);
        let d_degenerate = ks_statistic(&sorted, |_| 0.0).unwrap();
        prop_assert!((d_degenerate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_ci_contains_sample_mean_and_is_ordered(
        data in proptest::collection::vec(-1e3..1e3f64, 2..100),
        seed: u64,
    ) {
        use reaper_analysis::stats::{bootstrap_mean_ci, mean};
        let (lo, hi) = bootstrap_mean_ci(&data, 400, 0.99, seed).unwrap();
        prop_assert!(lo <= hi);
        // At 99% confidence the sample mean itself is essentially always
        // inside the percentile interval.
        let m = mean(&data).unwrap();
        prop_assert!(lo - 1e-9 <= m && m <= hi + 1e-9, "{} not in [{}, {}]", m, lo, hi);
    }
}
