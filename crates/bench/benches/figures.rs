//! Criterion benchmarks wrapping each figure/table harness at Quick scale —
//! one bench per table and figure of the paper, so `cargo bench` exercises
//! every experiment end to end and tracks its regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};

use reaper_bench::{all_experiments, Scale};

fn bench_every_figure_and_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments_quick");
    group.sample_size(10);
    for (name, runner) in all_experiments() {
        group.bench_function(name, |b| b.iter(|| runner(Scale::Quick)));
    }
    group.finish();
}

criterion_group!(benches, bench_every_figure_and_table);
criterion_main!(benches);
