//! Criterion benchmarks of the core profiling algorithms: brute-force vs.
//! reach profiling (simulated-runtime-per-coverage is reported by the
//! figure harnesses; these benches measure host compute cost).

// Bench harness code may panic/cast freely — a panic here is the bench
// failing, and nothing feeds experiment output.
#![allow(clippy::expect_used, clippy::indexing_slicing, clippy::cast_possible_truncation)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use reaper_core::conditions::{ReachConditions, TargetConditions};
use reaper_core::profiler::{PatternSet, Profiler};
use reaper_dram_model::{Celsius, DataPattern, Ms, Vendor};
use reaper_retention::{RetentionConfig, SimulatedChip};
use reaper_softmc::TestHarness;

fn chip() -> SimulatedChip {
    SimulatedChip::new(
        RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 32),
        7,
    )
}

fn bench_retention_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("retention_trial");
    for &interval in &[512.0, 1024.0, 2048.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(interval as u64),
            &interval,
            |b, &interval| {
                let mut chip = chip();
                let temp = Celsius::new(60.0);
                b.iter(|| {
                    chip.retention_trial(
                        DataPattern::checkerboard(),
                        Ms::new(interval),
                        temp,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_profilers(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiler_run");
    group.sample_size(10);
    let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
    for (name, reach) in [
        ("brute_force", ReachConditions::brute_force()),
        ("reach_250ms", ReachConditions::paper_headline()),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || TestHarness::new(chip(), Celsius::new(45.0), 1),
                |mut harness| {
                    Profiler::reach(target, reach, 2, PatternSet::Standard).run(&mut harness)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_chip_synthesis(c: &mut Criterion) {
    c.bench_function("chip_synthesis_1_32_capacity", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            SimulatedChip::new(
                RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 32),
                seed,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_retention_trial,
    bench_profilers,
    bench_chip_synthesis
);
criterion_main!(benches);
