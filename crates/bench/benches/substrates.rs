//! Criterion benchmarks of the substrate crates: SECDED codec, Bloom
//! filters, the memory-system simulator, and workload generation.

// Bench harness code may panic/cast freely — a panic here is the bench
// failing, and nothing feeds experiment output.
#![allow(clippy::expect_used, clippy::indexing_slicing, clippy::cast_possible_truncation)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use reaper_dram_model::Ms;
use reaper_memsim::{simulate, SimConfig};
use reaper_mitigation::bloom::BloomFilter;
use reaper_mitigation::secded::Secded;
use reaper_workloads::{BenchmarkProfile, WorkloadMix};

fn bench_secded(c: &mut Criterion) {
    c.bench_function("secded_encode", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            Secded::encode(x)
        })
    });
    c.bench_function("secded_decode_corrupted", |b| {
        let cw = Secded::encode(0xDEAD_BEEF_1234_5678);
        let mut pos = 0u32;
        b.iter(|| {
            pos = (pos + 1) % 72;
            Secded::decode(cw.flip(pos))
        })
    });
}

fn bench_bloom(c: &mut Criterion) {
    c.bench_function("bloom_insert_contains", |b| {
        let mut f = BloomFilter::with_capacity(10_000, 0.001);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            f.insert(k);
            f.contains(k) & !f.contains(k + 1_000_000_000)
        })
    });
}

fn bench_memsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("memsim_4core_10k_instr");
    group.sample_size(10);
    for &(name, refresh) in &[("refresh_64ms", Some(64.0)), ("no_refresh", None)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &refresh, |b, &r| {
            let mixes = WorkloadMix::random_mixes(1, 4, 512, 1);
            let cfg = SimConfig::lpddr4_3200(64, r.map(Ms::new));
            b.iter(|| simulate(&cfg, mixes[0].traces(), 10_000))
        });
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("trace_generation_mcf_4096", |b| {
        let mcf = BenchmarkProfile::spec2006()
            .iter()
            .find(|p| p.name == "mcf")
            .expect("mcf profile");
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            mcf.generate_trace(4096, seed)
        })
    });
}

criterion_group!(
    benches,
    bench_secded,
    bench_bloom,
    bench_memsim,
    bench_trace_generation
);
criterion_main!(benches);
