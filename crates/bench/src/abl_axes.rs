//! Ablation — reach axis: interval vs. temperature.
//!
//! §5.5/Fig. 8 argue the two reach knobs are interchangeable (at 45 °C,
//! ~1 s of interval ≙ ~10 °C). This ablation profiles with an
//! interval-only reach and with its temperature-equivalent reach (computed
//! from the chip's own Eq. 1 coefficient) and compares the three metrics.

use reaper_core::tradeoff::{ExploreOptions, GroundTruth, TradeoffAnalysis};
use reaper_core::TargetConditions;
use reaper_dram_model::{Celsius, Ms, Vendor};

use crate::table::{fmt_pct, Scale, Table};
use crate::util::representative_chip;

/// Runs the experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Ablation — interval-reach vs. temperature-reach at matched failure-count inflation",
        &["reach", "coverage", "FPR", "speedup"],
    );

    let chip = representative_chip(scale);
    let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));

    // Matched pairs: a ΔT whose Eq.-1 count scale e^{kΔT} equals the
    // interval inflation ((t+Δi)/t)^β. For Vendor B (k = 0.20, β = 2.5),
    // +250ms on 1024ms inflates counts by 1.72x ⇒ ΔT = ln(1.72)/0.20 ≈ 2.7°C.
    let delta_i = Ms::new(250.0);
    let k = Vendor::B.temperature_coefficient();
    let beta = chip.config().ber_exponent;
    let inflation = ((target.interval + delta_i) / target.interval).powf(beta);
    let delta_t = inflation.ln() / k;

    let opts = ExploreOptions {
        profile_iterations: scale.pick(8, 16),
        ground_truth: GroundTruth::Empirical {
            iterations: scale.pick(16, 32),
        },
        coverage_goal: 0.9,
        max_runtime_iterations: scale.pick(48, 96),
        seed: 0xA7E5,
    };
    let analysis = TradeoffAnalysis::explore(
        &chip,
        target,
        &[Ms::ZERO, delta_i],
        &[0.0, delta_t],
        opts,
    );

    let labels = [
        ("brute force", 0usize),
        ("interval-only (+250ms)", 1),
        (&*format!("temp-only (+{delta_t:.1}°C)"), 2),
    ];
    for (label, idx) in labels {
        let p = &analysis.points[idx];
        table.push_row(vec![
            label.to_string(),
            fmt_pct(p.coverage),
            fmt_pct(p.false_positive_rate),
            format!("{:.2}x", p.speedup()),
        ]);
    }
    table.note(format!(
        "matched inflation {:.2}x; §5.5: manipulating either knob achieves the same effect",
        inflation
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(s: &str) -> f64 {
        s.trim_end_matches('%').parse::<f64>().unwrap() / 100.0
    }

    #[test]
    fn matched_reaches_behave_equivalently() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        let cov_i = pct(&t.rows[1][1]);
        let cov_t = pct(&t.rows[2][1]);
        let fpr_i = pct(&t.rows[1][2]);
        let fpr_t = pct(&t.rows[2][2]);
        // Both reaches beat brute force on coverage.
        let cov_bf = pct(&t.rows[0][1]);
        assert!(cov_i > cov_bf - 0.01 && cov_t > cov_bf - 0.01);
        // Matched-inflation pairs land close on both metrics.
        assert!((cov_i - cov_t).abs() < 0.03, "coverage {cov_i} vs {cov_t}");
        assert!((fpr_i - fpr_t).abs() < 0.15, "FPR {fpr_i} vs {fpr_t}");
    }
}
