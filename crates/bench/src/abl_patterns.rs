//! Ablation — data-pattern set: how much of the paper's 6-family standard
//! set is really needed? (Corollary 3: "a robust profiling mechanism
//! should use multiple data patterns".)
//!
//! Compares brute-force coverage after a fixed iteration budget using the
//! full standard set, random+inverse only, and solid+inverse only.

use reaper_core::metrics::ProfileMetrics;
use reaper_core::profile::FailureProfile;
use reaper_core::profiler::{PatternSet, Profiler};
use reaper_core::TargetConditions;
use reaper_dram_model::{Celsius, DataPattern, Ms};

use crate::table::{fmt_pct, Scale, Table};
use crate::util::{harness_for, representative_chip};

/// Runs the experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Ablation — pattern-set choice (brute force, 2048ms @ 45°C, fixed trial budget)",
        &["pattern set", "patterns/iter", "iterations", "coverage", "FPR"],
    );

    let chip = representative_chip(scale);
    let target = TargetConditions::new(Ms::new(2048.0), Celsius::new(45.0));
    let truth = FailureProfile::from_cells(chip.clone().failing_set_worst_case(
        target.interval,
        target.dram_temp(),
        0.02,
    ));

    // Equal trial budgets: 12-pattern sets get N iterations, 2-pattern sets
    // get 6N, so every variant writes the same number of passes.
    let budget_passes = scale.pick(96u32, 384u32);
    let variants: [(&str, PatternSet); 3] = [
        ("standard (6 families + inverses)", PatternSet::Standard),
        ("random + inverse, reseeded", PatternSet::RandomOnly),
        (
            "solid + inverse only",
            PatternSet::Fixed(vec![DataPattern::solid0(), DataPattern::solid1()]),
        ),
    ];

    for (name, set) in variants {
        let per_iter = set.patterns_per_iteration() as u32;
        let iterations = (budget_passes / per_iter).max(1);
        let mut harness = harness_for(&chip, target.ambient, 0xAB1);
        let run = Profiler::brute_force(target, iterations, set).run(&mut harness);
        let m = ProfileMetrics::evaluate(&run.profile, &truth);
        table.push_row(vec![
            name.to_string(),
            per_iter.to_string(),
            iterations.to_string(),
            fmt_pct(m.coverage),
            fmt_pct(m.false_positive_rate),
        ]);
    }
    table.note("equal total pattern passes across variants; reseeded random re-rolls aggressor layouts every iteration");
    table.note("paper Corollary 3: multiple patterns needed; random alone cannot find every failure");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(s: &str) -> f64 {
        s.trim_end_matches('%').parse::<f64>().unwrap() / 100.0
    }

    #[test]
    fn standard_set_beats_single_families() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        let standard = pct(&t.rows[0][3]);
        let random_only = pct(&t.rows[1][3]);
        let solid_only = pct(&t.rows[2][3]);
        // At equal trial budgets, reseeded-random is competitive with (and
        // in this model slightly ahead of) the standard set — consistent
        // with Fig. 5's random dominance; both must clear solid-only.
        assert!(
            (standard - random_only).abs() < 0.05,
            "standard {standard} vs random-only {random_only}"
        );
        assert!(
            random_only > solid_only,
            "random-only {random_only} vs solid-only {solid_only}"
        );
        // Solid-only freezes both polarity exposure pattern and aggressor
        // layout, so it must lag clearly.
        assert!(solid_only < standard - 0.01);
    }
}
