//! Ablation (extension beyond the paper) — all-bank vs. per-bank refresh.
//!
//! The paper evaluates REFab; LPDDR4 also offers REFpb, which blocks one
//! bank at a time for ~half the duration. This ablation quantifies how much
//! of the refresh penalty REFpb recovers on its own — and therefore how the
//! headroom REAPER exploits shrinks (but does not vanish) under a smarter
//! refresh mode.

use reaper_dram_model::Ms;
use reaper_memsim::{simulate, SimConfig};
use reaper_workloads::WorkloadMix;

use crate::table::{fmt_pct, Scale, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Ablation — REFab vs REFpb: throughput gain of disabling refresh, 64Gb chips",
        &["interval", "REFab gain to no-ref", "REFpb gain to no-ref"],
    );

    let mixes = WorkloadMix::random_mixes(scale.pick(2, 8), 4, 1024, 0xEF);
    let instructions = scale.pick(80_000u64, 200_000);

    let no_ref_cfg = SimConfig::lpddr4_3200(64, None);
    for interval in [64.0, 128.0, 256.0] {
        // Three independent simulations per mix; fan out across mixes and
        // fold in input order so the float accumulation stays exact.
        let per_mix = reaper_exec::par_map(&mixes, |mix| {
            let base = simulate(&no_ref_cfg, mix.traces(), instructions).total_ipc();
            let ab = simulate(
                &SimConfig::lpddr4_3200(64, Some(Ms::new(interval))),
                mix.traces(),
                instructions,
            )
            .total_ipc();
            let pb = simulate(
                &SimConfig::lpddr4_3200(64, Some(Ms::new(interval))).with_per_bank_refresh(),
                mix.traces(),
                instructions,
            )
            .total_ipc();
            (base / ab - 1.0, base / pb - 1.0)
        });
        let mut gain_ab = 0.0;
        let mut gain_pb = 0.0;
        for (ab, pb) in per_mix {
            gain_ab += ab;
            gain_pb += pb;
        }
        let n = mixes.len() as f64;
        table.push_row(vec![
            Ms::new(interval).to_string(),
            fmt_pct(gain_ab / n),
            fmt_pct(gain_pb / n),
        ]);
    }
    table.note("gain-to-no-ref = how much performance refresh still costs; lower is better");
    table.note("REFpb overlaps refresh with service on other banks but closes a row 8x more often; which mode wins is workload- and locality-dependent");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(s: &str) -> f64 {
        s.trim_end_matches('%').parse::<f64>().unwrap() / 100.0
    }

    #[test]
    fn per_bank_shrinks_but_does_not_remove_refresh_cost() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        // At the default 64ms window the refresh cost is visible in both
        // modes. (Direction between modes is workload-dependent: REFpb
        // overlaps bank blocking but disrupts row locality 8x more often.)
        let ab = pct(&t.rows[0][1]);
        let pb = pct(&t.rows[0][2]);
        assert!(ab > 0.02, "REFab cost {ab}");
        assert!(pb > 0.0, "REFpb cost should remain positive: {pb}");
        // Longer windows shrink the cost in both modes.
        assert!(pct(&t.rows[2][1]) < ab);
        assert!(pct(&t.rows[2][2]) < pb);
    }
}
