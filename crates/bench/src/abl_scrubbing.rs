//! §3.2 demonstration — active (reach) profiling vs. passive ECC
//! scrubbing (AVATAR-style).
//!
//! The paper excludes ECC-scrubbing approaches from its evaluation because
//! a passive profiler "cannot make an estimate as to what fraction of all
//! possible failures have been detected": it only sees failures under the
//! application's resident data, so a data-pattern change can expose
//! unprofiled cells as uncorrectable errors. This experiment measures both
//! profilers against the same worst-case ground truth.

use reaper_core::conditions::{ReachConditions, TargetConditions};
use reaper_core::metrics::ProfileMetrics;
use reaper_core::profile::FailureProfile;
use reaper_core::profiler::{PatternSet, Profiler};
use reaper_dram_model::{Celsius, DataPattern, Ms};
use reaper_mitigation::scrubber::EccScrubber;

use crate::table::{fmt_pct, Scale, Table};
use crate::util::{harness_for, representative_chip};

/// Runs the experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "§3.2 — active reach profiling vs. passive ECC scrubbing (coverage of worst-case truth)",
        &["profiler", "rounds", "coverage", "exposed by pattern change"],
    );

    let chip = representative_chip(scale);
    let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
    let truth = FailureProfile::from_cells(chip.clone().failing_set_worst_case(
        target.interval,
        target.dram_temp(),
        0.05,
    ));

    // Passive: scrub every window while the application holds one data
    // layout, then the application's data changes (new pattern).
    let rounds = scale.pick(8u64, 32u64);
    let mut scrub_chip = chip.clone();
    let mut scrubber = EccScrubber::new();
    for _ in 0..rounds {
        let _ = scrubber.scrub(
            &mut scrub_chip,
            DataPattern::checkerboard(), // the application's resident data
            target.interval,
            target.dram_temp(),
        );
    }
    let scrub_metrics = ProfileMetrics::evaluate(scrubber.profile(), &truth);
    // The data-pattern change: how many cells fail under the new layout
    // that the scrubber never profiled?
    let new_layout = scrub_chip.retention_trial(
        DataPattern::checkerboard().inverse(),
        target.interval,
        target.dram_temp(),
    );
    let exposed = new_layout
        .failures()
        .iter()
        .filter(|c| !scrubber.profile().contains(**c))
        .count();

    // Active: REAPER with the same number of retention windows spent.
    let iterations = (rounds as u32 / 12).max(1);
    let mut harness = harness_for(&chip, target.ambient, 0x5C2);
    let run = Profiler::reach(
        target,
        ReachConditions::paper_headline(),
        iterations,
        PatternSet::Standard,
    )
    .run(&mut harness);
    let reach_metrics = ProfileMetrics::evaluate(&run.profile, &truth);
    let mut reach_chip = harness.into_chip();
    let new_layout_reach = reach_chip.retention_trial(
        DataPattern::checkerboard().inverse(),
        target.interval,
        target.dram_temp(),
    );
    let exposed_reach = new_layout_reach
        .failures()
        .iter()
        .filter(|c| !run.profile.contains(**c))
        .count();

    table.push_row(vec![
        "ECC scrubbing (passive)".to_string(),
        rounds.to_string(),
        fmt_pct(scrub_metrics.coverage),
        exposed.to_string(),
    ]);
    table.push_row(vec![
        "REAPER +250ms (active)".to_string(),
        format!("{iterations} iter"),
        fmt_pct(reach_metrics.coverage),
        exposed_reach.to_string(),
    ]);
    table.note("'exposed' = cells failing under a new data layout that the profile missed — the §3.2 uncorrectable-error risk");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(s: &str) -> f64 {
        s.trim_end_matches('%').parse::<f64>().unwrap() / 100.0
    }

    #[test]
    fn active_profiling_dominates_passive_scrubbing() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 2);
        let scrub_cov = pct(&t.rows[0][2]);
        let reach_cov = pct(&t.rows[1][2]);
        assert!(
            reach_cov > scrub_cov + 0.2,
            "reach {reach_cov} must dominate scrubbing {scrub_cov}"
        );
        // Scrubbing must be badly exposed by the pattern change; reach
        // profiling far less so.
        let scrub_exposed: usize = t.rows[0][3].parse().unwrap();
        let reach_exposed: usize = t.rows[1][3].parse().unwrap();
        assert!(scrub_exposed > 3 * (reach_exposed + 1), "{scrub_exposed} vs {reach_exposed}");
    }
}
