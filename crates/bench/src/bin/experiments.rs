//! Experiment runner: regenerates any or all of the paper's tables and
//! figures.
//!
//! ```text
//! experiments [--full] [name...]
//! experiments all                # every experiment at quick scale
//! experiments --full fig09 fig13
//! experiments --list
//! ```

use std::process::ExitCode;

use reaper_bench::{all_experiments, Scale};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut names: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--full" => scale = Scale::Full,
            "--quick" => scale = Scale::Quick,
            "--list" => {
                for (name, _) in all_experiments() {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        eprintln!("usage: experiments [--full] <name...|all>   (see --list)");
        return ExitCode::FAILURE;
    }

    let registry = all_experiments();
    let selected: Vec<_> = if names.iter().any(|n| n == "all") {
        registry
    } else {
        let mut picked = Vec::new();
        for name in &names {
            match registry.iter().find(|(n, _)| n == name) {
                Some(&entry) => picked.push(entry),
                None => {
                    eprintln!("unknown experiment `{name}` (see --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        picked
    };

    for (name, runner) in selected {
        let start = std::time::Instant::now();
        let table = runner(scale);
        println!("{table}");
        println!("  [{name} completed in {:.1?} at {scale:?} scale]\n", start.elapsed());
    }
    ExitCode::SUCCESS
}
