//! Microbenchmark for the retention-trial hot path: scalar window scan vs.
//! compiled trial plan vs. the bit-plane batch kernel, at 1 and 4 worker
//! threads.
//!
//! ```text
//! trial_bench [--smoke] [--json[=PATH]] [--rounds N] [--gate]
//! trial_bench                    # full-capacity run, writes BENCH_trial.json
//! trial_bench --smoke            # small chip, few rounds, equality check only
//! trial_bench --gate             # also fail if 4 threads < 1 thread for the
//!                                # compiled or batch engine (best-of-2 timing)
//! ```
//!
//! Every configuration replays the *same* round script on a fresh chip
//! (warmup rounds, timed rounds, a mid-script `advance` that invalidates
//! compiled plans, then post-invalidation rounds), and the benchmark
//! asserts all transcripts are byte-identical before reporting any
//! number — a throughput figure from a diverging engine would be
//! meaningless. Timing covers only the steady-state timed rounds, so the
//! one-time plan compile (≈ one scalar trial) is excluded, matching how
//! the plan cache amortizes it across iteration loops.

// The terminal is this binary's output surface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

use reaper_bench::util::dram_temp;
use reaper_dram_model::{Celsius, DataPattern, Ms, Vendor};
use reaper_retention::{RetentionConfig, SimulatedChip, TrialEngine};

/// Prints to stdout, ignoring a closed pipe (`trial_bench | head` must
/// not panic on EPIPE).
macro_rules! emit {
    ($($arg:tt)*) => {
        let _ = writeln!(std::io::stdout(), $($arg)*);
    };
}

/// The representative Vendor B chip (same seed the figure harnesses use).
const B_CHIP_SEED: u64 = 0xBC417;
/// Warmup rounds before the timer starts (lets Compiled pay its one-time
/// plan compile outside the timed region).
const WARMUP_ROUNDS: u64 = 2;
/// Rounds run after the mid-script `advance`, checking that invalidation
/// and recompile stay bit-identical (never timed).
const POST_ADVANCE_ROUNDS: u64 = 2;

struct Config {
    smoke: bool,
    json_path: Option<String>,
    rounds: u64,
    gate: bool,
}

struct Measurement {
    engine: TrialEngine,
    threads: usize,
    wall_ms: f64,
    rounds_per_sec: f64,
    transcript: Vec<Vec<u64>>,
    plans_compiled: u64,
    invalidations: u64,
    batch_rounds: u64,
}

fn engine_name(engine: TrialEngine) -> &'static str {
    match engine {
        TrialEngine::Scalar => "scalar",
        TrialEngine::Compiled => "compiled",
        TrialEngine::Lowered => "lowered",
        TrialEngine::Batch => "batch",
        TrialEngine::Auto => "auto",
    }
}

/// Runs the full round script for one (engine, threads) configuration on a
/// fresh chip and returns timing plus the complete outcome transcript.
fn run_config(
    cfg: &RetentionConfig,
    engine: TrialEngine,
    threads: usize,
    rounds: u64,
) -> Measurement {
    let pattern = DataPattern::checkerboard();
    let interval = Ms::new(1024.0);
    let temp = dram_temp(Celsius::new(45.0));

    reaper_exec::set_thread_count(Some(threads));
    let mut chip = SimulatedChip::new(cfg.clone(), B_CHIP_SEED);
    chip.set_trial_engine(engine);
    let mut transcript = Vec::new();

    for _ in 0..WARMUP_ROUNDS {
        transcript.push(chip.retention_trial(pattern, interval, temp).into_vec());
    }
    let start = Instant::now();
    if engine == TrialEngine::Batch {
        // The multi-round entry point: all timed rounds submitted at once,
        // evaluated in 64-round bit-plane passes. Outcomes land in the same
        // transcript and must match the scalar reference byte-for-byte.
        let n = reaper_exec::num::u64_to_u32(rounds);
        for outcome in chip.retention_trial_rounds(pattern, interval, temp, n) {
            transcript.push(outcome.into_vec());
        }
    } else {
        for _ in 0..rounds {
            transcript.push(chip.retention_trial(pattern, interval, temp).into_vec());
        }
    }
    let wall = start.elapsed();
    // Exercise plan invalidation: advance device time (epoch roll + VRT
    // evolution + arrivals), then keep trialing. Untimed, but part of the
    // equality transcript.
    chip.advance(Ms::from_hours(1.0));
    for _ in 0..POST_ADVANCE_ROUNDS {
        transcript.push(chip.retention_trial(pattern, interval, temp).into_vec());
    }

    let wall_ms = wall.as_secs_f64() * 1e3;
    let stats = chip.plan_stats();
    Measurement {
        engine,
        threads,
        wall_ms,
        rounds_per_sec: rounds as f64 / wall.as_secs_f64().max(1e-9),
        transcript,
        plans_compiled: stats.plans_compiled,
        invalidations: stats.invalidations,
        batch_rounds: stats.batch_rounds,
    }
}

fn json_report(cfg_label: &str, window: usize, rounds: u64, runs: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"config\": \"{cfg_label}\",\n"));
    out.push_str("  \"pattern\": \"checkerboard\",\n");
    out.push_str("  \"interval_ms\": 1024.0,\n");
    out.push_str("  \"dram_temp_c\": 60.0,\n");
    out.push_str(&format!("  \"candidate_window_cells\": {window},\n"));
    out.push_str(&format!("  \"timed_rounds\": {rounds},\n"));
    let single = |engine: TrialEngine| {
        runs.iter()
            .find(|m| m.engine == engine && m.threads == 1)
            .map_or(0.0, |m| m.rounds_per_sec)
    };
    let scalar = single(TrialEngine::Scalar);
    let compiled = single(TrialEngine::Compiled);
    let batch = single(TrialEngine::Batch);
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    out.push_str(&format!(
        "  \"speedup_single_thread\": {:.2},\n",
        ratio(compiled, scalar)
    ));
    out.push_str(&format!(
        "  \"batch_speedup_vs_scalar\": {:.2},\n",
        ratio(batch, scalar)
    ));
    out.push_str(&format!(
        "  \"batch_speedup_vs_compiled\": {:.2},\n",
        ratio(batch, compiled)
    ));
    out.push_str("  \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        let sep = if i + 1 == runs.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"engine\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}, \"rounds_per_sec\": {:.2}, \"plans_compiled\": {}, \"invalidations\": {}, \"batch_rounds\": {}}}{sep}\n",
            engine_name(m.engine),
            m.threads,
            m.wall_ms,
            m.rounds_per_sec,
            m.plans_compiled,
            m.invalidations,
            m.batch_rounds,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config { smoke: false, json_path: None, rounds: 0, gate: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--smoke" {
            cfg.smoke = true;
        } else if arg == "--gate" {
            cfg.gate = true;
        } else if arg == "--json" {
            cfg.json_path = Some("BENCH_trial.json".to_string());
        } else if let Some(path) = arg.strip_prefix("--json=") {
            cfg.json_path = Some(path.to_string());
        } else if arg == "--rounds" {
            let n = args.next().ok_or("--rounds needs a value")?;
            cfg.rounds = n.parse().map_err(|_| format!("bad --rounds value: {n}"))?;
        } else {
            return Err(format!("unknown argument: {arg}"));
        }
    }
    if cfg.rounds == 0 {
        // Full mode times four full 64-round batches: long enough that the
        // 4t-vs-1t gate ratio is not at the mercy of a ~3 ms timed region.
        cfg.rounds = if cfg.smoke { 12 } else { 256 };
    }
    if !cfg.smoke && cfg.json_path.is_none() {
        cfg.json_path = Some("BENCH_trial.json".to_string());
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("trial_bench: {msg}");
            eprintln!("usage: trial_bench [--smoke] [--json[=PATH]] [--rounds N] [--gate]");
            return ExitCode::FAILURE;
        }
    };

    // Full mode uses the unscaled Vendor B chip (the acceptance target);
    // smoke keeps CI fast with a 1/8-capacity device.
    let (chip_cfg, cfg_label) = if cfg.smoke {
        (
            RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 8),
            "vendor B, 1/8 capacity (smoke)",
        )
    } else {
        (RetentionConfig::for_vendor(Vendor::B), "vendor B, full capacity")
    };

    let window = SimulatedChip::new(chip_cfg.clone(), B_CHIP_SEED)
        .candidate_window(Ms::new(1024.0), dram_temp(Celsius::new(45.0)));
    emit!(
        "trial_bench: {} — checkerboard @ 1024ms / 60°C, {} candidate cells, {} timed rounds",
        cfg_label,
        window,
        cfg.rounds
    );

    let mut runs = Vec::new();
    for engine in [TrialEngine::Scalar, TrialEngine::Compiled, TrialEngine::Batch] {
        for threads in [1usize, 4] {
            let mut m = run_config(&chip_cfg, engine, threads, cfg.rounds);
            if cfg.gate {
                // Best-of-2: gate mode compares thread counts, so shave
                // one-off noise (page faults, pool spin-up) off each
                // configuration. Transcripts are deterministic, so either
                // run's copy is the same — keep the faster timing.
                let again = run_config(&chip_cfg, engine, threads, cfg.rounds);
                if again.rounds_per_sec > m.rounds_per_sec {
                    m = again;
                }
            }
            emit!(
                "  {:>8} engine, {} thread(s): {:>9.1} rounds/sec  ({:.1} ms, {} plan(s) compiled, {} invalidation(s))",
                engine_name(m.engine),
                m.threads,
                m.rounds_per_sec,
                m.wall_ms,
                m.plans_compiled,
                m.invalidations
            );
            runs.push(m);
        }
    }
    reaper_exec::set_thread_count(None);

    // Equality gate: every configuration must produce the exact transcript
    // the single-thread scalar reference did.
    let Some((reference_run, rest)) = runs.split_first() else {
        eprintln!("trial_bench: no configurations ran");
        return ExitCode::FAILURE;
    };
    for m in rest {
        if m.transcript != reference_run.transcript {
            eprintln!(
                "trial_bench: MISMATCH — {} engine at {} thread(s) diverged from the scalar reference",
                engine_name(m.engine),
                m.threads
            );
            return ExitCode::FAILURE;
        }
    }
    emit!(
        "  equality: all {} configurations byte-identical across {} rounds each",
        runs.len(),
        reference_run.transcript.len()
    );

    if cfg.gate {
        // Thread-scaling gate: regression guard for the per-call
        // thread::scope spawn storm that once made 4 compiled threads
        // ~3× *slower* than 1. The pool clamps its width to physical
        // parallelism, so on a single-core runner 4t runs the same inline
        // code as 1t; the tolerance absorbs residual timer noise.
        const GATE_TOLERANCE: f64 = 0.95;
        for engine in [TrialEngine::Compiled, TrialEngine::Batch] {
            let at = |threads: usize| {
                runs.iter()
                    .find(|m| m.engine == engine && m.threads == threads)
                    .map_or(0.0, |m| m.rounds_per_sec)
            };
            let (one, four) = (at(1), at(4));
            if four < one * GATE_TOLERANCE {
                eprintln!(
                    "trial_bench: GATE FAILURE — {} engine: 4 threads ({four:.1} rounds/sec) \
                     is below 1 thread ({one:.1} rounds/sec) × {GATE_TOLERANCE}",
                    engine_name(engine)
                );
                return ExitCode::FAILURE;
            }
            emit!(
                "  gate: {} engine 4t/1t ratio {:.2} (>= {GATE_TOLERANCE})",
                engine_name(engine),
                four / one.max(1e-9)
            );
        }
    }

    let report = json_report(cfg_label, window, cfg.rounds, &runs);
    if let Some(path) = &cfg.json_path {
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("trial_bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        emit!("  wrote {path}");
    }
    ExitCode::SUCCESS
}
