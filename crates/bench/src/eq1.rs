//! Eq. 1 — per-vendor exponential temperature dependence of the retention
//! failure rate: `R_A ∝ e^{0.22ΔT}`, `R_B ∝ e^{0.20ΔT}`, `R_C ∝ e^{0.26ΔT}`.
//!
//! Methodology: profile each vendor's chips at 1024 ms across the chamber's
//! ambient range and fit `ln(failures)` against temperature.

use reaper_analysis::fit::LinearFit;
use reaper_dram_model::{Celsius, Ms, Vendor};

use crate::table::{fmt_f, Scale, Table};
use crate::util::{profile_union, study_population};

/// Runs the experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Eq. 1 — temperature dependence of retention failure rate",
        &["vendor", "fitted k (/°C)", "paper k", "R² (ln-linear)"],
    );

    let temps = [40.0, 45.0, 50.0, 55.0];
    let iterations = scale.pick(2, 4);
    let pop = study_population(scale);
    let chips_per_vendor = scale.pick(3, 8);

    for vendor in Vendor::ALL {
        let chips: Vec<_> = pop.chips_of(vendor).take(chips_per_vendor).collect();
        let mut points: Vec<(f64, f64)> = Vec::new();
        for &t in &temps {
            // One profiling campaign per chip, each on a private clone.
            let counts = reaper_exec::par_map(&chips, |chip| {
                let mut chip = (*chip).clone();
                profile_union(&mut chip, Ms::new(1024.0), Celsius::new(t), iterations).len()
            });
            let total: usize = counts.iter().sum();
            if total > 0 && !counts.is_empty() {
                points.push((t, (total as f64).ln()));
            }
        }
        let fit = LinearFit::fit(&points)
            .expect("invariant: the fixed temperature sweep yields >= 2 points per vendor");
        table.push_row(vec![
            vendor.to_string(),
            fmt_f(fit.slope),
            fmt_f(vendor.temperature_coefficient()),
            fmt_f(fit.r_squared),
        ]);
    }
    table.note("paper: ~10x failure-rate increase per 10°C (k ≈ 0.20–0.26)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitted_coefficients_match_eq1() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let fitted: f64 = row[1].parse().unwrap();
            let paper: f64 = row[2].parse().unwrap();
            assert!(
                (fitted - paper).abs() < 0.08,
                "{}: fitted {fitted} vs paper {paper}",
                row[0]
            );
            let r2: f64 = row[3].parse().unwrap();
            assert!(r2 > 0.9, "{}: R² {r2}", row[0]);
        }
    }
}
