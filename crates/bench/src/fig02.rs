//! Fig. 2 — retention failure rates (BER) vs. refresh interval, with
//! failures classified against lower intervals as *unique* (never seen at a
//! lower interval), *repeat* (seen lower and here), and *non-repeat* (seen
//! lower but not here).
//!
//! Reproduces Observation 1: most cells failing at an interval fail again
//! at higher intervals (repeat ≫ non-repeat).

use std::collections::BTreeSet;

use reaper_dram_model::{Celsius, Ms};

use crate::table::{fmt_f, Scale, Table};
use crate::util::{profile_union, study_population};

/// Runs the experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig. 2 — BER vs. refresh interval (unique / repeat / non-repeat), 45°C",
        &[
            "interval",
            "unique BER",
            "repeat BER",
            "non-repeat BER",
            "total BER",
        ],
    );

    let intervals = [64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0];
    let iterations = scale.pick(2, 4);
    let ambient = Celsius::new(45.0);
    let pop = study_population(scale);

    // Per interval: (unique, repeat, nonrepeat) cell counts summed over
    // chips, with per-chip classification against all lower intervals.
    // Chips are independent: each worker walks one chip's interval ladder
    // on a private clone, and counts are folded in input order.
    let per_chip = reaper_exec::par_map(pop.chips(), |chip| {
        let mut chip = chip.clone();
        let mut counts = vec![(0u64, 0u64, 0u64); intervals.len()];
        let mut seen_lower: BTreeSet<u64> = BTreeSet::new();
        for (ii, &interval) in intervals.iter().enumerate() {
            let profile = profile_union(&mut chip, Ms::new(interval), ambient, iterations);
            let here: BTreeSet<u64> = profile.iter().collect();
            let repeat = here.intersection(&seen_lower).count() as u64;
            let unique = here.len() as u64 - repeat;
            let nonrepeat = seen_lower.difference(&here).count() as u64;
            counts[ii] = (unique, repeat, nonrepeat);
            seen_lower.extend(here);
        }
        (chip.config().represented_bits, counts)
    });

    let mut sums = vec![(0u64, 0u64, 0u64); intervals.len()];
    let mut represented_bits = 0u64;
    for (bits, counts) in per_chip {
        represented_bits += bits;
        for (ii, (u, r, n)) in counts.into_iter().enumerate() {
            sums[ii].0 += u;
            sums[ii].1 += r;
            sums[ii].2 += n;
        }
    }

    for (ii, &interval) in intervals.iter().enumerate() {
        let (u, r, n) = sums[ii];
        let ber = |c: u64| c as f64 / represented_bits as f64;
        table.push_row(vec![
            Ms::new(interval).to_string(),
            fmt_f(ber(u)),
            fmt_f(ber(r)),
            fmt_f(ber(n)),
            fmt_f(ber(u + r)),
        ]);
    }
    table.note("paper: total BER grows polynomially; repeat dominates non-repeat (Obs. 1)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_grows_and_repeats_dominate() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 7);
        let total = |row: &Vec<String>| row[4].parse::<f64>().unwrap();
        let at_512 = total(&t.rows[3]);
        let at_4096 = total(&t.rows[6]);
        assert!(at_4096 > 10.0 * at_512, "{at_512} -> {at_4096}");
        // At high intervals, repeat >> non-repeat (Observation 1).
        let repeat: f64 = t.rows[6][2].parse().unwrap();
        let nonrepeat: f64 = t.rows[6][3].parse().unwrap();
        assert!(repeat > 3.0 * nonrepeat.max(1e-12));
        // Total BER at 1024ms is in the calibrated ballpark (≈1.4e-7).
        let at_1024 = total(&t.rows[4]);
        assert!((3e-8..6e-7).contains(&at_1024), "BER(1024ms) = {at_1024}");
    }
}
