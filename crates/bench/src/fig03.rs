//! Fig. 3 — brute-force failure discovery over six days at 2048 ms / 45 °C
//! on the representative chip: cumulative, per-iteration unique, and
//! per-iteration repeat counts.
//!
//! Reproduces the two-phase shape: a base-set discovery knee (~10 hours in
//! the paper) followed by steady-state VRT accumulation (~1 new cell per
//! 20 seconds at these conditions).

use reaper_core::profiler::{PatternSet, Profiler};
use reaper_core::TargetConditions;
use reaper_dram_model::{Celsius, Ms};

use crate::table::{fmt_f, Scale, Table};
use crate::util::{harness_for, representative_chip};

/// Wall-clock seconds per profiling iteration in the paper's campaign
/// (6 days / 800 iterations).
const SECS_PER_ITERATION: f64 = 6.0 * 86_400.0 / 800.0;

/// Runs the experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig. 3 — brute-force discovery over time, 2048ms @ 45°C (Vendor B chip)",
        &["hours", "iteration", "cumulative", "unique/iter", "repeat/iter"],
    );

    let iterations = scale.pick(80u32, 800u32);
    let report_every = scale.pick(8u32, 50u32);
    let chip = representative_chip(scale);
    let mut harness = harness_for(&chip, Celsius::new(45.0), 3);
    let target = TargetConditions::new(Ms::new(2048.0), Celsius::new(45.0));
    let profiler = Profiler::brute_force(target, 1, PatternSet::Standard);

    let mut cumulative = reaper_core::FailureProfile::new();
    let mut stats_log: Vec<(f64, usize, usize, usize)> = Vec::new();
    for it in 0..iterations {
        // Pad each iteration to the paper's campaign cadence so VRT
        // arrivals accrue on the real-time axis.
        let run = profiler.run(&mut harness);
        let iter_time = run.runtime.as_secs();
        if iter_time < SECS_PER_ITERATION {
            harness.idle(Ms::from_secs(SECS_PER_ITERATION - iter_time));
        }
        let mut unique = 0usize;
        let mut repeat = 0usize;
        for cell in run.profile.iter() {
            if cumulative.insert(cell) {
                unique += 1;
            } else {
                repeat += 1;
            }
        }
        let hours = (it + 1) as f64 * SECS_PER_ITERATION / 3600.0;
        stats_log.push((hours, cumulative.len(), unique, repeat));
    }

    for (i, &(hours, cum, unique, repeat)) in stats_log.iter().enumerate() {
        if (i + 1) % report_every as usize == 0 || i == 0 {
            table.push_row(vec![
                fmt_f(hours),
                (i + 1).to_string(),
                cum.to_string(),
                unique.to_string(),
                repeat.to_string(),
            ]);
        }
    }

    // Steady-state accumulation rate over the second half of the campaign.
    let half = stats_log.len() / 2;
    let (h0, c0, ..) = stats_log[half];
    let (h1, c1, ..) = *stats_log
        .last()
        .expect("invariant: the campaign loop always logs at least one entry");
    let rate_per_hour = (c1 - c0) as f64 / (h1 - h0);
    table.note(format!(
        "steady-state accumulation: {:.1} cells/hour (paper: ~180 cells/hour ≙ 1 cell / 20 s at full 2GB capacity; \
         this chip represents 1/{} of that)",
        rate_per_hour,
        (2.0 * (1u64 << 30) as f64 * 8.0 / chip.config().represented_bits as f64) as u64
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_has_knee_then_steady_accumulation() {
        let t = run(Scale::Quick);
        assert!(t.rows.len() >= 5);
        let cum: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        // Nondecreasing cumulative counts.
        for w in cum.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // The first reported iteration already finds most of the base set:
        // late-campaign cumulative must not be a large multiple of it.
        let first = cum[0].max(1.0);
        let last = *cum.last().unwrap();
        assert!(last < first * 3.0, "first {first}, last {last}");
        assert!(last > first, "VRT accumulation must add cells");
    }
}
