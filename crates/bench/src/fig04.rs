//! Fig. 4 — steady-state new-failure accumulation rate vs. refresh
//! interval, per vendor, with power-law fits `y = a·x^b`.
//!
//! Methodology: per chip, discover the base failing set with a warm-up
//! profile, then measure newly discovered unique cells per hour over a
//! measurement window spread across simulated wall-clock time.

use reaper_analysis::fit::PowerLawFit;
use reaper_dram_model::{Celsius, DataPattern, Ms, Vendor};
use reaper_retention::{RetentionConfig, SimulatedChip};

use crate::table::{fmt_f, Scale, Table};
use crate::util::dram_temp;

/// Runs the experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig. 4 — steady-state failure accumulation rate vs. interval, 45°C",
        &["vendor", "interval", "rate (cells/hour)", "fit"],
    );

    let ambient = Celsius::new(45.0);
    let temp = dram_temp(ambient);
    let intervals_s: &[f64] = &[1.024, 1.536, 2.048, 3.072];
    // The measurement window must be long enough (in wall-clock hours, at
    // fixed iteration count) that VRT arrivals dominate the residual
    // discovery of low-probability base cells — otherwise the fitted
    // exponent is dragged down by the straggler tail.
    let warmup_iters = scale.pick(12u64, 24u64);
    let measure_hours = scale.pick(96.0, 192.0);
    let measure_iters = scale.pick(12u64, 24u64);
    // Quick mode measures the representative vendor only; Full runs all
    // three (full-capacity chips make this the costliest characterization).
    let vendors: &[Vendor] = scale.pick(&[Vendor::B][..], &Vendor::ALL[..]);

    for &vendor in vendors {
        let mut points = Vec::new();
        for (k, &t_s) in intervals_s.iter().enumerate() {
            // Full capacity so low rates are measurable.
            let cfg = RetentionConfig::for_vendor(vendor);
            let mut chip = SimulatedChip::new(cfg, 0xF164 + k as u64);
            let interval = Ms::from_secs(t_s);

            // Warm-up: discover the base set without advancing time.
            let mut seen = std::collections::BTreeSet::new();
            for it in 0..warmup_iters {
                for p in DataPattern::standard_set(it) {
                    seen.extend(chip.retention_trial(p, interval, temp).into_vec());
                }
            }
            // Measurement: spread iterations over wall-clock hours.
            let step = Ms::from_hours(measure_hours / measure_iters as f64);
            let mut new_cells = 0u64;
            for it in 0..measure_iters {
                chip.advance(step);
                for p in DataPattern::standard_set(warmup_iters + it) {
                    for cell in chip.retention_trial(p, interval, temp).into_vec() {
                        if seen.insert(cell) {
                            new_cells += 1;
                        }
                    }
                }
            }
            let rate = new_cells as f64 / measure_hours;
            points.push((t_s, rate.max(1e-3)));
            table.push_row(vec![
                vendor.to_string(),
                Ms::from_secs(t_s).to_string(),
                fmt_f(rate),
                String::new(),
            ]);
        }
        let fit = PowerLawFit::fit(&points)
            .expect("invariant: every point's rate is clamped to >= 1e-3 above");
        table.push_row(vec![
            vendor.to_string(),
            "fit".to_string(),
            String::new(),
            fit.to_string(),
        ]);
    }
    table.note("paper fits: polynomial y = a·x^b per vendor; §6.2.3 anchor A(1024ms) = 0.73 cells/hour (Vendor B, 2GB)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_grow_polynomially_with_interval() {
        let t = run(Scale::Quick);
        // For each vendor: rate at 3072ms must dwarf rate at 1024ms.
        for vendor_rows in t.rows.chunks(5) {
            let low: f64 = vendor_rows[0][2].parse().unwrap();
            let high: f64 = vendor_rows[3][2].parse().unwrap();
            assert!(
                high > 10.0 * low.max(0.05),
                "{}: {low} -> {high}",
                vendor_rows[0][0]
            );
            // Fitted exponent is large (paper: ~7.6-8.2).
            let fit = &vendor_rows[4][3];
            assert!(fit.contains("x^"), "fit row: {fit}");
        }
    }
}
