//! Fig. 5 — coverage of unique retention failures per data pattern over a
//! long brute-force campaign (2048 ms, 45 °C).
//!
//! Reproduces Observation 3: the random pattern approaches — but never
//! reaches — full coverage on its own; a robust profiler needs multiple
//! patterns.

use std::collections::BTreeSet;

use reaper_dram_model::{Celsius, DataPattern, Ms, PatternFamily};

use crate::table::{fmt_pct, Scale, Table};
use crate::util::{dram_temp, representative_chip};

/// Runs the experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig. 5 — per-pattern coverage of all discovered failures, 2048ms @ 45°C",
        &["iteration", "solid", "checkerboard", "row_stripe", "col_stripe", "walking", "random"],
    );

    let iterations = scale.pick(48u64, 800u64);
    let checkpoints: Vec<u64> = {
        let mut v = vec![1, 2, 4, 8, 16, 32, 48, 100, 200, 400, 800];
        v.retain(|&c| c <= iterations);
        v
    };
    let secs_per_iter = 6.0 * 86_400.0 / 800.0;

    let mut chip = representative_chip(scale);
    let temp = dram_temp(Celsius::new(45.0));
    let interval = Ms::new(2048.0);

    let mut per_family: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); PatternFamily::ALL.len()];
    let mut grand: BTreeSet<u64> = BTreeSet::new();
    let mut rows: Vec<(u64, Vec<f64>)> = Vec::new();

    for it in 0..iterations {
        chip.advance(Ms::from_secs(secs_per_iter));
        for (fi, &family) in PatternFamily::ALL.iter().enumerate() {
            let base = pattern_for(family, it);
            for p in [base, base.inverse()] {
                let found = chip.retention_trial(p, interval, temp).into_vec();
                per_family[fi].extend(found.iter().copied());
                grand.extend(found);
            }
        }
        if checkpoints.contains(&(it + 1)) {
            let total = grand.len().max(1) as f64;
            rows.push((
                it + 1,
                per_family.iter().map(|s| s.len() as f64 / total).collect(),
            ));
        }
    }

    for (it, covs) in rows {
        let mut row = vec![it.to_string()];
        row.extend(covs.iter().map(|&c| fmt_pct(c)));
        table.push_row(row);
    }
    table.note("paper Obs. 3: random discovers the most failures but cannot find every failure alone");
    table
}

fn pattern_for(family: PatternFamily, iteration: u64) -> DataPattern {
    match family {
        PatternFamily::Solid => DataPattern::solid0(),
        PatternFamily::Checkerboard => DataPattern::checkerboard(),
        PatternFamily::RowStripe => DataPattern::row_stripe(),
        PatternFamily::ColStripe => DataPattern::col_stripe(),
        PatternFamily::Walking => DataPattern::walking1(iteration % 8),
        PatternFamily::Random => DataPattern::random(0xF15 ^ iteration),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_leads_but_is_incomplete() {
        let t = run(Scale::Quick);
        let last = t.rows.last().expect("rows");
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap() / 100.0;
        let covs: Vec<f64> = last[1..].iter().map(|s| parse(s)).collect();
        let random = covs[5];
        // Random must be (near-)best...
        for (i, &c) in covs.iter().enumerate().take(5) {
            assert!(
                random >= c - 0.02,
                "random {random} vs {} {c}",
                PatternFamily::ALL[i]
            );
        }
        // ...but incomplete on its own.
        assert!(random < 0.999, "random coverage {random}");
        // Coverage is nondecreasing over checkpoints for every family.
        for col in 1..=6 {
            let series: Vec<f64> = t.rows.iter().map(|r| parse(&r[col])).collect();
            for w in series.windows(2) {
                assert!(w[1] >= w[0] - 0.05, "column {col}: {w:?}");
            }
        }
    }
}
