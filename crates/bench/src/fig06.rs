//! Fig. 6 — individual-cell failure CDFs: (a) each cell's failure
//! probability vs. refresh interval is a normal CDF; (b) the per-cell
//! standard deviations follow a lognormal distribution, mostly below
//! 200 ms at 40 °C.

use reaper_analysis::dist::LogNormal;
use reaper_analysis::stats::Histogram;
use reaper_dram_model::Celsius;

use crate::table::{fmt_f, Scale, Table};
use crate::util::{estimate_cell_fits, representative_chip};

/// Runs the experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig. 6 — per-cell failure-CDF normality (a) and σ histogram (b), 40°C",
        &["σ bin center (ms)", "cells", "fraction"],
    );

    let chip = representative_chip(scale);
    let steps = scale.pick(26usize, 40usize);
    // 16 trials even at Quick scale: the Fig. 6a asymmetry statistic is
    // quantization-limited (empirical CDF fractions step by 1/trials), and
    // 8 trials leaves too coarse a staircase to resolve the 16/84 crossings.
    let trials = scale.pick(16u64, 16u64);
    let intervals: Vec<f64> = (0..steps).map(|i| 0.3 + i as f64 * 0.15).collect();
    let fits = estimate_cell_fits(&chip, Celsius::new(40.0), &intervals, trials);
    assert!(!fits.is_empty(), "no cells could be fitted");

    let mut hist =
        Histogram::new(0.0, 500.0, 10).expect("invariant: literal bounds are valid (0 < 500, 10 bins)");
    hist.add_all(fits.iter().map(|f| f.sigma * 1e3));
    for (center, count) in hist.iter() {
        table.push_row(vec![
            fmt_f(center),
            count.to_string(),
            fmt_f(count as f64 / fits.len() as f64),
        ]);
    }

    let sigmas: Vec<f64> = fits.iter().map(|f| f.sigma).collect();
    let below_200ms = sigmas.iter().filter(|&&s| s < 0.2).count() as f64 / sigmas.len() as f64;
    table.note(format!(
        "{} cells fitted; {:.1}% have σ < 200ms (paper: 'majority ... less than 200ms')",
        fits.len(),
        below_200ms * 100.0
    ));
    // Fig. 6a check: a normal CDF is symmetric about its median; the
    // fitted 16/50/84 crossings measure that directly.
    let mean_abs_asym =
        fits.iter().map(|f| f.asymmetry.abs()).sum::<f64>() / fits.len() as f64;
    table.note(format!(
        "Fig. 6a normality: mean |CDF asymmetry| = {mean_abs_asym:.3} (0 = perfectly normal)"
    ));
    if let Ok(ln) = LogNormal::fit(&sigmas) {
        table.note(format!(
            "lognormal fit of σ: median {:.1} ms, log-sd {:.2} (paper: tight lognormal)",
            ln.median() * 1e3,
            ln.sigma()
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_distribution_is_mostly_under_200ms() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 10);
        let below: f64 = t.notes[0]
            .split('%')
            .next()
            .unwrap()
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(below > 60.0, "only {below}% below 200ms");
        // The histogram's mass must sit in the low bins (right-skewed).
        let counts: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let low: f64 = counts[..4].iter().sum();
        let high: f64 = counts[6..].iter().sum();
        assert!(low > high, "low {low} vs high {high}");
        // Fig. 6a: per-cell CDFs are close to symmetric (normal).
        let asym: f64 = t.notes[1]
            .split("= ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(asym < 0.5, "mean |asymmetry| {asym}");
    }
}
