//! Fig. 7 — distributions of the per-cell normal-CDF parameters (μ, σ)
//! across temperatures: both distributions shift left (smaller) as
//! temperature rises.
//!
//! Methodology: fit each cell's CDF at 40 °C, then re-fit the *same cells*
//! at higher temperatures and compare the parameter distributions.

use std::collections::BTreeMap;

use reaper_analysis::stats;
use reaper_dram_model::Celsius;

use crate::table::{fmt_f, Scale, Table};
use crate::util::{estimate_cell_fit_map, representative_chip, CellFit};

/// Runs the experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig. 7 — per-cell (μ, σ) distributions vs. ambient temperature (same cells tracked)",
        &["ambient", "cells", "mean μ (s)", "median μ (s)", "mean σ (ms)", "median σ (ms)"],
    );

    let chip = representative_chip(scale);
    let steps = scale.pick(24usize, 36usize);
    let trials = scale.pick(6u64, 12u64);
    let intervals: Vec<f64> = (0..steps).map(|i| 0.2 + i as f64 * 0.16).collect();

    let temps = [40.0, 45.0, 50.0, 55.0];
    // Each temperature characterizes an independent clone of the chip.
    let maps: Vec<BTreeMap<u64, CellFit>> = reaper_exec::par_map(&temps, |&a| {
        estimate_cell_fit_map(&chip, Celsius::new(a), &intervals, trials)
    });

    // Cells fitted at every temperature — the trackable subset, in
    // ascending cell-index order straight from the BTreeMap.
    let common: Vec<u64> = maps[0]
        .keys()
        .filter(|c| maps.iter().all(|m| m.contains_key(c)))
        .copied()
        .collect();
    assert!(!common.is_empty(), "no common cells across temperatures");

    for (mi, &ambient) in temps.iter().enumerate() {
        let mut mus: Vec<f64> = common.iter().map(|c| maps[mi][c].mu).collect();
        let mut sigmas: Vec<f64> = common.iter().map(|c| maps[mi][c].sigma * 1e3).collect();
        mus.sort_by(|a, b| a.partial_cmp(b).expect("invariant: fitted params are finite"));
        sigmas.sort_by(|a, b| a.partial_cmp(b).expect("invariant: fitted params are finite"));
        table.push_row(vec![
            format!("{ambient}°C"),
            common.len().to_string(),
            fmt_f(stats::mean(&mus).expect("invariant: common is non-empty (asserted above)")),
            fmt_f(
                stats::percentile_sorted(&mus, 50.0)
                    .expect("invariant: common is non-empty (asserted above)"),
            ),
            fmt_f(stats::mean(&sigmas).expect("invariant: common is non-empty (asserted above)")),
            fmt_f(
                stats::percentile_sorted(&sigmas, 50.0)
                    .expect("invariant: common is non-empty (asserted above)"),
            ),
        ]);
    }
    table.note("paper: both distributions shift left with increasing temperature");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributions_shift_left_with_temperature() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        let mu_means: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(
            *mu_means.last().unwrap() < mu_means[0],
            "mean μ must shrink with temperature: {mu_means:?}"
        );
        let sig_means: Vec<f64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        assert!(
            *sig_means.last().unwrap() < sig_means[0] * 1.05,
            "mean σ should not grow with temperature: {sig_means:?}"
        );
    }
}
