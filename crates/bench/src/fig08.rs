//! Fig. 8 — the combined failure distribution of all characterized cells
//! vs. refresh interval, across temperatures: at higher temperature or
//! longer interval the typical cell is more likely to fail, and the two
//! knobs are interchangeable (≈1 s of interval ≙ ≈10 °C at these
//! conditions).
//!
//! Methodology: combine the per-cell normal fits of the cells tracked
//! across every temperature ("combining the normal distributions of
//! individual cell failures from a representative chip").

use std::collections::BTreeMap;

use reaper_analysis::stats;
use reaper_dram_model::Celsius;

use crate::table::{fmt_f, Scale, Table};
use crate::util::{estimate_cell_fit_map, representative_chip, CellFit};

/// Runs the experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig. 8 — combined failure distribution (mean μ ± combined σ) vs. temperature",
        &["ambient", "combined mean (s)", "combined sd (s)", "mean-shift vs 40°C (s)"],
    );

    let chip = representative_chip(scale);
    let steps = scale.pick(24usize, 36usize);
    let trials = scale.pick(6u64, 12u64);
    let intervals: Vec<f64> = (0..steps).map(|i| 0.2 + i as f64 * 0.16).collect();

    let temps = [40.0, 45.0, 50.0, 55.0];
    // Each temperature characterizes an independent clone of the chip.
    let maps: Vec<BTreeMap<u64, CellFit>> = reaper_exec::par_map(&temps, |&a| {
        estimate_cell_fit_map(&chip, Celsius::new(a), &intervals, trials)
    });
    // BTreeMap keys iterate sorted, so the float summations below fold in
    // a fixed order.
    let common: Vec<u64> = maps[0]
        .keys()
        .filter(|c| maps.iter().all(|m| m.contains_key(c)))
        .copied()
        .collect();
    assert!(!common.is_empty(), "no common cells across temperatures");

    let mut means = Vec::new();
    for (mi, &ambient) in temps.iter().enumerate() {
        let mus: Vec<f64> = common.iter().map(|c| maps[mi][c].mu).collect();
        let mean = stats::mean(&mus).expect("invariant: common is non-empty (asserted above)");
        let sd = stats::std_dev(&mus).expect("invariant: common is non-empty (asserted above)");
        means.push(mean);
        table.push_row(vec![
            format!("{ambient}°C"),
            fmt_f(mean),
            fmt_f(sd),
            fmt_f(means[0] - mean),
        ]);
    }

    // Interval-per-degree equivalence over the measured span.
    let span = temps.last().expect("invariant: temps is a fixed non-empty array") - temps[0];
    let shift = means[0] - means.last().expect("invariant: means is a fixed non-empty array");
    table.note(format!(
        "equivalence: {:.2} s of interval per 10°C over {}–{}°C (paper: ~1 s ≙ 10°C at 45°C)",
        shift / span * 10.0,
        temps[0],
        temps.last().expect("invariant: temps is a fixed non-empty array")
    ));
    table.note(format!("{} cells tracked across all temperatures", common.len()));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_distribution_shifts_with_temperature() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        let means: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(
            *means.last().unwrap() < means[0],
            "combined mean must drop with heat: {means:?}"
        );
        assert!(t.notes[0].contains("equivalence"));
    }
}
