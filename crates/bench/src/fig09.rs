//! Fig. 9 — coverage (top) and false positive rate (bottom) as functions of
//! the reach conditions (Δ refresh interval × Δ temperature), for the
//! representative chip at a 1024 ms / 45 °C target.

use reaper_core::tradeoff::{ExploreOptions, GroundTruth, TradeoffAnalysis};
use reaper_core::TargetConditions;
use reaper_dram_model::{Celsius, Ms};

use crate::table::{fmt_pct, Scale, Table};
use crate::util::representative_chip;

/// Shared exploration used by Figs. 9 and 10.
pub fn explore(scale: Scale) -> TradeoffAnalysis {
    let chip = representative_chip(scale);
    let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
    let deltas_i: Vec<Ms> = scale
        .pick(vec![0.0, 125.0, 250.0, 500.0], vec![0.0, 125.0, 250.0, 375.0, 500.0, 750.0, 1000.0])
        .into_iter()
        .map(Ms::new)
        .collect();
    let deltas_t: Vec<f64> = scale.pick(vec![0.0, 5.0], vec![0.0, 2.5, 5.0, 7.5, 10.0]);
    let opts = ExploreOptions {
        profile_iterations: scale.pick(8, 16),
        ground_truth: GroundTruth::Empirical {
            iterations: scale.pick(16, 32),
        },
        coverage_goal: 0.9,
        max_runtime_iterations: scale.pick(48, 96),
        seed: 0x0F19,
    };
    TradeoffAnalysis::explore(&chip, target, &deltas_i, &deltas_t, opts)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Table {
    let analysis = explore(scale);
    let mut table = Table::new(
        "Fig. 9 — coverage and false positive rate vs. reach conditions (target 1024ms @ 45°C)",
        &["Δtemp (°C)", "Δinterval", "coverage", "false positive rate"],
    );
    for p in &analysis.points {
        table.push_row(vec![
            format!("{:+.1}", p.reach.delta_temp),
            format!("{:+}", p.reach.delta_interval),
            fmt_pct(p.coverage),
            fmt_pct(p.false_positive_rate),
        ]);
    }
    table.note(format!(
        "ground truth: {} cells (empirical union at target)",
        analysis.ground_truth_size
    ));
    table.note("paper: raising either knob raises coverage AND false positives (direct tradeoff)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(s: &str) -> f64 {
        s.trim_end_matches('%').parse::<f64>().unwrap() / 100.0
    }

    #[test]
    fn coverage_and_fpr_rise_along_both_axes() {
        let t = run(Scale::Quick);
        // Quick grid: 4 interval deltas x 2 temp deltas, row-major by temp.
        assert_eq!(t.rows.len(), 8);
        let cov: Vec<f64> = t.rows.iter().map(|r| pct(&r[2])).collect();
        let fpr: Vec<f64> = t.rows.iter().map(|r| pct(&r[3])).collect();
        // Within the 0°C row: +500ms beats brute force on coverage and FPR
        // rises.
        assert!(cov[3] >= cov[0] - 0.01, "coverage {:?}", &cov[..4]);
        assert!(fpr[3] > fpr[0], "fpr {:?}", &fpr[..4]);
        // Temperature axis: (+0ms, +5°C) also raises both.
        assert!(cov[4] >= cov[0] - 0.01);
        assert!(fpr[4] > fpr[0]);
        // Headline vicinity: +250ms achieves >97% coverage with FPR < 60%.
        assert!(cov[2] > 0.97, "+250ms coverage {}", cov[2]);
        assert!(fpr[2] < 0.60, "+250ms fpr {}", fpr[2]);
    }
}
