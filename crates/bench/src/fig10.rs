//! Fig. 10 — profiling runtime (normalized to brute force) vs. reach
//! conditions: iterations to 90 % coverage of the target ground truth,
//! converted to time by the Eq. 9 cost model.

use crate::fig09;
use crate::table::{fmt_f, Scale, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Table {
    let analysis = fig09::explore(scale);
    let mut table = Table::new(
        "Fig. 10 — relative profiling runtime vs. reach conditions (90% coverage goal)",
        &["Δtemp (°C)", "Δinterval", "iterations", "patterns", "runtime vs brute force", "speedup"],
    );
    for p in &analysis.points {
        table.push_row(vec![
            format!("{:+.1}", p.reach.delta_temp),
            format!("{:+}", p.reach.delta_interval),
            format!("{}{}", p.iterations_to_goal, if p.met_goal { "" } else { "*" }),
            p.patterns_to_goal.to_string(),
            fmt_f(p.runtime_rel),
            format!("{:.2}x", p.speedup()),
        ]);
    }
    table.note("* goal not met within the iteration cap");
    table.note("paper: aggressive reach conditions yield large speedups at the cost of false positives");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reach_is_faster_than_brute_force() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 8);
        let rel: Vec<f64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        // Brute force row normalizes to 1.0.
        assert!((rel[0] - 1.0).abs() < 1e-9);
        // Larger interval reach is faster (fewer iterations dominate the
        // slightly longer per-iteration wait).
        assert!(rel[3] < 1.0, "+500ms rel {}", rel[3]);
        // Temperature reach alone is also faster than brute force.
        assert!(rel[4] <= 1.0 + 1e-9, "+5C rel {}", rel[4]);
    }
}
