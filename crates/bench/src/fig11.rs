//! Fig. 11 — fraction of total system time spent profiling vs. online
//! profiling interval, for brute-force profiling and REAPER (2.5×), across
//! chip sizes (Eq. 9 with 16 iterations, 6 data patterns, profiling at
//! 1024 ms).

use reaper_core::overhead::{OverheadModel, PAPER_CHIP_SIZES_GBIT};
use reaper_dram_model::Ms;

use crate::table::{fmt_pct, Scale, Table};

/// REAPER's measured runtime speedup over brute force (§6.1.2).
pub const REAPER_SPEEDUP: f64 = 2.5;

/// Runs the experiment.
pub fn run(_scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig. 11 — system time spent profiling vs. online profiling interval (1024ms, 16 iters, 6 DPs)",
        &["chip size", "online interval (h)", "brute force", "REAPER (2.5x)"],
    );
    for &gbit in &PAPER_CHIP_SIZES_GBIT {
        let model = OverheadModel::paper_fig11(Ms::new(1024.0), gbit);
        for &hours in &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            let online = Ms::from_hours(hours);
            table.push_row(vec![
                format!("{gbit}Gb"),
                format!("{hours}"),
                fmt_pct(model.time_fraction(online)),
                fmt_pct(model.time_fraction_with_speedup(online, REAPER_SPEEDUP)),
            ]);
        }
    }
    table.note("paper anchor: 64Gb @ 4h = 22.7% brute force, 9.1% REAPER");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(s: &str) -> f64 {
        s.trim_end_matches('%').parse::<f64>().unwrap() / 100.0
    }

    #[test]
    fn matches_paper_anchor_point() {
        let t = run(Scale::Quick);
        // 64Gb rows are the last 7; 4h is the third entry.
        let row = t
            .rows
            .iter()
            .find(|r| r[0] == "64Gb" && r[1] == "4")
            .expect("64Gb @ 4h row");
        assert!((pct(&row[2]) - 0.227).abs() < 0.02, "brute {}", row[2]);
        assert!((pct(&row[3]) - 0.091).abs() < 0.01, "reaper {}", row[3]);
    }

    #[test]
    fn overhead_shrinks_with_online_interval_and_grows_with_size() {
        let t = run(Scale::Quick);
        let frac = |size: &str, hours: &str| {
            pct(&t.rows.iter().find(|r| r[0] == size && r[1] == hours).unwrap()[2])
        };
        assert!(frac("8Gb", "1") > frac("8Gb", "64"));
        assert!(frac("64Gb", "4") > frac("8Gb", "4"));
        // REAPER always beats brute force.
        for r in &t.rows {
            assert!(pct(&r[3]) <= pct(&r[2]));
        }
    }
}
