//! Fig. 12 — DRAM power consumed by online profiling vs. online profiling
//! interval, for brute force and REAPER, across chip sizes.
//!
//! The paper's absolute axis is labeled in nanowatts; our per-command
//! energy model yields milliwatt-scale figures for the same sweep. The
//! *relationships* the paper draws from the figure — power grows with chip
//! size, shrinks with the online interval, REAPER < brute force, and the
//! total is negligible against module power — all hold (see the
//! accompanying test and `EXPERIMENTS.md`).

use reaper_core::overhead::PAPER_CHIP_SIZES_GBIT;
use reaper_dram_model::Ms;
use reaper_power::PowerModel;

use crate::fig11::REAPER_SPEEDUP;
use crate::table::{fmt_f, Scale, Table};

/// Runs the experiment.
pub fn run(_scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig. 12 — added DRAM power from online profiling (W)",
        &["chip size", "online interval (h)", "brute force (W)", "REAPER (W)", "vs module power"],
    );
    for &gbit in &PAPER_CHIP_SIZES_GBIT {
        let model = PowerModel::lpddr4(gbit, 32);
        for &hours in &[1.0, 4.0, 16.0, 64.0] {
            let online = Ms::from_hours(hours);
            let brute = model.profiling_power_w(6, 16, online);
            // REAPER runs ~2.5x fewer effective iterations per round.
            let reaper = brute / REAPER_SPEEDUP;
            table.push_row(vec![
                format!("{gbit}Gb"),
                format!("{hours}"),
                fmt_f(brute),
                fmt_f(reaper),
                fmt_f(brute / model.background_power_w()),
            ]);
        }
    }
    table.note("paper: profiling power is negligible relative to total DRAM power (§7.3.2 observation 4)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_trends_hold() {
        let t = run(Scale::Quick);
        let get = |size: &str, hours: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == size && r[1] == hours)
                .unwrap()[2]
                .parse()
                .unwrap()
        };
        // Grows with chip size.
        assert!(get("64Gb", "4") > get("8Gb", "4"));
        // Shrinks with the online interval.
        assert!(get("8Gb", "1") > get("8Gb", "64"));
        // Small against module power everywhere, negligible at the
        // multi-hour online intervals the longevity model actually yields.
        for r in &t.rows {
            let ratio: f64 = r[4].parse().unwrap();
            assert!(ratio < 0.20, "{}: ratio {ratio}", r[0]);
            if r[1] != "1" {
                assert!(ratio < 0.05, "{} @ {}h: ratio {ratio}", r[0], r[1]);
            }
            // REAPER below brute force.
            let brute: f64 = r[2].parse().unwrap();
            let reaper: f64 = r[3].parse().unwrap();
            assert!(reaper < brute);
        }
    }
}
