//! Fig. 13 — end-to-end system performance improvement (top) and DRAM
//! power reduction (bottom) vs. refresh interval, for online brute-force
//! profiling, REAPER, and ideal (zero-overhead) profiling, across chip
//! sizes and 20 heterogeneous 4-core workload mixes.
//!
//! Pipeline per (chip size, refresh interval):
//! 1. ideal gains: weighted-speedup improvement over the 64 ms baseline,
//!    from the cycle-level memory-system simulator;
//! 2. online profiling frequency: profile longevity `T = N/A` (Eq. 7, full
//!    coverage as the paper assumes) with a SECDED ECC budget;
//! 3. profiling overhead: Eq. 9 round time over `T` (REAPER at its 2.5×
//!    speedup), applied via Eq. 8;
//! 4. power: command-level DRAM power from the same simulations.

use std::collections::BTreeMap;

use reaper_core::ecc::EccStrength;
use reaper_core::longevity::LongevityModel;
use reaper_core::overhead::{module_bytes, OverheadModel};
use reaper_core::TargetConditions;
use reaper_dram_model::{Celsius, Ms, Vendor};
use reaper_memsim::{simulate, weighted_speedup, AccessTrace, SimConfig};
use reaper_power::PowerModel;
use reaper_retention::RetentionConfig;
use reaper_workloads::WorkloadMix;

use crate::fig11::REAPER_SPEEDUP;
use crate::table::{fmt_pct, Scale, Table};

/// Refresh intervals on the x-axis (`None` = refresh disabled).
fn intervals(scale: Scale) -> Vec<Option<f64>> {
    match scale {
        Scale::Quick => vec![Some(128.0), Some(512.0), Some(1024.0), Some(1280.0), None],
        Scale::Full => vec![
            Some(128.0),
            Some(256.0),
            Some(512.0),
            Some(768.0),
            Some(1024.0),
            Some(1280.0),
            Some(1536.0),
            None,
        ],
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig. 13 — end-to-end performance improvement & DRAM power reduction vs. refresh interval",
        &[
            "chip", "interval", "brute mean", "brute max", "REAPER mean", "REAPER max",
            "ideal mean", "ideal max", "power reduction",
        ],
    );

    let sizes: Vec<u32> = scale.pick(vec![8, 64], vec![8, 16, 32, 64]);
    // Simulations must span many tREFI periods at the longest refresh
    // interval (tREFI(512ms) = 100k memory cycles) for refresh sampling;
    // memory-bound mixes run at low IPC, so 100k+ instructions suffice.
    let mixes = WorkloadMix::random_mixes(
        scale.pick(4, 20),
        4,
        scale.pick(1024, 2048),
        0xF13,
    );
    let instructions = scale.pick(100_000, 250_000) as u64;
    let retention = RetentionConfig::for_vendor(Vendor::B);
    let ecc = EccStrength::secded();

    for &gbit in &sizes {
        // Alone-IPC denominators at the 64 ms baseline config: one
        // simulation per unique trace name, fanned out across the pool.
        let base_cfg = SimConfig::lpddr4_3200(gbit, Some(Ms::new(64.0)));
        let mut uniq: Vec<(&'static str, &AccessTrace)> = Vec::new();
        for mix in &mixes {
            for (name, trace) in mix.names().iter().zip(mix.traces()) {
                if !uniq.iter().any(|&(n, _)| n == *name) {
                    uniq.push((name, trace));
                }
            }
        }
        let alone_ipcs = reaper_exec::par_map(&uniq, |&(_, trace)| {
            simulate(&base_cfg, std::slice::from_ref(trace), instructions).ipc[0]
        });
        let alone: BTreeMap<&'static str, f64> =
            uniq.iter().map(|&(n, _)| n).zip(alone_ipcs).collect();
        let ws_of = |cfg: &SimConfig, mix: &WorkloadMix| {
            let r = simulate(cfg, mix.traces(), instructions);
            let alones: Vec<f64> = mix.names().iter().map(|n| alone[n]).collect();
            (weighted_speedup(&r.ipc, &alones), r)
        };

        // Baseline WS and power per mix, one simulation per mix in parallel.
        let power_model = PowerModel::lpddr4(gbit, 32);
        let baseline: Vec<(f64, f64)> = reaper_exec::par_map(&mixes, |m| {
            let (ws, r) = ws_of(&base_cfg, m);
            let p = power_model.breakdown(&r.stats, r.elapsed_secs()).total_w();
            (ws, p)
        });

        for &interval in &intervals(scale) {
            let cfg = SimConfig::lpddr4_3200(gbit, interval.map(Ms::new));
            // Profiling overhead fractions for this operating point.
            let (frac_brute, frac_reaper) = match interval {
                None => (f64::NAN, f64::NAN), // no failing set: no profiling shown
                Some(t) => {
                    let target = TargetConditions::new(Ms::new(t), Celsius::new(45.0));
                    let longevity = LongevityModel::for_system(
                        ecc,
                        module_bytes(gbit),
                        1e-15,
                        &retention,
                        target,
                        1.0, // paper: full coverage assumed for longevity
                    )
                    .longevity()
                    .expect("invariant: full coverage keeps the longevity model viable");
                    let round = OverheadModel::new(Ms::new(t), 6, 16, module_bytes(gbit));
                    let brute = round.time_fraction(longevity);
                    (brute, (brute / REAPER_SPEEDUP).min(1.0))
                }
            };

            let pairs: Vec<(&WorkloadMix, (f64, f64))> =
                mixes.iter().zip(baseline.iter().copied()).collect();
            let per_mix = reaper_exec::par_map(&pairs, |&(mix, (ws_base, p_base))| {
                let (ws, r) = ws_of(&cfg, mix);
                let p = power_model.breakdown(&r.stats, r.elapsed_secs()).total_w();
                (ws / ws_base - 1.0, 1.0 - p / p_base)
            });
            let ideal_gains: Vec<f64> = per_mix.iter().map(|&(g, _)| g).collect();
            let power_reductions: Vec<f64> = per_mix.iter().map(|&(_, p)| p).collect();
            let apply = |g: f64, frac: f64| {
                if frac.is_nan() {
                    g
                } else {
                    (1.0 + g) * (1.0 - frac) - 1.0
                }
            };
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let max = |v: &[f64]| v.iter().copied().fold(f64::MIN, f64::max);

            let brute: Vec<f64> = ideal_gains.iter().map(|&g| apply(g, frac_brute)).collect();
            let reaper: Vec<f64> = ideal_gains.iter().map(|&g| apply(g, frac_reaper)).collect();

            table.push_row(vec![
                format!("{gbit}Gb"),
                interval.map_or("no ref".to_string(), |t| Ms::new(t).to_string()),
                fmt_pct(mean(&brute)),
                fmt_pct(max(&brute)),
                fmt_pct(mean(&reaper)),
                fmt_pct(max(&reaper)),
                fmt_pct(mean(&ideal_gains)),
                fmt_pct(max(&ideal_gains)),
                fmt_pct(mean(&power_reductions)),
            ]);

            // §7.3.2 composition estimate: ArchShield costs ~1% system
            // performance (its paper's Section 5.1); REAPER + ArchShield =
            // REAPER minus that cost.
            if gbit == 64 && interval == Some(1024.0) {
                table.note(format!(
                    "§7.3.2 composition (64Gb @ 1024ms): REAPER+ArchShield ≈ {} mean / {} max \
                     (paper: 12.5% mean, 23.7% max); brute+ArchShield ≈ {}",
                    fmt_pct(mean(&reaper) - 0.01),
                    fmt_pct(max(&reaper) - 0.01),
                    fmt_pct(mean(&brute) - 0.01),
                ));
            }
        }
    }
    table.note("paper anchors (64Gb): 512ms REAPER ≈ +16.3% mean perf, no-ref ≈ +18.8%; brute force degrades (-5.4%) at 1280ms while REAPER stays positive");
    table.note("profiling adds negligible DRAM power (Fig. 12), so power reduction is shown once per operating point");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(s: &str) -> f64 {
        s.trim_end_matches('%').parse::<f64>().unwrap() / 100.0
    }

    #[test]
    fn fig13_shape_holds() {
        let t = run(Scale::Quick);
        let row = |chip: &str, interval: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == chip && r[1] == interval)
                .unwrap_or_else(|| panic!("row {chip}/{interval}"))
        };

        // Ideal gains grow with refresh interval for 64Gb chips.
        let ideal_512 = pct(&row("64Gb", "512.0ms")[6]);
        let ideal_128 = pct(&row("64Gb", "128.0ms")[6]);
        let ideal_noref = pct(&row("64Gb", "no ref")[6]);
        assert!(ideal_512 > ideal_128, "{ideal_128} -> {ideal_512}");
        assert!(ideal_noref >= ideal_512, "{ideal_512} -> {ideal_noref}");
        assert!(ideal_noref > 0.05, "no-ref gain {ideal_noref}");

        // 64Gb gains exceed 8Gb gains (bigger tRFC).
        assert!(pct(&row("64Gb", "no ref")[6]) > pct(&row("8Gb", "no ref")[6]));

        // At 1280ms, brute force loses most of the benefit while REAPER
        // retains more (the paper's headline crossover).
        let brute_1280 = pct(&row("64Gb", "1.280s")[2]);
        let reaper_1280 = pct(&row("64Gb", "1.280s")[4]);
        let ideal_1280 = pct(&row("64Gb", "1.280s")[6]);
        assert!(reaper_1280 > brute_1280, "{brute_1280} vs {reaper_1280}");
        assert!(ideal_1280 > reaper_1280);

        // Power reduction grows with interval and is large for 64Gb.
        let p_512 = pct(&row("64Gb", "512.0ms")[8]);
        let p_noref = pct(&row("64Gb", "no ref")[8]);
        assert!(p_noref >= p_512);
        assert!(p_noref > 0.15, "no-ref power reduction {p_noref}");
    }
}
