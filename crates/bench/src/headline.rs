//! §6.1.2 headline — averaged across the chip population, profiling 250 ms
//! above a 1024 ms target attains >99 % coverage at <50 % false positive
//! rate while running ≈2.5× faster than brute force; more aggressive reach
//! conditions (e.g. +10 °C) push past 3.5× at much higher false positive
//! rates.
//!
//! Methodology matches the paper's: coverage/FPR from a fixed
//! 16-iteration profile (Fig. 9), runtime from iterations-to-90 %-coverage
//! (Fig. 10), both against the target's empirical ground truth.

use reaper_core::tradeoff::{ExploreOptions, GroundTruth, TradeoffAnalysis};
use reaper_core::{ReachConditions, TargetConditions};
use reaper_dram_model::{Celsius, Ms};

use crate::table::{fmt_pct, Scale, Table};
use crate::util::study_population;

/// Runs the experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "§6.1.2 headline — reach profiling vs. brute force (population average)",
        &["reach", "coverage", "false positive rate", "speedup"],
    );

    let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
    // Row 0: brute force; row 1: the paper's +250ms headline; row 2: an
    // aggressive thermal reach.
    let reaches = [
        ReachConditions::brute_force(),
        ReachConditions::paper_headline(),
        ReachConditions::new(Ms::ZERO, 10.0),
    ];
    let opts = ExploreOptions {
        profile_iterations: scale.pick(8, 16),
        ground_truth: GroundTruth::Empirical {
            iterations: scale.pick(16, 32),
        },
        coverage_goal: 0.9,
        max_runtime_iterations: scale.pick(48, 96),
        seed: 0x4EAD,
    };

    let pop = study_population(scale);
    let chips = scale.pick(4, 24);
    // Each chip's exploration is independent; fan out across the
    // population and fold the per-chip results back in input order so the
    // float accumulation matches the sequential loop exactly.
    let selected: Vec<_> = pop.chips().iter().take(chips).collect();
    let analyses = reaper_exec::par_map(&selected, |chip| {
        // Explore over the interval deltas and the temperature delta in one
        // grid; pick out the three configured reach points.
        TradeoffAnalysis::explore(
            chip,
            target,
            &[Ms::ZERO, Ms::new(250.0)],
            &[0.0, 10.0],
            opts,
        )
    });
    let mut sums = vec![(0.0f64, 0.0f64, 0.0f64); reaches.len()];
    let mut counted = 0usize;
    for analysis in &analyses {
        for (i, reach) in reaches.iter().enumerate() {
            let p = analysis
                .points
                .iter()
                .find(|p| p.reach == *reach)
                .expect("invariant: every configured reach point is measured by the sweep above");
            sums[i].0 += p.coverage;
            sums[i].1 += p.false_positive_rate;
            sums[i].2 += p.speedup();
        }
        counted += 1;
    }

    let labels = ["brute force", "+250ms", "+10°C"];
    for (i, label) in labels.iter().enumerate() {
        let n = counted as f64;
        table.push_row(vec![
            label.to_string(),
            fmt_pct(sums[i].0 / n),
            fmt_pct(sums[i].1 / n),
            format!("{:.2}x", sums[i].2 / n),
        ]);
    }
    table.note("paper: +250ms ⇒ >99% coverage, <50% FPR, 2.5x speedup; aggressive reach ⇒ >3.5x at >75% FPR");
    table.note(format!("{counted} chips averaged"));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(s: &str) -> f64 {
        s.trim_end_matches('%').parse::<f64>().unwrap() / 100.0
    }

    #[test]
    fn headline_numbers_reproduce() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        // +250ms row: high coverage, bounded FPR, ~2.5x speedup.
        let cov = pct(&t.rows[1][1]);
        let fpr = pct(&t.rows[1][2]);
        let speedup: f64 = t.rows[1][3].trim_end_matches('x').parse().unwrap();
        assert!(cov > 0.98, "coverage {cov}");
        assert!(fpr < 0.55, "FPR {fpr}");
        // Population-averaged speedup varies with per-chip jitter (the
        // representative-chip Fig. 10 anchor lands at 2.51x); accept the
        // 2-6x band and require the ordering vs brute force.
        assert!((1.8..6.5).contains(&speedup), "speedup {speedup}");
        // Aggressive thermal reach: faster, at much higher FPR.
        let fpr_hot = pct(&t.rows[2][2]);
        let speedup_hot: f64 = t.rows[2][3].trim_end_matches('x').parse().unwrap();
        assert!(speedup_hot > speedup, "{speedup} -> {speedup_hot}");
        assert!(fpr_hot > fpr + 0.1, "{fpr} -> {fpr_hot}");
    }
}
