//! Experiment harnesses that regenerate **every table and figure** of the
//! REAPER paper's evaluation (see `DESIGN.md` §4 for the experiment index
//! and `EXPERIMENTS.md` for paper-vs-measured results).
//!
//! Each `figNN`/`tableN` module exposes a `run(Scale) -> Table` function;
//! the `experiments` binary (hosted by `reaper-conformance`, which layers
//! golden-table regression and paper-shape acceptance checks on top of
//! this registry) prints any or all of them:
//!
//! ```text
//! cargo run --release -p reaper-conformance --bin experiments -- all
//! cargo run --release -p reaper-conformance --bin experiments -- fig09 --full
//! ```

// Deny-wall escapes (DESIGN.md §"Static analysis & determinism
// invariants"): `reaper-lint` enforces the finer-grained forms of these
// lints — P1 requires `invariant: `-prefixed expect messages and audits
// indexing in the hot-path crates, C1 bans bare casts there — with
// per-site `// lint: allow` markers. Clippy's blanket versions are
// allowed at the crate root so `-D warnings` stays green without
// annotating every audited site twice.
#![allow(clippy::expect_used, clippy::indexing_slicing, clippy::cast_possible_truncation)]

pub mod abl_axes;
pub mod abl_patterns;
pub mod abl_refresh_mode;
pub mod abl_scrubbing;
pub mod eq1;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod headline;
pub mod longevity_example;
pub mod table;
pub mod table1;
pub mod util;

pub use table::{Scale, Table};

/// An experiment entry: its registry name and runner.
pub type Experiment = (&'static str, fn(Scale) -> Table);

/// All experiment names, in paper order, with the function that runs each.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("eq1", eq1::run as fn(Scale) -> Table),
        ("fig02", fig02::run),
        ("fig03", fig03::run),
        ("fig04", fig04::run),
        ("fig05", fig05::run),
        ("fig06", fig06::run),
        ("fig07", fig07::run),
        ("fig08", fig08::run),
        ("fig09", fig09::run),
        ("fig10", fig10::run),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
        ("fig13", fig13::run),
        ("table1", table1::run),
        ("headline", headline::run),
        ("longevity", longevity_example::run),
        ("abl_patterns", abl_patterns::run),
        ("abl_axes", abl_axes::run),
        ("abl_refresh_mode", abl_refresh_mode::run),
        ("abl_scrubbing", abl_scrubbing::run),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_registry_is_complete() {
        let names: Vec<&str> = all_experiments().iter().map(|(n, _)| *n).collect();
        // 13 figures (2-13 + eq1) + table1 + headline + longevity +
        // 4 ablations/demonstrations.
        assert_eq!(names.len(), 20);
        assert!(names.contains(&"abl_patterns"));
        assert!(names.contains(&"fig09"));
        assert!(names.contains(&"table1"));
        // unique
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }
}
