//! §6.2.3 worked example — profile longevity for 2 GB DRAM with SECDED at a
//! 1024 ms / 45 °C target and 99 % coverage: `T = (N − C)/A ≈ 2.3 days`.

use reaper_core::ecc::EccStrength;
use reaper_core::longevity::LongevityModel;
use reaper_core::TargetConditions;
use reaper_dram_model::{Celsius, Ms, Vendor};
use reaper_retention::RetentionConfig;

use crate::table::{fmt_f, Scale, Table};

/// Runs the experiment.
pub fn run(_scale: Scale) -> Table {
    let mut table = Table::new(
        "§6.2.3 — profile longevity worked example (2GB, SECDED, 99% coverage)",
        &["target interval", "N (tolerable)", "C (missed)", "A (cells/h)", "longevity"],
    );
    let retention = RetentionConfig::for_vendor(Vendor::B);
    for &(interval, coverage) in &[
        (512.0, 0.99),
        (1024.0, 0.99),
        (1280.0, 0.99),
        (1024.0, 1.0),
    ] {
        let target = TargetConditions::new(Ms::new(interval), Celsius::new(45.0));
        let model = LongevityModel::for_system(
            EccStrength::secded(),
            2 << 30,
            1e-15,
            &retention,
            target,
            coverage,
        );
        let longevity = model
            .longevity()
            .map_or("not viable".to_string(), |t| format!("{:.2} days", t.as_days()));
        table.push_row(vec![
            format!("{} (cov {:.0}%)", Ms::new(interval), coverage * 100.0),
            fmt_f(model.tolerable_failures),
            fmt_f(model.missed_failures),
            fmt_f(model.accumulation_per_hour),
            longevity,
        ]);
    }
    table.note("paper: N=65, C≈25, A=0.73/h ⇒ T ≈ 2.3 days at 1024ms/45°C with 99% coverage");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worked_example_is_days_scale() {
        let t = run(Scale::Quick);
        let row_1024 = &t.rows[1];
        let days: f64 = row_1024[4].split(' ').next().unwrap().parse().unwrap();
        // Paper: 2.3 days; our SECDED budget (N≈91 vs 65) gives ~3.7 days —
        // same scale, same conclusion (reprofiling every few days).
        assert!((1.0..8.0).contains(&days), "T = {days} days");
        // Longevity shrinks sharply at 1280ms vs 512ms.
        let d512: f64 = t.rows[0][4].split(' ').next().unwrap().parse().unwrap();
        let d1280: f64 = t.rows[2][4].split(' ').next().unwrap().parse().unwrap();
        assert!(d512 > 20.0 * d1280, "{d512} vs {d1280}");
    }
}
