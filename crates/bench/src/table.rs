//! Tabular experiment output and run-scale selection.

/// How much work an experiment run should do.
///
/// `Quick` keeps each experiment in the seconds range (used by tests and
/// Criterion benches); `Full` approaches the paper's methodology (368-chip
/// populations, 800-iteration campaigns, 20 workload mixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Reduced populations and iteration counts; same code paths.
    #[default]
    Quick,
    /// Paper-scale parameters.
    Full,
}

impl Scale {
    /// Picks `q` under `Quick` and `f` under `Full`.
    pub fn pick<T>(self, q: T, f: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}

/// A printable experiment result: a title, column headers, and string rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Experiment title (figure/table reference plus description).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each must match `columns` in length.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (assumptions, paper comparison points).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with the given title and columns.
    pub fn new<S: Into<String>>(title: S, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row length does not match the column count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Appends a note line printed under the table.
    pub fn note<S: Into<String>>(&mut self, s: S) {
        self.notes.push(s.into());
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a float compactly for table cells.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e4 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

/// Formats a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
        assert_eq!(Scale::default(), Scale::Quick);
    }

    #[test]
    fn table_builds_and_renders() {
        let mut t = Table::new("Test", &["a", "bb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.contains("## Test"));
        assert!(s.contains("bb"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("T", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1.5), "1.500");
        assert_eq!(fmt_f(1.43e-7), "1.430e-7");
        assert_eq!(fmt_pct(0.5), "50.00%");
    }
}
