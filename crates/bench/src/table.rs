//! Tabular experiment output and run-scale selection.

/// How much work an experiment run should do.
///
/// `Quick` keeps each experiment in the seconds range (used by tests and
/// Criterion benches); `Full` approaches the paper's methodology (368-chip
/// populations, 800-iteration campaigns, 20 workload mixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Reduced populations and iteration counts; same code paths.
    #[default]
    Quick,
    /// Paper-scale parameters.
    Full,
}

impl Scale {
    /// Picks `q` under `Quick` and `f` under `Full`.
    pub fn pick<T>(self, q: T, f: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}

/// A printable experiment result: a title, column headers, and string rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Experiment title (figure/table reference plus description).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each must match `columns` in length.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (assumptions, paper comparison points).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with the given title and columns.
    pub fn new<S: Into<String>>(title: S, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row length does not match the column count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Appends a note line printed under the table.
    pub fn note<S: Into<String>>(&mut self, s: S) {
        self.notes.push(s.into());
    }

    /// Serializes the table to the golden TSV format: `# title:` /
    /// `# note:` comment lines plus tab-separated header and data rows.
    /// The format round-trips through [`Table::from_tsv`] and diffs
    /// cleanly under version control.
    ///
    /// # Panics
    /// Panics if any cell, column, title, or note contains a tab or
    /// newline (no cell produced by the experiment harnesses does).
    pub fn to_tsv(&self) -> String {
        let clean = |s: &str, what: &str| {
            assert!(
                !s.contains('\t') && !s.contains('\n'),
                "{what} may not contain tabs or newlines: {s:?}"
            );
        };
        clean(&self.title, "title");
        let mut out = String::new();
        out.push_str(&format!("# title: {}\n", self.title));
        for c in &self.columns {
            clean(c, "column");
        }
        out.push_str(&self.columns.join("\t"));
        out.push('\n');
        for row in &self.rows {
            for cell in row {
                clean(cell, "cell");
            }
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        for n in &self.notes {
            clean(n, "note");
            out.push_str(&format!("# note: {n}\n"));
        }
        out
    }

    /// Parses a table from the golden TSV format written by
    /// [`Table::to_tsv`]. Unknown `#` comment lines are ignored, so
    /// goldens can carry provenance headers.
    ///
    /// # Errors
    /// Returns a description of the malformed line if the text has no
    /// header row or a data row's width disagrees with the header.
    pub fn from_tsv(text: &str) -> core::result::Result<Self, String> {
        let mut table = Table::default();
        let mut saw_header = false;
        for (lineno, line) in text.lines().enumerate() {
            if let Some(title) = line.strip_prefix("# title: ") {
                table.title = title.to_string();
            } else if let Some(note) = line.strip_prefix("# note: ") {
                table.notes.push(note.to_string());
            } else if line.starts_with('#') || line.trim().is_empty() {
                continue;
            } else if !saw_header {
                table.columns = line.split('\t').map(str::to_string).collect();
                saw_header = true;
            } else {
                let row: Vec<String> = line.split('\t').map(str::to_string).collect();
                if row.len() != table.columns.len() {
                    return Err(format!(
                        "line {}: row has {} cells, header has {} columns",
                        lineno + 1,
                        row.len(),
                        table.columns.len()
                    ));
                }
                table.rows.push(row);
            }
        }
        if !saw_header {
            return Err("no header row found".to_string());
        }
        Ok(table)
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a float compactly for table cells.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e4 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

/// Formats a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
        assert_eq!(Scale::default(), Scale::Quick);
    }

    #[test]
    fn table_builds_and_renders() {
        let mut t = Table::new("Test", &["a", "bb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.contains("## Test"));
        assert!(s.contains("bb"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("T", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn tsv_roundtrip_preserves_everything() {
        let mut t = Table::new("Fig. X — demo", &["vendor", "rate"]);
        t.push_row(vec!["A".into(), "1.430e-7".into()]);
        t.push_row(vec!["B".into(), "2.51x".into()]);
        t.note("paper: something");
        t.note("second note");
        let text = t.to_tsv();
        let back = Table::from_tsv(&text).unwrap();
        assert_eq!(t, back);
        // Stable under a second roundtrip.
        assert_eq!(back.to_tsv(), text);
    }

    #[test]
    fn tsv_ignores_unknown_comments_and_blank_lines() {
        let text = "# provenance: seed 9\n# title: T\n\na\tb\n1\t2\n# note: n\n";
        let t = Table::from_tsv(text).unwrap();
        assert_eq!(t.title, "T");
        assert_eq!(t.columns, vec!["a", "b"]);
        assert_eq!(t.rows, vec![vec!["1".to_string(), "2".to_string()]]);
        assert_eq!(t.notes, vec!["n"]);
    }

    #[test]
    fn tsv_rejects_malformed_input() {
        assert!(Table::from_tsv("# title: only\n").is_err());
        assert!(Table::from_tsv("a\tb\n1\t2\t3\n").is_err());
    }

    #[test]
    #[should_panic(expected = "tabs or newlines")]
    fn tsv_rejects_tab_in_cell() {
        let mut t = Table::new("T", &["a"]);
        t.push_row(vec!["has\ttab".into()]);
        t.to_tsv();
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1.5), "1.500");
        assert_eq!(fmt_f(1.43e-7), "1.430e-7");
        assert_eq!(fmt_pct(0.5), "50.00%");
    }
}
