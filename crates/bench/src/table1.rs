//! Table 1 — tolerable RBER and tolerable number of bit errors for a
//! target UBER of 10⁻¹⁵ across ECC strengths and DRAM sizes (Eqs. 2–6).

use reaper_core::ecc::{uber_targets, EccStrength};

use crate::table::{fmt_f, Scale, Table};

/// Runs the experiment.
pub fn run(_scale: Scale) -> Table {
    let mut table = Table::new(
        "Table 1 — tolerable RBER and bit errors for UBER = 1e-15",
        &["quantity", "No ECC", "SECDED", "ECC-2"],
    );
    let strengths = EccStrength::table1_strengths();
    let uber = uber_targets::CONSUMER;

    let mut row = vec!["Tolerable RBER".to_string()];
    row.extend(strengths.iter().map(|e| fmt_f(e.tolerable_rber(uber))));
    table.push_row(row);

    for (label, bytes) in [
        ("512MB", 512u64 << 20),
        ("1GB", 1 << 30),
        ("2GB", 2 << 30),
        ("4GB", 4u64 << 30),
        ("8GB", 8u64 << 30),
    ] {
        let mut row = vec![format!("Tolerable bit errors, {label}")];
        row.extend(
            strengths
                .iter()
                .map(|e| fmt_f(e.tolerable_bit_errors(bytes, uber))),
        );
        table.push_row(row);
    }
    table.note("paper values: RBER 1.0e-15 / 3.8e-9 / 6.9e-7 (the SECDED/ECC-2 columns there imply a 136-bit ECC word; ours use the (72,64)/(80,64) words of Eq. 4, same order of magnitude)");
    table.note(format!(
        "enterprise target (1e-17): SECDED tolerable RBER = {}",
        fmt_f(EccStrength::secded().tolerable_rber(uber_targets::ENTERPRISE))
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_orders_of_magnitude() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 6);
        let rber: Vec<f64> = t.rows[0][1..].iter().map(|s| s.parse().unwrap()).collect();
        assert!((rber[0] / 1e-15 - 1.0).abs() < 0.01);
        assert!((1e-9..1e-8).contains(&rber[1]), "SECDED {}", rber[1]);
        assert!((1e-7..1e-5).contains(&rber[2]), "ECC-2 {}", rber[2]);
        // 2GB SECDED: paper N = 65.3; our (72,64) word gives ~91.
        let n_2gb: f64 = t.rows[3][2].parse().unwrap();
        assert!((40.0..150.0).contains(&n_2gb), "N = {n_2gb}");
        // Errors scale linearly with capacity.
        let n_1gb: f64 = t.rows[2][2].parse().unwrap();
        assert!((n_2gb / n_1gb - 2.0).abs() < 0.01);
    }
}
