//! Shared helpers for the experiment harnesses.

use reaper_analysis::special::phi;
use reaper_core::{FailureProfile, PatternSet, Profiler};
use reaper_dram_model::{Celsius, DataPattern, Ms, Vendor};
use reaper_exec::num;
use reaper_retention::{ChipPopulation, RetentionConfig, SimulatedChip};
use reaper_softmc::TestHarness;

use crate::table::Scale;

/// DRAM-temperature offset (the chamber holds DRAM 15 °C above ambient).
pub fn dram_temp(ambient: Celsius) -> Celsius {
    ambient + reaper_softmc::thermal::DRAM_OFFSET
}

/// The "representative chip from Vendor B" the paper's Figs. 3, 6–10 use.
pub fn representative_chip(scale: Scale) -> SimulatedChip {
    let div = scale.pick(16, 2);
    SimulatedChip::new(
        RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, div),
        B_CHIP_SEED,
    )
}

/// Seed for the representative chip (fixed so all figures see the same
/// device, as in the paper).
const B_CHIP_SEED: u64 = 0xBC417;

/// A chip population standing in for the 368-chip study.
pub fn study_population(scale: Scale) -> ChipPopulation {
    match scale {
        Scale::Quick => ChipPopulation::sample_study(9, 368),
        Scale::Full => ChipPopulation::paper_study(8, 368),
    }
}

/// Union of `iterations` standard-set profiling iterations driven directly
/// on the chip (no harness time accounting) at the given conditions.
pub fn profile_union(
    chip: &mut SimulatedChip,
    interval: Ms,
    ambient: Celsius,
    iterations: u64,
) -> FailureProfile {
    // A fixed-condition round loop is exactly what the bit-plane batch
    // kernel exists for: every (pattern, interval, temp) key repeats
    // `iterations` times, so the whole loop is submitted as one schedule
    // and each recurring condition runs up to 64 rounds per kernel pass.
    // Bit-identical to the former per-trial loop over the same patterns.
    Profiler::direct_union(
        chip,
        interval,
        dram_temp(ambient),
        num::u64_to_u32(iterations),
        &PatternSet::Standard,
    )
}

/// Builds a harness around a chip clone at the given ambient.
pub fn harness_for(chip: &SimulatedChip, ambient: Celsius, seed: u64) -> TestHarness {
    TestHarness::new(chip.clone(), ambient, seed)
}

/// Empirically fitted per-cell failure-CDF parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellFit {
    /// Interval (seconds) at which the cell fails 50 % of trials.
    pub mu: f64,
    /// CDF spread (seconds), estimated from the 16th–84th percentile span.
    pub sigma: f64,
    /// Normalized skew of the empirical CDF:
    /// `((t84 − t50) − (t50 − t16)) / σ`. A normal CDF (the paper's
    /// Fig. 6a claim) has asymmetry ≈ 0.
    pub asymmetry: f64,
}

/// Empirically estimates per-cell failure-CDF parameters (paper §5.5,
/// Figs. 6–8 methodology): run `trials` trials per interval grid point with
/// the random pattern and its inverse, count per-cell failures, and fit
/// each cell's empirical CDF by interpolating its 16/50/84 % crossings.
///
/// Only cells whose CDF is fully resolved inside the grid are returned, in
/// ascending cell-index order.
pub fn estimate_cell_fits(
    chip: &SimulatedChip,
    ambient: Celsius,
    intervals_s: &[f64],
    trials: u64,
) -> Vec<CellFit> {
    estimate_cell_fit_map(chip, ambient, intervals_s, trials)
        .into_values()
        .collect()
}

/// Like [`estimate_cell_fits`] but keyed by cell index, so callers can
/// track the *same* cells across conditions (Fig. 7's methodology).
///
/// The map is a `BTreeMap` on purpose: every float reduction downstream
/// (Fig. 6's mean asymmetry, the lognormal σ fit) folds over its iteration
/// order, and a hash map's per-instance seed would make those sums vary in
/// the last ulps from run to run.
pub fn estimate_cell_fit_map(
    chip: &SimulatedChip,
    ambient: Celsius,
    intervals_s: &[f64],
    trials: u64,
) -> std::collections::BTreeMap<u64, CellFit> {
    use std::collections::BTreeMap;
    let temp = dram_temp(ambient);
    let mut chip = chip.clone();
    // This loop stays on the default Auto engine deliberately: every trial
    // uses a fresh random pattern, so no condition ever recurs and neither
    // plan tier would be promoted — Auto makes that a few linear probes of
    // per-chip caches, i.e. free, while forcing `Compiled` here would pay
    // a full compile per trial for zero reuse.
    // fail_counts[cell] = count per interval index.
    let mut fail_counts: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    for (ii, &t) in intervals_s.iter().enumerate() {
        for trial in 0..trials {
            let p = if trial % 2 == 0 {
                DataPattern::random(trial)
            } else {
                DataPattern::random(trial - 1).inverse()
            };
            let outcome = chip.retention_trial(p, Ms::from_secs(t), temp);
            for &cell in outcome.failures() {
                fail_counts
                    .entry(cell)
                    .or_insert_with(|| vec![0; intervals_s.len()])[ii] += 1;
            }
        }
    }

    let crossing = |fracs: &[f64], level: f64| -> Option<f64> {
        for i in 1..fracs.len() {
            if fracs[i - 1] < level && fracs[i] >= level {
                let t0 = intervals_s[i - 1];
                let t1 = intervals_s[i];
                let f0 = fracs[i - 1];
                let f1 = fracs[i];
                let w = if f1 > f0 { (level - f0) / (f1 - f0) } else { 0.0 };
                return Some(t0 + w * (t1 - t0));
            }
        }
        None
    };

    let mut fits = BTreeMap::new();
    for (&cell, counts) in &fail_counts {
        // Trials per point: each interval saw `trials` trials, but polarity
        // gating means a cell is only exposed on ~half of them.
        let max_count = *counts
            .iter()
            .max()
            .expect("invariant: counts has one slot per grid interval, and cells only appear when the grid is nonempty")
            as f64;
        if max_count < trials as f64 * 0.35 {
            continue; // CDF never saturates inside the grid
        }
        let fracs: Vec<f64> = counts.iter().map(|&c| c as f64 / max_count).collect();
        let (Some(t16), Some(t50), Some(t84)) = (
            crossing(&fracs, 0.16),
            crossing(&fracs, 0.50),
            crossing(&fracs, 0.84),
        ) else {
            continue;
        };
        let sigma = ((t84 - t16) / 2.0).max(1e-4);
        let asymmetry = ((t84 - t50) - (t50 - t16)) / sigma;
        fits.insert(cell, CellFit { mu: t50, sigma, asymmetry });
    }
    fits
}

/// Theoretical normal CDF value, exposed for shape checks in experiments.
pub fn normal_cdf(z: f64) -> f64 {
    phi(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_chip_is_vendor_b() {
        let chip = representative_chip(Scale::Quick);
        assert_eq!(chip.config().vendor, Vendor::B);
    }

    #[test]
    fn profile_union_grows_with_iterations() {
        let mut chip = representative_chip(Scale::Quick);
        let one = profile_union(&mut chip, Ms::new(2048.0), Celsius::new(45.0), 1).len();
        // Every trial is served by the bit-plane batch kernel.
        assert_eq!(chip.plan_stats().batch_rounds, 12);
        let mut chip = representative_chip(Scale::Quick);
        let four = profile_union(&mut chip, Ms::new(2048.0), Celsius::new(45.0), 4).len();
        assert!(four >= one);
        assert!(one > 0);
    }

    #[test]
    fn cell_fit_order_is_deterministic_across_calls() {
        // Regression: the fit map used to be HashMap-backed, so
        // `into_values()` order — and every float reduction folded over it
        // downstream — varied with the map's per-instance hash seed.
        let chip = representative_chip(Scale::Quick);
        let intervals: Vec<f64> = (1..=12).map(|i| 0.1 + i as f64 * 0.25).collect();
        let a = estimate_cell_fits(&chip, Celsius::new(45.0), &intervals, 4);
        let b = estimate_cell_fits(&chip, Celsius::new(45.0), &intervals, 4);
        assert!(!a.is_empty(), "no cells fitted");
        assert_eq!(a, b, "fit order must not vary between identical calls");
        let map = estimate_cell_fit_map(&chip, Celsius::new(45.0), &intervals, 4);
        let keys: Vec<u64> = map.keys().copied().collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "fit map iterates in cell-index order");
    }

    #[test]
    fn cell_fits_recover_sane_parameters() {
        let chip = representative_chip(Scale::Quick);
        let intervals: Vec<f64> = (1..=30).map(|i| 0.1 + i as f64 * 0.13).collect();
        let fits = estimate_cell_fits(&chip, Celsius::new(45.0), &intervals, 8);
        assert!(!fits.is_empty(), "no cells fitted");
        for f in &fits {
            assert!(f.mu > 0.0 && f.mu < 4.5, "mu {}", f.mu);
            assert!(f.sigma > 0.0 && f.sigma < 1.0, "sigma {}", f.sigma);
        }
    }
}
