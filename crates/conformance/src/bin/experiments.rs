//! Experiment runner: regenerates any or all of the paper's tables and
//! figures, and machine-checks them against the conformance layers.
//!
//! ```text
//! experiments [--full] [--threads N] [--json[=PATH]] [name...]
//! experiments all                # every experiment at quick scale
//! experiments --full fig09 fig13
//! experiments --threads 4 all    # run experiments concurrently on 4 workers
//! experiments --json all         # also emit BENCH_experiments.json
//! experiments --check all        # diff tables against goldens/*.tsv
//! experiments --bless fig06      # re-record a golden after an intentional change
//! experiments --shape all        # paper-shape acceptance suite (Tier B)
//! experiments --list
//! ```
//!
//! Experiments run concurrently on the `reaper-exec` pool (thread count
//! from `--threads`, else `REAPER_THREADS`, else available parallelism),
//! but their tables are printed in selection order, and each table's
//! contents are bit-identical at any thread count — which is what makes
//! the golden-table regression of `--check` well-defined.

// The terminal is this binary's output surface: tables go to stdout (via
// a locked writer), progress and usage errors to stderr.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

use reaper_bench::{all_experiments, Scale, Table};
use reaper_conformance::{all_shape_checks, bless_table, check_table, CheckOutcome};

/// Prints to stdout, ignoring a closed pipe (`experiments --list | head`
/// must not panic on EPIPE).
macro_rules! emit {
    ($($arg:tt)*) => {
        let _ = writeln!(std::io::stdout(), $($arg)*);
    };
}

/// One finished experiment, ready to print and report.
struct Completed {
    name: &'static str,
    table: Table,
    wall_ms: f64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable perf trajectory: per-experiment wall-clock and row
/// counts, plus the run configuration.
fn render_json(results: &[Completed], scale: Scale, threads: usize, total_ms: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"total_wall_ms\": {total_ms:.3},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"rows\": {}, \"title\": \"{}\"}}{sep}\n",
            json_escape(r.name),
            r.wall_ms,
            r.table.rows.len(),
            json_escape(&r.table.title),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// What to do with the generated tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Mode {
    /// Print the tables (the historical behavior).
    #[default]
    Print,
    /// Diff each table against its recorded golden (Tier A).
    Check,
    /// Re-record each table as the new golden.
    Bless,
}

/// Runs the Tier B paper-shape acceptance checks selected by `names`.
fn run_shape(names: &[String], scale: Scale) -> ExitCode {
    let registry = all_shape_checks();
    let selected: Vec<_> = if names.iter().any(|n| n == "all") {
        registry
    } else {
        let mut picked = Vec::new();
        for name in names {
            match registry.iter().find(|(n, _)| n == name) {
                Some(&entry) => picked.push(entry),
                None => {
                    eprintln!("unknown shape check `{name}`; available:");
                    for (n, _) in &registry {
                        eprintln!("  {n}");
                    }
                    return ExitCode::FAILURE;
                }
            }
        }
        picked
    };
    let start = Instant::now();
    let reports = reaper_exec::par_map(&selected, |&(_, check)| check(scale));
    let mut failed = 0usize;
    for r in &reports {
        emit!("{r}");
        if !r.passed {
            failed += 1;
        }
    }
    emit!(
        "  [{} shape check(s) in {:.1}ms, {failed} failed]",
        reports.len(),
        start.elapsed().as_secs_f64() * 1e3
    );
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut names: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut mode = Mode::Print;
    let mut shape = false;
    let mut args_iter = args.iter().peekable();
    while let Some(a) = args_iter.next() {
        match a.as_str() {
            "--full" => scale = Scale::Full,
            "--quick" => scale = Scale::Quick,
            "--check" => mode = Mode::Check,
            "--bless" => mode = Mode::Bless,
            "--shape" => shape = true,
            "--json" => json_path = Some("BENCH_experiments.json".to_string()),
            "--threads" => {
                let Some(n) = args_iter.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--threads needs a positive integer");
                    return ExitCode::FAILURE;
                };
                if n == 0 {
                    eprintln!("--threads needs a positive integer");
                    return ExitCode::FAILURE;
                }
                reaper_exec::set_thread_count(Some(n));
            }
            "--list" => {
                for (name, _) in all_experiments() {
                    emit!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            other => {
                if let Some(path) = other.strip_prefix("--json=") {
                    json_path = Some(path.to_string());
                } else if let Some(n) = other.strip_prefix("--threads=") {
                    match n.parse::<usize>() {
                        Ok(n) if n > 0 => reaper_exec::set_thread_count(Some(n)),
                        _ => {
                            eprintln!("--threads needs a positive integer");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    names.push(other.to_string());
                }
            }
        }
    }
    if names.is_empty() {
        eprintln!(
            "usage: experiments [--full] [--threads N] [--json[=PATH]] [--check|--bless|--shape] \
             <name...|all>   (see --list)"
        );
        return ExitCode::FAILURE;
    }
    if shape {
        if mode != Mode::Print {
            eprintln!("--shape cannot be combined with --check/--bless");
            return ExitCode::FAILURE;
        }
        return run_shape(&names, scale);
    }
    if mode != Mode::Print && scale != Scale::Quick {
        // Goldens pin the Quick-scale pinned-seed configuration; Full runs
        // are for reading, not regression pinning.
        eprintln!("goldens are recorded at Quick scale; drop --full for --check/--bless");
        return ExitCode::FAILURE;
    }

    let registry = all_experiments();
    let selected: Vec<_> = if names.iter().any(|n| n == "all") {
        registry
    } else {
        let mut picked = Vec::new();
        for name in &names {
            match registry.iter().find(|(n, _)| n == name) {
                Some(&entry) => picked.push(entry),
                None => {
                    eprintln!("unknown experiment `{name}` (see --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        picked
    };

    let threads = reaper_exec::thread_count();
    let start_all = Instant::now();
    // Run the selected experiments concurrently; par_map returns results
    // in selection order, so the printed report is stable regardless of
    // completion order. Experiments themselves also parallelize their
    // inner loops on the same pool; scoped threads compose without a
    // shared-pool deadlock, at worst mild oversubscription.
    let results: Vec<Completed> = reaper_exec::par_map(&selected, |&(name, runner)| {
        let start = Instant::now();
        let table = runner(scale);
        Completed {
            name,
            table,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    });
    let total_ms = start_all.elapsed().as_secs_f64() * 1e3;

    match mode {
        Mode::Print => {
            for r in &results {
                emit!("{}", r.table);
                emit!(
                    "  [{} completed in {:.1}ms at {scale:?} scale]\n",
                    r.name, r.wall_ms
                );
            }
        }
        Mode::Check => {
            let mut failed = 0usize;
            for r in &results {
                match check_table(r.name, &r.table) {
                    CheckOutcome::Match => {
                        emit!("check {:<16} OK ({:.1}ms)", r.name, r.wall_ms);
                    }
                    CheckOutcome::MissingGolden(path) => {
                        failed += 1;
                        emit!(
                            "check {:<16} MISSING golden {} — record it with `experiments --bless {}`",
                            r.name,
                            path.display(),
                            r.name
                        );
                    }
                    CheckOutcome::CorruptGolden(e) => {
                        failed += 1;
                        emit!("check {:<16} CORRUPT golden: {e}", r.name);
                    }
                    CheckOutcome::Mismatch(diffs) => {
                        failed += 1;
                        emit!("check {:<16} FAILED ({} mismatch(es)):", r.name, diffs.len());
                        for d in diffs.iter().take(20) {
                            emit!("    {d}");
                        }
                        if diffs.len() > 20 {
                            emit!("    ... and {} more", diffs.len() - 20);
                        }
                        emit!(
                            "    (intentional model change? re-record with `experiments --bless {}`)",
                            r.name
                        );
                    }
                }
            }
            emit!(
                "  [{} golden check(s) in {total_ms:.1}ms, {failed} failed]",
                results.len()
            );
            if failed > 0 {
                return ExitCode::FAILURE;
            }
        }
        Mode::Bless => {
            for r in &results {
                match bless_table(r.name, &r.table) {
                    Ok(path) => {
                        emit!("bless {:<16} -> {}", r.name, path.display());
                    }
                    Err(e) => {
                        eprintln!("bless {}: {e}", r.name);
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }
    emit!(
        "  [{} experiment(s) in {:.1}ms wall, {threads} thread(s)]",
        results.len(),
        total_ms
    );

    if let Some(path) = json_path {
        let json = render_json(&results, scale, threads, total_ms);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        emit!("  [perf trajectory written to {path}]");
    }
    ExitCode::SUCCESS
}
