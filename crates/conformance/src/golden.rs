//! Tier A: golden-table regression.
//!
//! Every experiment in the `reaper-bench` registry is deterministic at a
//! pinned seed and thread-count independent, so its Quick-scale [`Table`]
//! can be recorded once (`experiments --bless`) and re-checked on every
//! change (`experiments --check`). A silent calibration regression in
//! `reaper-retention` or `reaper-core` then fails loudly instead of
//! shipping unnoticed in a 20-table wall of text.
//!
//! Goldens live in `goldens/<name>.tsv` at the repository root (override
//! with `REAPER_GOLDENS_DIR`), in the [`Table::to_tsv`] format. Diffs use
//! the [`tolerance`](crate::tolerance) policy: counts exact, floats under
//! a relative epsilon.

use std::path::PathBuf;

use reaper_bench::Table;

use crate::tolerance::{compare_cell, Tolerance};

/// Directory holding the golden TSVs: `$REAPER_GOLDENS_DIR` if set, else
/// `goldens/` at the workspace root (resolved relative to this crate's
/// manifest, so it works from any working directory).
pub fn golden_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("REAPER_GOLDENS_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../goldens"))
}

/// Path of one experiment's golden file.
pub fn golden_path(name: &str) -> PathBuf {
    golden_dir().join(format!("{name}.tsv"))
}

/// The comparison policy for one experiment. All experiments currently
/// share [`Tolerance::DEFAULT`]; the per-name hook exists so a future
/// intentionally-noisier experiment can loosen its floats without
/// loosening everyone else's.
pub fn tolerance_for(_name: &str) -> Tolerance {
    Tolerance::DEFAULT
}

/// One disagreement between a golden and a freshly generated table.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// Where in the table the disagreement is (e.g. `row 3, col "rate"`).
    pub location: String,
    /// Why the cells disagree.
    pub reason: String,
}

impl core::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: {}", self.location, self.reason)
    }
}

/// Structural + tolerant-cell diff of a fresh table against its golden.
/// An empty result means conformance.
pub fn diff_tables(golden: &Table, fresh: &Table, tol: Tolerance) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let mut push = |location: String, reason: String| out.push(Mismatch { location, reason });

    if let Some(reason) = compare_cell(&golden.title, &fresh.title, tol) {
        push("title".to_string(), reason);
    }
    if golden.columns != fresh.columns {
        push(
            "columns".to_string(),
            format!("{:?} != {:?}", golden.columns, fresh.columns),
        );
        return out; // cell-by-cell comparison is meaningless past this
    }
    if golden.rows.len() != fresh.rows.len() {
        push(
            "rows".to_string(),
            format!("row count {} != {}", golden.rows.len(), fresh.rows.len()),
        );
        return out;
    }
    for (ri, (grow, frow)) in golden.rows.iter().zip(&fresh.rows).enumerate() {
        for (ci, (g, f)) in grow.iter().zip(frow).enumerate() {
            if let Some(reason) = compare_cell(g, f, tol) {
                push(format!("row {ri}, col `{}`", golden.columns[ci]), reason);
            }
        }
    }
    if golden.notes.len() != fresh.notes.len() {
        push(
            "notes".to_string(),
            format!("note count {} != {}", golden.notes.len(), fresh.notes.len()),
        );
        return out;
    }
    for (ni, (g, f)) in golden.notes.iter().zip(&fresh.notes).enumerate() {
        if let Some(reason) = compare_cell(g, f, tol) {
            push(format!("note {ni}"), reason);
        }
    }
    out
}

/// Result of checking one experiment against its golden.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckOutcome {
    /// Fresh table conforms to the golden.
    Match,
    /// No golden recorded yet; run `experiments --bless <name>`.
    MissingGolden(PathBuf),
    /// The golden file exists but cannot be parsed.
    CorruptGolden(String),
    /// The fresh table disagrees with the golden.
    Mismatch(Vec<Mismatch>),
}

impl CheckOutcome {
    /// True only for [`CheckOutcome::Match`].
    pub fn passed(&self) -> bool {
        matches!(self, CheckOutcome::Match)
    }
}

/// Checks a freshly generated table against the recorded golden for
/// `name`.
pub fn check_table(name: &str, fresh: &Table) -> CheckOutcome {
    let path = golden_path(name);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(_) => return CheckOutcome::MissingGolden(path),
    };
    let golden = match Table::from_tsv(&text) {
        Ok(t) => t,
        Err(e) => return CheckOutcome::CorruptGolden(format!("{}: {e}", path.display())),
    };
    let diffs = diff_tables(&golden, fresh, tolerance_for(name));
    if diffs.is_empty() {
        CheckOutcome::Match
    } else {
        CheckOutcome::Mismatch(diffs)
    }
}

/// Records `fresh` as the new golden for `name`, creating the goldens
/// directory if needed. Returns the written path.
///
/// # Errors
/// Propagates filesystem errors.
pub fn bless_table(name: &str, fresh: &Table) -> std::io::Result<PathBuf> {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir)?;
    let path = golden_path(name);
    let mut text = format!(
        "# golden table `{name}` — Quick scale, pinned seeds.\n\
         # Regenerate after an INTENTIONAL model change with:\n\
         #   cargo run --release -p reaper-conformance --bin experiments -- --bless {name}\n"
    );
    text.push_str(&fresh.to_tsv());
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_table() -> Table {
        let mut t = Table::new("Demo", &["vendor", "count", "rate"]);
        t.push_row(vec!["A".into(), "2464".into(), "1.430e-7".into()]);
        t.push_row(vec!["B".into(), "17".into(), "97.79%".into()]);
        t.note("paper: ~10x per 10°C (k = 0.22)");
        t
    }

    #[test]
    fn identical_tables_have_no_diff() {
        let t = demo_table();
        assert!(diff_tables(&t, &t.clone(), Tolerance::DEFAULT).is_empty());
    }

    #[test]
    fn within_tolerance_float_drift_accepted_count_drift_rejected() {
        let golden = demo_table();
        let mut fresh = demo_table();
        fresh.rows[0][2] = "1.4301e-7".into();
        assert!(diff_tables(&golden, &fresh, Tolerance::DEFAULT).is_empty());
        fresh.rows[0][1] = "2465".into();
        let diffs = diff_tables(&golden, &fresh, Tolerance::DEFAULT);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].location.contains("col `count`"), "{}", diffs[0]);
    }

    #[test]
    fn mutation_in_any_region_is_detected() {
        // The golden layer must be sensitive to every region of the
        // table — this is the in-tree half of the mutation smoke test.
        let golden = demo_table();
        for mutate in [
            |t: &mut Table| t.title = "Demo2".into(),
            |t: &mut Table| t.columns[2] = "rate2".into(),
            |t: &mut Table| t.rows[1][2] = "90.00%".into(),
            |t: &mut Table| t.rows.pop().map(|_| ()).unwrap(),
            |t: &mut Table| t.notes[0] = "paper: ~10x per 10°C (k = 0.30)".into(),
            |t: &mut Table| t.notes.clear(),
        ] {
            let mut fresh = golden.clone();
            mutate(&mut fresh);
            assert!(
                !diff_tables(&golden, &fresh, Tolerance::DEFAULT).is_empty(),
                "mutation escaped the diff: {fresh:?}"
            );
        }
    }

    #[test]
    fn check_and_bless_roundtrip_in_tempdir() {
        let dir = std::env::temp_dir().join(format!("reaper-goldens-{}", std::process::id()));
        // Serialize access to the env var against other tests in this
        // binary (none touch it today, but cheap insurance).
        std::env::set_var("REAPER_GOLDENS_DIR", &dir);
        let t = demo_table();
        assert!(matches!(
            check_table("demo", &t),
            CheckOutcome::MissingGolden(_)
        ));
        let path = bless_table("demo", &t).unwrap();
        assert!(path.ends_with("demo.tsv"));
        assert_eq!(check_table("demo", &t), CheckOutcome::Match);
        let mut changed = t.clone();
        changed.rows[0][1] = "9999".into();
        assert!(matches!(
            check_table("demo", &changed),
            CheckOutcome::Mismatch(_)
        ));
        // A row wider than its header is unparseable, not just mismatched.
        std::fs::write(&path, "a\tb\n1\t2\t3\n").unwrap();
        assert!(matches!(
            check_table("demo", &t),
            CheckOutcome::CorruptGolden(_)
        ));
        std::env::remove_var("REAPER_GOLDENS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
