//! Statistical conformance harness for the REAPER reproduction.
//!
//! `reaper-bench` regenerates every table and figure of the paper, but a
//! wall of 20 printed tables is not a safety net: a silent calibration
//! regression in `reaper-retention` or `reaper-core` would ship unnoticed.
//! This crate machine-checks the experiment registry at two tiers:
//!
//! * [`golden`] — **Tier A, golden-table regression**: every experiment's
//!   Quick-scale [`Table`](reaper_bench::Table) is recorded at the pinned
//!   seed into `goldens/<name>.tsv` and re-diffed on demand with
//!   per-column numeric tolerances (counts exact, floats under a relative
//!   epsilon). Catches *any* behavioral drift, intentional or not.
//! * [`shape`] — **Tier B, paper-shape acceptance**: the reproduction
//!   targets from DESIGN.md §2/§4 (Eq. 1 exponent bands, Fig. 4 power-law
//!   quality, Fig. 6a CDF normality via Kolmogorov–Smirnov, the §6.1.2
//!   headline bounds, Fig. 13's brute-force collapse ordering) encoded as
//!   assertions over multi-seed runs with bootstrap confidence intervals.
//!   Stays green across intentional recalibrations that preserve the
//!   paper's claims.
//!
//! The `experiments` binary (hosted here so it can reach both tiers; the
//! experiment implementations stay in `reaper-bench`) exposes the tiers
//! as flags:
//!
//! ```text
//! experiments --check all        # Tier A: diff every experiment against its golden
//! experiments --bless fig06      # re-record one golden after an intentional change
//! experiments --shape all        # Tier B: paper-shape acceptance suite
//! ```

// Deny-wall escapes (DESIGN.md §"Static analysis & determinism
// invariants"): `reaper-lint` enforces the finer-grained forms of these
// lints — P1 requires `invariant: `-prefixed expect messages and audits
// indexing in the hot-path crates, C1 bans bare casts there — with
// per-site `// lint: allow` markers. Clippy's blanket versions are
// allowed at the crate root so `-D warnings` stays green without
// annotating every audited site twice.
#![allow(clippy::expect_used, clippy::indexing_slicing, clippy::cast_possible_truncation)]

pub mod golden;
pub mod shape;
pub mod tolerance;

pub use golden::{bless_table, check_table, diff_tables, CheckOutcome, Mismatch};
pub use shape::{all_shape_checks, ShapeReport};
pub use tolerance::Tolerance;
