//! Tier B: paper-shape acceptance checks.
//!
//! The reproduction target (DESIGN.md §2) is the *shape* of the paper's
//! results, not its silicon's absolute numbers. Each check here encodes
//! one of those shape claims as a machine-checked assertion with
//! statistically principled tolerances:
//!
//! * **Eq. 1** — fitted per-vendor temperature exponents, averaged over
//!   multiple independently seeded chip populations, must have a
//!   bootstrap confidence interval overlapping the paper's coefficient
//!   band (0.22 / 0.20 / 0.26 ± 0.08);
//! * **Fig. 4** — the VRT failure-accumulation rate must grow
//!   monotonically with interval and admit a high-R² power-law fit with a
//!   large exponent;
//! * **Fig. 6a** — per-cell empirical failure CDFs must sit within the
//!   one-sample Kolmogorov–Smirnov acceptance distance of their fitted
//!   normal CDF (Massart bound at the per-point trial count);
//! * **§6.1.2 headline** — population coverage / FPR / speedup at the
//!   +250 ms reach must satisfy the paper's bounds with bootstrap
//!   confidence intervals over per-chip results;
//! * **Fig. 13** — the end-to-end ordering must reproduce: brute-force
//!   profiling collapses beyond ~1024 ms while REAPER retains gains, and
//!   gains grow with interval and chip density.
//!
//! Unlike the Tier A golden diff (exact regression pinning), these checks
//! stay green across intentional recalibrations as long as the paper's
//! qualitative claims still hold — they define "still a faithful
//! reproduction", while goldens define "unchanged".

use reaper_analysis::fit::{LinearFit, PowerLawFit};
use reaper_analysis::special::phi;
use reaper_analysis::stats::{bootstrap_mean_ci, ks_critical_value, ks_p_value};
use reaper_bench::util::{dram_temp, profile_union, representative_chip};
use reaper_bench::{fig04, fig13, Scale};
use reaper_core::tradeoff::{ExploreOptions, GroundTruth, TradeoffAnalysis};
use reaper_core::{ReachConditions, TargetConditions};
use reaper_dram_model::{Celsius, DataPattern, Ms, Vendor};
use reaper_retention::ChipPopulation;

/// Outcome of one shape check.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeReport {
    /// Registry name of the check.
    pub name: &'static str,
    /// Whether every assertion in the check held.
    pub passed: bool,
    /// One line per assertion: measured value, bound, and verdict.
    pub details: Vec<String>,
}

impl ShapeReport {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            passed: true,
            details: Vec::new(),
        }
    }

    /// Records one assertion: `ok` plus a human-readable account.
    fn assert(&mut self, ok: bool, detail: String) {
        self.passed &= ok;
        self.details
            .push(format!("[{}] {detail}", if ok { "ok" } else { "FAIL" }));
    }
}

impl core::fmt::Display for ShapeReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "shape `{}`: {}",
            self.name,
            if self.passed { "PASS" } else { "FAIL" }
        )?;
        for d in &self.details {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// A shape-check registry entry.
pub type ShapeCheck = (&'static str, fn(Scale) -> ShapeReport);

/// All shape checks, in paper order.
pub fn all_shape_checks() -> Vec<ShapeCheck> {
    vec![
        ("eq1_exponents", eq1_exponents as fn(Scale) -> ShapeReport),
        ("fig04_power_law", fig04_power_law),
        ("fig06_normality", fig06_normality),
        ("headline_bounds", headline_bounds),
        ("fig13_collapse", fig13_collapse),
    ]
}

/// Parses a `"97.79%"`-style cell into a fraction.
fn pct(s: &str) -> f64 {
    s.trim_end_matches('%')
        .parse::<f64>()
        .expect("invariant: cells come from fmt_pct and always parse")
        / 100.0
}

/// Half-width of the acceptance band around each paper Eq. 1 coefficient.
/// Chosen from the multi-seed spread at Quick scale (per-seed fits scatter
/// by ±0.03–0.05 around the model's true coefficient) plus margin for the
/// ln-linearization bias at small failure counts.
const EQ1_BAND: f64 = 0.08;

/// Eq. 1: fitted `k` per vendor, across independently seeded populations,
/// with a bootstrap CI that must overlap `paper_k ± EQ1_BAND`.
pub fn eq1_exponents(scale: Scale) -> ShapeReport {
    let mut report = ShapeReport::new("eq1_exponents");
    let temps = [40.0, 45.0, 50.0, 55.0];
    let iterations = scale.pick(2, 4);
    let chips_per_vendor = scale.pick(3, 8);
    let pop_chips = scale.pick(9, 40);
    let seeds: &[u64] = scale.pick(&[368, 1369, 2370, 3371, 4372][..], &[368, 1369, 2370][..]);

    for vendor in Vendor::ALL {
        // One fitted exponent per population seed, fanned out on the pool.
        let fitted: Vec<f64> = reaper_exec::par_map(seeds, |&seed| {
            let pop = ChipPopulation::sample_study(pop_chips, seed);
            let chips: Vec<_> = pop.chips_of(vendor).take(chips_per_vendor).collect();
            let mut points: Vec<(f64, f64)> = Vec::new();
            for &t in &temps {
                let total: usize = chips
                    .iter()
                    .map(|chip| {
                        let mut chip = (*chip).clone();
                        profile_union(&mut chip, Ms::new(1024.0), Celsius::new(t), iterations)
                            .len()
                    })
                    .sum();
                if total > 0 {
                    points.push((t, (total as f64).ln()));
                }
            }
            LinearFit::fit(&points)
                .expect("invariant: the fixed 4-temperature sweep yields >= 2 points")
                .slope
        });
        let paper_k = vendor.temperature_coefficient();
        let mean_k = fitted.iter().sum::<f64>() / fitted.len() as f64;
        let (lo, hi) = bootstrap_mean_ci(&fitted, 1000, 0.95, 0x51A9E)
            .expect("invariant: one fitted slope per seed, seeds are non-empty");
        let band = (paper_k - EQ1_BAND, paper_k + EQ1_BAND);
        let overlaps = lo <= band.1 && hi >= band.0;
        report.assert(
            overlaps,
            format!(
                "{vendor}: fitted k mean {mean_k:.3}, 95% CI [{lo:.3}, {hi:.3}] over {} seeds \
                 must overlap paper band [{:.2}, {:.2}]",
                fitted.len(),
                band.0,
                band.1
            ),
        );
        report.assert(
            (mean_k - paper_k).abs() < EQ1_BAND + 0.02,
            format!("{vendor}: |mean k − paper k| = {:.3} < {:.2}", (mean_k - paper_k).abs(), EQ1_BAND + 0.02),
        );
    }
    report
}

/// Fig. 4: rates must rise monotonically with interval and fit a power
/// law `y = a·x^b` with b ≫ 1 and a high log–log R².
pub fn fig04_power_law(scale: Scale) -> ShapeReport {
    let mut report = ShapeReport::new("fig04_power_law");
    let table = fig04::run(scale);
    // Rows per vendor: one per interval plus a trailing `fit` row.
    for vendor_rows in table.rows.chunks(5) {
        let vendor = &vendor_rows[0][0];
        let points: Vec<(f64, f64)> = vendor_rows[..4]
            .iter()
            .map(|r| {
                let interval_s: f64 = r[1]
                    .trim_end_matches("ms")
                    .trim_end_matches('s')
                    .parse::<f64>()
                    .map(|v| if r[1].ends_with("ms") { v / 1e3 } else { v })
                    .expect("invariant: interval cells come from Ms::to_string");
                // Clamp zero rates exactly as fig04 does before fitting.
                (
                    interval_s,
                    r[2].parse::<f64>()
                        .expect("invariant: rate cells come from fmt_f")
                        .max(1e-3),
                )
            })
            .collect();
        let monotone = points.windows(2).all(|w| w[1].1 >= w[0].1);
        report.assert(
            monotone,
            format!("{vendor}: accumulation rate non-decreasing in interval: {points:?}"),
        );
        let fit = PowerLawFit::fit(&points)
            .expect("invariant: every point's rate is clamped to >= 1e-3 above");
        report.assert(
            fit.r_squared > 0.8,
            format!("{vendor}: log–log R² {:.3} > 0.8", fit.r_squared),
        );
        report.assert(
            (3.0..=14.0).contains(&fit.b),
            format!("{vendor}: exponent b {:.2} in [3, 14] (paper: ~7.6–8.2)", fit.b),
        );
    }
    report
}

/// Fig. 6a: per-cell empirical failure CDFs vs. their fitted normal CDF.
///
/// Each grid point's empirical fraction comes from `trials` Bernoulli
/// draws of the cell's (normal) failure CDF, so under the null the
/// per-cell sup-distance to the fitted Φ obeys the one-sample KS/DKW
/// bound at that trial count. Most cells must sit inside the α = 0.05
/// acceptance distance, and the cross-cell median KS p-value must not be
/// degenerate.
pub fn fig06_normality(scale: Scale) -> ShapeReport {
    let mut report = ShapeReport::new("fig06_normality");
    let chip = representative_chip(scale);
    let temp = dram_temp(Celsius::new(40.0));
    let steps = scale.pick(26usize, 40usize);
    let trials: u64 = 16;
    let intervals: Vec<f64> = (0..steps).map(|i| 0.3 + i as f64 * 0.15).collect();

    // Per-cell failure counts over the interval grid (random pattern and
    // its inverse, as in Fig. 6's methodology).
    let mut chip = chip;
    // BTreeMap: `exposed_trials` below keeps the *last* visited cell's
    // max count, so iteration order must be fixed across runs.
    let mut fail_counts: std::collections::BTreeMap<u64, Vec<u32>> = std::collections::BTreeMap::new();
    for (ii, &t) in intervals.iter().enumerate() {
        for trial in 0..trials {
            let p = if trial % 2 == 0 {
                DataPattern::random(trial)
            } else {
                DataPattern::random(trial - 1).inverse()
            };
            for &cell in chip
                .retention_trial(p, Ms::from_secs(t), temp)
                .failures()
            {
                fail_counts
                    .entry(cell)
                    .or_insert_with(|| vec![0; intervals.len()])[ii] += 1;
            }
        }
    }

    // Fit each resolved cell's (μ, σ) from its 16/50/84 crossings and
    // measure the sup-distance of its empirical CDF to Φ((t−μ)/σ).
    let crossing = |fracs: &[f64], level: f64| -> Option<f64> {
        for i in 1..fracs.len() {
            if fracs[i - 1] < level && fracs[i] >= level {
                let (t0, t1) = (intervals[i - 1], intervals[i]);
                let (f0, f1) = (fracs[i - 1], fracs[i]);
                let w = if f1 > f0 { (level - f0) / (f1 - f0) } else { 0.0 };
                return Some(t0 + w * (t1 - t0));
            }
        }
        None
    };
    let mut distances: Vec<f64> = Vec::new();
    let mut exposed_trials = 0.0_f64;
    for counts in fail_counts.values() {
        let max_count = *counts
            .iter()
            .max()
            .expect("invariant: counts has one slot per grid interval")
            as f64;
        if max_count < trials as f64 * 0.35 {
            continue; // CDF does not saturate inside the grid
        }
        let fracs: Vec<f64> = counts.iter().map(|&c| c as f64 / max_count).collect();
        let (Some(t16), Some(t50), Some(t84)) = (
            crossing(&fracs, 0.16),
            crossing(&fracs, 0.50),
            crossing(&fracs, 0.84),
        ) else {
            continue;
        };
        let sigma = ((t84 - t16) / 2.0).max(1e-4);
        let d = fracs
            .iter()
            .zip(&intervals)
            .map(|(&f, &t)| (f - phi((t - t50) / sigma)).abs())
            .fold(0.0_f64, f64::max);
        distances.push(d);
        exposed_trials = max_count; // polarity gating: ~trials/2 exposures
    }
    report.assert(
        distances.len() >= 10,
        format!("{} cells resolved (need ≥ 10 for a meaningful check)", distances.len()),
    );
    if distances.is_empty() {
        return report;
    }

    let n_eff = exposed_trials.max(1.0) as usize;
    let crit = ks_critical_value(n_eff, 0.05)
        .expect("invariant: alpha is the literal 0.05 and n_eff >= 1");
    let inside = distances.iter().filter(|&&d| d <= crit).count();
    let frac_inside = inside as f64 / distances.len() as f64;
    report.assert(
        frac_inside >= 0.7,
        format!(
            "{:.1}% of {} cells within KS acceptance distance {crit:.3} \
             (α=0.05, n={n_eff}) of their fitted normal CDF (need ≥ 70%)",
            frac_inside * 100.0,
            distances.len()
        ),
    );
    let mut sorted = distances.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("invariant: KS distances are finite"));
    let median_d = sorted[sorted.len() / 2];
    let median_p = ks_p_value(median_d.min(1.0), n_eff)
        .expect("invariant: distance is clamped to [0, 1] and n_eff >= 1");
    report.assert(
        median_p > 0.2,
        format!("median per-cell KS D {median_d:.3} ⇒ p ≈ {median_p:.2} > 0.2 at n={n_eff}"),
    );
    report
}

/// §6.1.2 headline bounds with bootstrap CIs over per-chip results:
/// coverage, FPR, and speedup at +250 ms, plus the aggressive-thermal
/// ordering.
pub fn headline_bounds(scale: Scale) -> ShapeReport {
    let mut report = ShapeReport::new("headline_bounds");
    let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
    let reach_250 = ReachConditions::paper_headline();
    let reach_hot = ReachConditions::new(Ms::ZERO, 10.0);
    let opts = ExploreOptions {
        profile_iterations: scale.pick(8, 16),
        ground_truth: GroundTruth::Empirical {
            iterations: scale.pick(16, 32),
        },
        coverage_goal: 0.9,
        max_runtime_iterations: scale.pick(48, 96),
        seed: 0x4EAD,
    };
    let pop = ChipPopulation::sample_study(scale.pick(9, 40), 368);
    let chips: Vec<_> = pop.chips().iter().take(scale.pick(8, 24)).collect();
    let analyses = reaper_exec::par_map(&chips, |chip| {
        TradeoffAnalysis::explore(
            chip,
            target,
            &[Ms::ZERO, Ms::new(250.0)],
            &[0.0, 10.0],
            opts,
        )
    });
    let point_of = |a: &TradeoffAnalysis, reach: &ReachConditions| {
        *a.points
            .iter()
            .find(|p| p.reach == *reach)
            .expect("invariant: explore() measures every configured reach point")
    };
    let cov: Vec<f64> = analyses.iter().map(|a| point_of(a, &reach_250).coverage).collect();
    let fpr: Vec<f64> = analyses
        .iter()
        .map(|a| point_of(a, &reach_250).false_positive_rate)
        .collect();
    let spd: Vec<f64> = analyses.iter().map(|a| point_of(a, &reach_250).speedup()).collect();
    let spd_hot: Vec<f64> = analyses.iter().map(|a| point_of(a, &reach_hot).speedup()).collect();
    let fpr_hot: Vec<f64> = analyses
        .iter()
        .map(|a| point_of(a, &reach_hot).false_positive_rate)
        .collect();

    let resamples = 1000;
    let (cov_lo, _) = bootstrap_mean_ci(&cov, resamples, 0.95, 1)
        .expect("invariant: one sample per chip, chips are non-empty");
    report.assert(
        cov_lo > 0.95,
        format!("+250ms coverage: 95% CI lower bound {cov_lo:.4} > 0.95 (paper: >99%)"),
    );
    let (_, fpr_hi) = bootstrap_mean_ci(&fpr, resamples, 0.95, 2)
        .expect("invariant: one sample per chip, chips are non-empty");
    report.assert(
        fpr_hi < 0.6,
        format!("+250ms FPR: 95% CI upper bound {fpr_hi:.4} < 0.6 (paper: <50%)"),
    );
    let (spd_lo, spd_hi) = bootstrap_mean_ci(&spd, resamples, 0.95, 3)
        .expect("invariant: one sample per chip, chips are non-empty");
    report.assert(
        spd_hi > 1.8 && spd_lo < 6.5,
        format!("+250ms speedup: 95% CI [{spd_lo:.2}, {spd_hi:.2}] intersects [1.8, 6.5] (paper: ≈2.5×)"),
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    report.assert(
        mean(&spd_hot) > mean(&spd),
        format!(
            "aggressive +10°C reach is faster: {:.2}× > {:.2}×",
            mean(&spd_hot),
            mean(&spd)
        ),
    );
    report.assert(
        mean(&fpr_hot) > mean(&fpr) + 0.1,
        format!(
            "aggressive reach pays in FPR: {:.3} > {:.3} + 0.1",
            mean(&fpr_hot),
            mean(&fpr)
        ),
    );
    report
}

/// Fig. 13: brute-force profiling collapses beyond ~1024 ms while REAPER
/// retains gains; ideal gains grow with interval and chip density.
pub fn fig13_collapse(scale: Scale) -> ShapeReport {
    let mut report = ShapeReport::new("fig13_collapse");
    let table = fig13::run(scale);
    let row = |chip: &str, interval: &str| {
        table
            .rows
            .iter()
            .find(|r| r[0] == chip && r[1] == interval)
            // lint: allow(panic) shape checks fail fast on malformed tables — a missing row is a harness bug
            .unwrap_or_else(|| panic!("row {chip}/{interval} missing"))
    };
    let brute_1280 = pct(&row("64Gb", "1.280s")[2]);
    let reaper_1280 = pct(&row("64Gb", "1.280s")[4]);
    let ideal_1280 = pct(&row("64Gb", "1.280s")[6]);
    report.assert(
        reaper_1280 > brute_1280,
        format!("collapse ordering at 1280ms: REAPER {reaper_1280:.3} > brute {brute_1280:.3}"),
    );
    report.assert(
        ideal_1280 >= reaper_1280,
        format!("ideal {ideal_1280:.3} ≥ REAPER {reaper_1280:.3} at 1280ms"),
    );
    let ideal_128 = pct(&row("64Gb", "128.0ms")[6]);
    let ideal_512 = pct(&row("64Gb", "512.0ms")[6]);
    let ideal_noref = pct(&row("64Gb", "no ref")[6]);
    report.assert(
        ideal_512 > ideal_128 && ideal_noref >= ideal_512,
        format!("ideal gains grow with interval: {ideal_128:.3} < {ideal_512:.3} ≤ {ideal_noref:.3}"),
    );
    report.assert(
        ideal_noref > pct(&row("8Gb", "no ref")[6]),
        "denser chips gain more from relaxed refresh (64Gb > 8Gb at no-ref)".to_string(),
    );
    let p_512 = pct(&row("64Gb", "512.0ms")[8]);
    let p_noref = pct(&row("64Gb", "no ref")[8]);
    report.assert(
        p_noref >= p_512 && p_noref > 0.15,
        format!("power reduction grows with interval and is large: {p_512:.3} ≤ {p_noref:.3} > 0.15"),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_ordered() {
        let names: Vec<&str> = all_shape_checks().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 5);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn report_assert_accumulates_failures() {
        let mut r = ShapeReport::new("demo");
        r.assert(true, "fine".into());
        assert!(r.passed);
        r.assert(false, "broken".into());
        assert!(!r.passed);
        r.assert(true, "fine again".into());
        assert!(!r.passed, "one failure must stick");
        let text = r.to_string();
        assert!(text.contains("FAIL"));
        assert!(text.contains("[ok] fine"));
    }

    #[test]
    fn pct_parses_table_cells() {
        assert!((pct("97.79%") - 0.9779).abs() < 1e-12);
        assert!((pct("-5.40%") + 0.054).abs() < 1e-12);
    }
}
