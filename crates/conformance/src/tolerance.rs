//! Tolerant cell comparison for golden-table diffs.
//!
//! Experiment tables mix exact values (counts, labels, units) with
//! formatted floats. A golden diff must treat those differently:
//!
//! * **integer tokens** (`2464`, `-3`) compare exactly — a count that
//!   moves by one is a real behavioral change;
//! * **float tokens** (`1.430e-7`, `97.79%`, `2.51x`, `1.280s`) compare
//!   under a relative/absolute epsilon, absorbing cross-platform libm
//!   differences in `exp`/`ln` that can flip the last printed digit;
//! * **everything else** (vendor names, `no ref`, `fit`) compares exactly.
//!
//! Tokens are whitespace-separated within a cell, so prose notes are
//! compared word-by-word with the same numeric awareness.

/// Numeric comparison policy for one experiment's golden diff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative epsilon for float tokens: `|a − b| ≤ rel · max(|a|, |b|)`.
    pub rel: f64,
    /// Absolute epsilon for float tokens near zero.
    pub abs: f64,
}

impl Tolerance {
    /// The default policy: floats within 0.1 % relative (or 1e-9
    /// absolute), integers exact. Tight enough that any real calibration
    /// drift trips the check, loose enough to absorb printed-digit
    /// rounding differences between platforms.
    pub const DEFAULT: Tolerance = Tolerance {
        rel: 1e-3,
        abs: 1e-9,
    };

    /// True if floats `a` and `b` agree under this policy.
    pub fn floats_agree(&self, a: f64, b: f64) -> bool {
        // Exact fast path: bit-identical values (incl. infinities) agree
        // regardless of the relative/absolute thresholds below.
        #[allow(clippy::float_cmp)]
        if a == b {
            return true;
        }
        let diff = (a - b).abs();
        diff <= self.abs || diff <= self.rel * a.abs().max(b.abs())
    }
}

impl Default for Tolerance {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// One token split into an optional embedded number and the surrounding
/// text, e.g. `"97.79%"` → prefix `""`, number `97.79`, suffix `"%"`;
/// `"x^7.612"` → prefix `"x^"`, number `7.612`, suffix `""`.
#[derive(Debug, Clone, PartialEq)]
enum Token<'a> {
    /// A token with no parseable number: compare the text exactly.
    Text(&'a str),
    /// An integer with non-numeric prefix/suffix (`"2464"`, `"8Gb"`).
    Int(&'a str, i128, &'a str),
    /// A float with non-numeric prefix/suffix (`"2.51x"`, `"x^7.612"`).
    Float(&'a str, f64, &'a str),
}

/// Splits a token into its first embedded number and the text around it.
/// A number here is `[+-]? digits [. digits]? ([eE][+-]?digits)?`; the
/// token is an integer only if it has neither a decimal point nor an
/// exponent. Prefix and suffix compare exactly, so `x^7.612` vs `y^7.612`
/// still mismatches while the exponent itself stays tolerant.
fn classify(token: &str) -> Token<'_> {
    let bytes = token.as_bytes();
    // First digit anywhere in the token; an immediately preceding sign
    // belongs to the number (`x^-7.6`), anything before it is prefix.
    let Some(first_digit) = bytes.iter().position(u8::is_ascii_digit) else {
        return Token::Text(token); // no digits at all
    };
    let num_start = if first_digit > 0
        && (bytes[first_digit - 1] == b'+' || bytes[first_digit - 1] == b'-')
    {
        first_digit - 1
    } else {
        first_digit
    };
    let mut i = first_digit;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' {
        let frac_start = i + 1;
        let mut j = frac_start;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
        if j > frac_start {
            is_float = true;
            i = j;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        let exp_start = j;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
        if j > exp_start {
            is_float = true;
            i = j;
        }
    }
    let prefix = &token[..num_start];
    let num = &token[num_start..i];
    let suffix = &token[i..];
    if is_float {
        match num.parse::<f64>() {
            Ok(v) => Token::Float(prefix, v, suffix),
            Err(_) => Token::Text(token),
        }
    } else {
        match num.parse::<i128>() {
            Ok(v) => Token::Int(prefix, v, suffix),
            Err(_) => Token::Text(token),
        }
    }
}

/// Compares two cells (or note lines) token-by-token under `tol`.
/// Returns `None` on agreement, or a human-readable reason on mismatch.
pub fn compare_cell(golden: &str, fresh: &str, tol: Tolerance) -> Option<String> {
    let g_tokens: Vec<&str> = golden.split_whitespace().collect();
    let f_tokens: Vec<&str> = fresh.split_whitespace().collect();
    if g_tokens.len() != f_tokens.len() {
        return Some(format!(
            "token count {} != {} (`{golden}` vs `{fresh}`)",
            g_tokens.len(),
            f_tokens.len()
        ));
    }
    for (g, f) in g_tokens.iter().zip(&f_tokens) {
        match (classify(g), classify(f)) {
            (Token::Int(gp, gv, gs), Token::Int(fp, fv, fs)) => {
                if gv != fv || gp != fp || gs != fs {
                    return Some(format!("integer `{g}` != `{f}` (counts compare exactly)"));
                }
            }
            (Token::Float(gp, gv, gs), Token::Float(fp, fv, fs)) => {
                if gp != fp || gs != fs {
                    return Some(format!("unit text differs in `{g}` vs `{f}`"));
                }
                if !tol.floats_agree(gv, fv) {
                    return Some(format!(
                        "float `{g}` vs `{f}` outside tolerance (rel {:.0e}, abs {:.0e})",
                        tol.rel, tol.abs
                    ));
                }
            }
            // An integer in one run and a float in the other (e.g. `0`
            // vs `0.001`) is a formatting-class change: compare the
            // numeric values under the float policy, requiring equal
            // surrounding text.
            (Token::Int(gp, gv, gs), Token::Float(fp, fv, fs))
            | (Token::Float(fp, fv, fs), Token::Int(gp, gv, gs)) => {
                if gp != fp || gs != fs || !tol.floats_agree(gv as f64, fv) {
                    return Some(format!("numeric `{g}` vs `{f}` outside tolerance"));
                }
            }
            (Token::Text(gt), Token::Text(ft)) => {
                if gt != ft {
                    return Some(format!("text `{gt}` != `{ft}`"));
                }
            }
            _ => {
                return Some(format!("token class changed: `{g}` vs `{f}`"));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: Tolerance = Tolerance::DEFAULT;

    #[test]
    fn exact_text_and_integer_matching() {
        assert_eq!(compare_cell("Vendor A", "Vendor A", TOL), None);
        assert!(compare_cell("Vendor A", "Vendor B", TOL).is_some());
        assert_eq!(compare_cell("2464", "2464", TOL), None);
        assert!(compare_cell("2464", "2465", TOL).is_some(), "counts exact");
        assert_eq!(compare_cell("8Gb", "8Gb", TOL), None);
        assert!(compare_cell("8Gb", "16Gb", TOL).is_some());
    }

    #[test]
    fn floats_compare_with_tolerance() {
        assert_eq!(compare_cell("1.430e-7", "1.4301e-7", TOL), None);
        assert!(compare_cell("1.430e-7", "1.5e-7", TOL).is_some());
        assert_eq!(compare_cell("97.79%", "97.78%", TOL), None);
        assert!(compare_cell("97.79%", "90.00%", TOL).is_some());
        assert_eq!(compare_cell("2.51x", "2.512x", TOL), None);
        assert!(compare_cell("2.51x", "2.51s", TOL).is_some(), "suffix");
        assert_eq!(compare_cell("-0.123", "-0.123", TOL), None);
    }

    #[test]
    fn near_zero_uses_absolute_epsilon() {
        assert_eq!(compare_cell("0.0", "1.0e-10", TOL), None);
        assert!(compare_cell("0.0", "1.0e-3", TOL).is_some());
    }

    #[test]
    fn mixed_prose_compares_word_by_word() {
        let g = "fit y = 1.234e-4 * x^7.612 over 4 points";
        let f = "fit y = 1.2341e-4 * x^7.613 over 4 points";
        assert_eq!(compare_cell(g, f, TOL), None);
        let f_bad = "fit y = 1.234e-4 * x^6.000 over 4 points";
        assert!(compare_cell(g, f_bad, TOL).is_some());
        let f_count = "fit y = 1.234e-4 * x^7.612 over 5 points";
        assert!(compare_cell(g, f_count, TOL).is_some());
    }

    #[test]
    fn token_count_mismatch_reported() {
        assert!(compare_cell("a b", "a", TOL).is_some());
    }

    #[test]
    fn classifier_edge_cases() {
        assert_eq!(classify("x^7.6"), Token::Float("x^", 7.6, ""));
        assert_eq!(classify("x^-7.6"), Token::Float("x^", -7.6, ""));
        assert_eq!(classify("-3"), Token::Int("", -3, ""));
        assert_eq!(classify("1.280s"), Token::Float("", 1.28, "s"));
        assert_eq!(classify("1e"), Token::Int("", 1, "e")); // bare `e` is a suffix
        assert_eq!(classify("3."), Token::Int("", 3, ".")); // trailing dot is a suffix
        assert_eq!(classify("+0.5"), Token::Float("", 0.5, ""));
        assert_eq!(classify("no"), Token::Text("no"));
        // Prefixes compare exactly, so a changed variable name is caught
        // even when the numeric part agrees.
        assert!(compare_cell("x^7.612", "y^7.612", TOL).is_some());
    }

    #[test]
    fn int_vs_float_class_change_uses_value() {
        assert_eq!(compare_cell("0", "0.0", TOL), None);
        assert!(compare_cell("0", "0.5", TOL).is_some());
    }
}
