//! End-to-end conformance: the committed goldens must match a fresh run,
//! and every paper-shape acceptance check must pass at Quick scale.
//!
//! These tests are the in-tree half of the repo's regression safety net;
//! `experiments --check all` / `--shape all` are the CLI half.

use reaper_bench::{all_experiments, Scale};
use reaper_conformance::{all_shape_checks, check_table, CheckOutcome};

/// Cheap experiments re-checked against their committed goldens on every
/// `cargo test`. The full 20-experiment sweep runs via
/// `experiments --check all` in `scripts/verify.sh` and CI; this subset
/// keeps the unit-test cycle fast while still exercising the whole
/// golden pipeline (file IO, TSV parsing, tolerant diff).
const FAST_SUBSET: &[&str] = &[
    "eq1",
    "fig06",
    "table1",
    "longevity",
    "abl_scrubbing",
];

#[test]
fn committed_goldens_match_fresh_quick_runs() {
    let registry = all_experiments();
    for &name in FAST_SUBSET {
        let (_, runner) = registry
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("experiment `{name}` missing from registry"));
        let table = runner(Scale::Quick);
        match check_table(name, &table) {
            CheckOutcome::Match => {}
            CheckOutcome::MissingGolden(path) => panic!(
                "no golden for `{name}` at {} — record it with `experiments --bless {name}`",
                path.display()
            ),
            CheckOutcome::CorruptGolden(e) => panic!("corrupt golden for `{name}`: {e}"),
            CheckOutcome::Mismatch(diffs) => {
                let lines: Vec<String> = diffs.iter().map(ToString::to_string).collect();
                panic!(
                    "`{name}` drifted from its golden:\n  {}\n(intentional? `experiments --bless {name}`)",
                    lines.join("\n  ")
                );
            }
        }
    }
}

#[test]
fn every_experiment_has_a_committed_golden() {
    for (name, _) in all_experiments() {
        let path = reaper_conformance::golden::golden_path(name);
        assert!(
            path.exists(),
            "experiment `{name}` has no golden at {} — run `experiments --bless {name}`",
            path.display()
        );
    }
}

#[test]
fn paper_shape_acceptance_suite_passes_at_quick_scale() {
    for (name, check) in all_shape_checks() {
        let report = check(Scale::Quick);
        assert!(
            report.passed,
            "shape check `{name}` failed:\n{report}"
        );
    }
}
