//! Target and reach operating conditions.
//!
//! A *target condition* is the (refresh interval, ambient temperature) the
//! system wants to run DRAM at; a *reach condition* is the more aggressive
//! (longer interval and/or hotter) point the profiler tests at (§6).

use reaper_dram_model::{Celsius, Ms};

/// The conditions the system will actually operate at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetConditions {
    /// Target refresh interval.
    pub interval: Ms,
    /// Target ambient temperature.
    pub ambient: Celsius,
}

impl TargetConditions {
    /// Creates target conditions.
    ///
    /// # Panics
    /// Panics if `interval` is not positive.
    pub fn new(interval: Ms, ambient: Celsius) -> Self {
        assert!(interval.is_positive(), "target interval must be positive");
        Self { interval, ambient }
    }

    /// The paper's most-discussed operating point: 1024 ms at 45 °C.
    pub fn paper_example() -> Self {
        Self::new(Ms::new(1024.0), Celsius::new(45.0))
    }

    /// The DRAM temperature corresponding to this ambient (the test
    /// infrastructure holds DRAM 15 °C above ambient, §4). Ground-truth
    /// queries against the retention simulator must use this temperature.
    pub fn dram_temp(&self) -> Celsius {
        self.ambient + reaper_softmc::thermal::DRAM_OFFSET
    }
}

impl core::fmt::Display for TargetConditions {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "target({} @ {})", self.interval, self.ambient)
    }
}

/// The offset from target conditions at which profiling runs.
///
/// `(0ms, 0°C)` reduces reach profiling to brute-force profiling at the
/// target conditions (the paper's baseline).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReachConditions {
    /// Extra refresh interval beyond the target.
    pub delta_interval: Ms,
    /// Extra ambient temperature beyond the target (degrees).
    pub delta_temp: f64,
}

impl ReachConditions {
    /// Creates a reach offset.
    ///
    /// # Panics
    /// Panics if either delta is negative — profiling *below* target
    /// conditions cannot reach the target failure population.
    pub fn new(delta_interval: Ms, delta_temp: f64) -> Self {
        assert!(
            delta_interval.as_ms() >= 0.0,
            "reach interval offset must be non-negative"
        );
        assert!(delta_temp >= 0.0, "reach temperature offset must be non-negative");
        Self {
            delta_interval,
            delta_temp,
        }
    }

    /// Brute-force profiling: zero offsets.
    pub fn brute_force() -> Self {
        Self::default()
    }

    /// Interval-only reach (the paper's REAPER implementation: "for
    /// simplicity, we assume that temperature is not adjustable", §7.1).
    pub fn interval_offset(delta: Ms) -> Self {
        Self::new(delta, 0.0)
    }

    /// Temperature-only reach.
    pub fn temp_offset(delta: f64) -> Self {
        Self::new(Ms::ZERO, delta)
    }

    /// The paper's headline configuration: +250 ms, no temperature change
    /// (§6.1.2: 99 % coverage, <50 % FPR, 2.5× speedup).
    pub fn paper_headline() -> Self {
        Self::interval_offset(Ms::new(250.0))
    }

    /// True if this is the degenerate brute-force point.
    pub fn is_brute_force(&self) -> bool {
        self.delta_interval == Ms::ZERO && self.delta_temp == 0.0
    }

    /// The absolute profiling conditions for a given target.
    pub fn apply_to(&self, target: TargetConditions) -> (Ms, Celsius) {
        (
            target.interval + self.delta_interval,
            target.ambient + self.delta_temp,
        )
    }
}

impl core::fmt::Display for ReachConditions {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "reach(+{}, +{:.1}°C)", self.delta_interval, self.delta_temp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_offsets() {
        let t = TargetConditions::paper_example();
        let r = ReachConditions::new(Ms::new(250.0), 5.0);
        let (i, a) = r.apply_to(t);
        assert_eq!(i, Ms::new(1274.0));
        assert_eq!(a, Celsius::new(50.0));
    }

    #[test]
    fn dram_temp_is_ambient_plus_offset() {
        let t = TargetConditions::paper_example();
        assert_eq!(t.dram_temp(), Celsius::new(60.0));
    }

    #[test]
    fn brute_force_is_identity() {
        let t = TargetConditions::paper_example();
        let r = ReachConditions::brute_force();
        assert!(r.is_brute_force());
        assert_eq!(r.apply_to(t), (t.interval, t.ambient));
    }

    #[test]
    fn constructors() {
        assert_eq!(
            ReachConditions::paper_headline(),
            ReachConditions::interval_offset(Ms::new(250.0))
        );
        let r = ReachConditions::temp_offset(10.0);
        assert_eq!(r.delta_interval, Ms::ZERO);
        assert_eq!(r.delta_temp, 10.0);
        assert!(!r.is_brute_force());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_interval_offset() {
        ReachConditions::new(Ms::new(-1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_temp_offset() {
        ReachConditions::new(Ms::ZERO, -1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn target_rejects_zero_interval() {
        TargetConditions::new(Ms::ZERO, Celsius::new(45.0));
    }

    #[test]
    fn display_formats() {
        let t = TargetConditions::paper_example();
        assert!(t.to_string().contains("1.024s"));
        let r = ReachConditions::new(Ms::new(250.0), 5.0);
        assert!(r.to_string().contains("+5.0°C"));
    }
}
