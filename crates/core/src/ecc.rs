//! The ECC failure model: UBER as a function of RBER (paper Eqs. 2–6) and
//! the tolerable-RBER analysis of Table 1.
//!
//! `UBER = (1/w) Σ_{n=k+1}^{w} C(w,n) Rⁿ (1−R)^{w−n}` — the probability of
//! an uncorrectable (>k-bit) error in a `w`-bit ECC word, normalized per
//! bit, assuming independent, randomly distributed retention failures
//! (shown valid by prior work the paper cites).

use reaper_analysis::special::ln_choose;

/// Standard UBER targets from the paper (§6.2.2).
pub mod uber_targets {
    /// Consumer-grade target: 10⁻¹⁵.
    pub const CONSUMER: f64 = 1e-15;
    /// Enterprise-grade target: 10⁻¹⁷.
    pub const ENTERPRISE: f64 = 1e-17;
}

/// An ECC configuration: a `word_bits`-bit code word able to correct up to
/// `correctable` bit errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EccStrength {
    word_bits: u32,
    correctable: u32,
}

impl EccStrength {
    /// Creates an ECC strength.
    ///
    /// # Panics
    /// Panics if `word_bits == 0` or `correctable >= word_bits`.
    pub fn new(word_bits: u32, correctable: u32) -> Self {
        assert!(word_bits > 0, "ECC word must be nonempty");
        assert!(
            correctable < word_bits,
            "cannot correct as many bits as the word holds"
        );
        Self {
            word_bits,
            correctable,
        }
    }

    /// No ECC: a bare 64-bit data word, any single error is uncorrectable
    /// (paper Eq. 4, k = 0).
    pub fn none() -> Self {
        Self::new(64, 0)
    }

    /// SECDED: single-error-correcting code over a 64-bit data word with 8
    /// check bits (72,64) — paper Eq. 4, k = 1.
    pub fn secded() -> Self {
        Self::new(72, 1)
    }

    /// 2-bit-correcting ECC over a 64-bit data word (80,64 assumed, k = 2).
    pub fn ecc2() -> Self {
        Self::new(80, 2)
    }

    /// The three strengths of Table 1, in column order.
    pub fn table1_strengths() -> [EccStrength; 3] {
        [Self::none(), Self::secded(), Self::ecc2()]
    }

    /// ECC word size in bits.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Number of correctable errors per word (`k`).
    pub fn correctable(&self) -> u32 {
        self.correctable
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match self.correctable {
            0 => "No ECC".to_string(),
            1 => "SECDED".to_string(),
            k => format!("ECC-{k}"),
        }
    }

    /// Uncorrectable bit error rate at raw bit error rate `rber`
    /// (paper Eq. 6).
    ///
    /// Computed in log space; for small `rber` the `n = k+1` term dominates
    /// and the sum is evaluated until terms vanish.
    ///
    /// # Panics
    /// Panics if `rber` is outside `[0, 1]`.
    pub fn uber(&self, rber: f64) -> f64 {
        assert!((0.0..=1.0).contains(&rber), "RBER must be a probability");
        if rber == 0.0 {
            return 0.0;
        }
        // Exact sentinel comparison: ln(1 - rber) below is -inf only at
        // exactly 1.0, which the assert admits as a valid input.
        #[allow(clippy::float_cmp)]
        if rber == 1.0 {
            return 1.0 / self.word_bits as f64;
        }
        let w = u64::from(self.word_bits);
        let ln_r = rber.ln();
        let ln_q = (1.0 - rber).ln_1p_neg();
        let mut total = 0.0_f64;
        for n in (u64::from(self.correctable) + 1)..=w {
            let ln_term = ln_choose(w, n) + n as f64 * ln_r + (w - n) as f64 * ln_q;
            let term = ln_term.exp();
            total += term;
            // Terms decay geometrically by ~rber per step; stop when
            // negligible.
            if term < total * 1e-18 {
                break;
            }
        }
        total / self.word_bits as f64
    }

    /// The largest RBER whose UBER stays at or below `uber_target`
    /// (the "Tolerable RBER" rows of Table 1). Solved by bisection on the
    /// monotone `uber` function.
    ///
    /// # Panics
    /// Panics if `uber_target` is outside `(0, 1)`.
    pub fn tolerable_rber(&self, uber_target: f64) -> f64 {
        assert!(
            uber_target > 0.0 && uber_target < 1.0,
            "UBER target must be in (0, 1)"
        );
        let mut lo = 0.0_f64;
        let mut hi = 1.0_f64;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.uber(mid) <= uber_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Number of tolerable raw bit errors in a DRAM of `dram_bytes` bytes at
    /// the tolerable RBER for `uber_target` (the lower block of Table 1).
    pub fn tolerable_bit_errors(&self, dram_bytes: u64, uber_target: f64) -> f64 {
        self.tolerable_rber(uber_target) * (dram_bytes as f64 * 8.0)
    }
}

impl core::fmt::Display for EccStrength {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} (w={}, k={})", self.label(), self.word_bits, self.correctable)
    }
}

/// `ln(1 - e^x)`-style helper: extension trait computing `ln(q)` for
/// `q = 1 - rber` accurately when `rber` is tiny.
trait Ln1pNeg {
    fn ln_1p_neg(self) -> f64;
}

impl Ln1pNeg for f64 {
    /// For `self = 1 - r`, computes `ln(self)` via `ln_1p(-r)` when `r` is
    /// small enough to lose precision in `1 - r`.
    fn ln_1p_neg(self) -> f64 {
        // self is (1 - rber); recover rber and use ln_1p for accuracy.
        let r = 1.0 - self;
        (-r).ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ecc_uber_is_roughly_rber() {
        let e = EccStrength::none();
        for &r in &[1e-15, 1e-12, 1e-9] {
            let u = e.uber(r);
            assert!((u / r - 1.0).abs() < 1e-6, "r={r} u={u}");
        }
    }

    #[test]
    fn table1_tolerable_rber_shape() {
        // Paper Table 1 (UBER 1e-15): No ECC 1.0e-15, SECDED 3.8e-9,
        // ECC-2 6.9e-7. With the (72,64)/(80,64) word sizes of Eq. 4 the
        // values are the same order of magnitude; the orders must match.
        let none = EccStrength::none().tolerable_rber(1e-15);
        let secded = EccStrength::secded().tolerable_rber(1e-15);
        let ecc2 = EccStrength::ecc2().tolerable_rber(1e-15);
        assert!((none / 1e-15 - 1.0).abs() < 1e-3, "none {none}");
        assert!((1e-9..1e-8).contains(&secded), "secded {secded}");
        assert!((1e-7..1e-5).contains(&ecc2), "ecc2 {ecc2}");
        assert!(none < secded && secded < ecc2);
    }

    #[test]
    fn secded_tolerable_rber_close_to_paper() {
        // (72,64) SECDED: UBER = (1/72) C(72,2) R² ⇒ R = sqrt(72e-15/2556)
        let secded = EccStrength::secded().tolerable_rber(1e-15);
        let analytic = (1e-15 * 72.0 / 2556.0_f64).sqrt();
        assert!((secded / analytic - 1.0).abs() < 1e-3, "{secded} vs {analytic}");
    }

    #[test]
    fn uber_is_monotone_in_rber() {
        let e = EccStrength::secded();
        let mut prev = 0.0;
        for i in 1..12 {
            let r = 10f64.powi(-i);
            let u = e.uber(r);
            if prev > 0.0 {
                assert!(u < prev, "uber({r}) = {u} not < {prev}");
            }
            prev = u;
        }
    }

    #[test]
    fn stronger_ecc_lower_uber() {
        let r = 1e-6;
        let u0 = EccStrength::none().uber(r);
        let u1 = EccStrength::secded().uber(r);
        let u2 = EccStrength::ecc2().uber(r);
        assert!(u0 > u1 && u1 > u2);
    }

    #[test]
    fn uber_edge_cases() {
        let e = EccStrength::secded();
        assert_eq!(e.uber(0.0), 0.0);
        assert!(e.uber(1.0) > 0.0);
    }

    #[test]
    fn tolerable_bit_errors_match_table1_shape() {
        // Paper: 2GB + SECDED tolerates ~65 errors (§6.2.3 uses N = 65).
        let n = EccStrength::secded().tolerable_bit_errors(2 * (1 << 30), 1e-15);
        assert!((20.0..200.0).contains(&n), "n = {n}");
        // No-ECC 512MB: 4.3e-6 errors.
        let n = EccStrength::none().tolerable_bit_errors(512 * (1 << 20), 1e-15);
        assert!((n / 4.3e-6 - 1.0).abs() < 0.05, "n = {n}");
    }

    #[test]
    fn bit_errors_scale_linearly_with_capacity() {
        let e = EccStrength::secded();
        let n1 = e.tolerable_bit_errors(1 << 30, 1e-15);
        let n8 = e.tolerable_bit_errors(8 << 30, 1e-15);
        assert!((n8 / n1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn enterprise_target_is_stricter() {
        let e = EccStrength::secded();
        assert!(
            e.tolerable_rber(uber_targets::ENTERPRISE) < e.tolerable_rber(uber_targets::CONSUMER)
        );
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(EccStrength::none().label(), "No ECC");
        assert_eq!(EccStrength::secded().label(), "SECDED");
        assert_eq!(EccStrength::ecc2().label(), "ECC-2");
        assert!(EccStrength::secded().to_string().contains("w=72"));
        assert_eq!(EccStrength::table1_strengths().len(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot correct")]
    fn rejects_degenerate_strength() {
        EccStrength::new(8, 8);
    }
}
