//! **REAPER** — the Reach Profiler: the primary contribution of
//! *"The Reach Profiler (REAPER): Enabling the Mitigation of DRAM Retention
//! Failures via Profiling at Aggressive Conditions"* (ISCA 2017),
//! reproduced in Rust.
//!
//! DRAM cells must be refreshed every 64 ms only because a tiny worst-case
//! cell population requires it. Extending the refresh interval to a *target*
//! needs the set of cells that fail there — and finding that set is the
//! problem this crate solves. The key idea of **reach profiling** is to
//! profile at *reach conditions* (a longer refresh interval and/or higher
//! temperature than the target) where every failing cell is far more likely
//! to fail, trading a bounded false-positive rate for high coverage and a
//! 2.5× shorter profiling runtime.
//!
//! What lives here:
//!
//! * [`profile`] — failure profiles (sets of failing cells) and their
//!   algebra,
//! * [`conditions`] — target / reach condition types,
//! * [`profiler`] — Algorithm 1 (brute-force profiling) and the reach
//!   profiler built on the `reaper-softmc` harness,
//! * [`metrics`] — the paper's three key metrics: coverage, false positive
//!   rate, runtime (§1, §6.1),
//! * [`ecc`] — the UBER/RBER model (Eqs. 2–6) behind Table 1,
//! * [`longevity`] — profile longevity `T = (N − C)/A` (Eq. 7),
//! * [`overhead`] — the end-to-end profiling overhead model (Eqs. 8–9)
//!   behind Figs. 11–13,
//! * [`tradeoff`] — the coverage/FPR/runtime tradeoff-space exploration of
//!   Figs. 9–10 and reach-condition selection (§6.1.2),
//! * [`planner`] — per-chip characterization and analytic reach-condition
//!   recommendation (the §6.3 program),
//! * [`online`] — the long-running online profiling controller (§7.1),
//! * [`request`] — the canonical, hashable profiling-job form behind
//!   `reaper-serve`'s content-addressed result cache.
//!
//! # Example: profile a chip at reach conditions
//!
//! ```
//! use reaper_core::conditions::{ReachConditions, TargetConditions};
//! use reaper_core::profiler::{PatternSet, Profiler};
//! use reaper_dram_model::{Celsius, Ms, Vendor};
//! use reaper_retention::{RetentionConfig, SimulatedChip};
//! use reaper_softmc::TestHarness;
//!
//! let chip = SimulatedChip::new(
//!     RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 32),
//!     1,
//! );
//! let mut harness = TestHarness::new(chip, Celsius::new(45.0), 1);
//!
//! let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
//! // The paper's headline configuration: profile 250ms above target.
//! let reach = ReachConditions::interval_offset(Ms::new(250.0));
//!
//! let run = Profiler::reach(target, reach, 4, PatternSet::Standard)
//!     .run(&mut harness);
//! println!("found {} cells in {}", run.profile.len(), run.runtime);
//! ```

// Deny-wall escapes (DESIGN.md §"Static analysis & determinism
// invariants"): `reaper-lint` enforces the finer-grained forms of these
// lints — P1 requires `invariant: `-prefixed expect messages and audits
// indexing in the hot-path crates, C1 bans bare casts there — with
// per-site `// lint: allow` markers. Clippy's blanket versions are
// allowed at the crate root so `-D warnings` stays green without
// annotating every audited site twice.
#![allow(clippy::expect_used, clippy::indexing_slicing, clippy::cast_possible_truncation)]
// Tests additionally assert exact float equality on purpose — bit-identical
// outputs are the determinism contract, and clippy.toml has no in-tests
// knob for these lints.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod conditions;
pub mod ecc;
pub mod longevity;
pub mod metrics;
pub mod online;
pub mod overhead;
pub mod planner;
pub mod profile;
pub mod profiler;
pub mod request;
pub mod tradeoff;

pub use conditions::{ReachConditions, TargetConditions};
pub use ecc::EccStrength;
pub use metrics::ProfileMetrics;
pub use profile::{FailureProfile, ProfileCodecError};
// The streaming-delta types appear in `FailureProfile`'s API
// (`delta_to` / `apply_delta`), so re-export them at the root alongside
// the profile they act on.
pub use reaper_retention::delta::{DeltaApplyError, DeltaCodecError, ProfileDelta};
pub use profiler::{CoverageTracker, IterationStats, PatternSet, Profiler, ProfilingRun};
pub use request::{PatternSpec, ProfilingOutcome, ProfilingRequest, RequestError, TRUTH_MIN_PROB};
