//! Profile longevity: how long a retention profile stays valid (paper
//! §6.2.3, Eq. 7).
//!
//! `T = (N − C) / A` where `N` is the tolerable number of failures (from the
//! ECC budget, Table 1), `C` the failures missed by imperfect coverage, and
//! `A` the VRT new-failure accumulation rate (Fig. 4).

use reaper_dram_model::{Celsius, Ms};
use reaper_retention::RetentionConfig;

use crate::conditions::TargetConditions;
use crate::ecc::EccStrength;

/// Inputs to the Eq. 7 longevity model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LongevityModel {
    /// Tolerable number of raw failures `N` (ECC budget).
    pub tolerable_failures: f64,
    /// Failures missed by profiling, `C = (1 − coverage) · |failing set|`.
    pub missed_failures: f64,
    /// New-failure accumulation rate `A` in cells/hour.
    pub accumulation_per_hour: f64,
}

impl LongevityModel {
    /// Time before reprofiling is required: `T = (N − C)/A`.
    ///
    /// Returns `None` if the profile is dead on arrival (`C ≥ N`) — the
    /// missed failures already exceed the ECC budget.
    ///
    /// # Panics
    /// Panics if `accumulation_per_hour` is not positive.
    pub fn longevity(&self) -> Option<Ms> {
        assert!(
            self.accumulation_per_hour > 0.0,
            "accumulation rate must be positive"
        );
        let headroom = self.tolerable_failures - self.missed_failures;
        if headroom <= 0.0 {
            return None;
        }
        Some(Ms::from_hours(headroom / self.accumulation_per_hour))
    }

    /// Builds the model for a target operating point from first principles:
    /// the ECC budget for `dram_bytes` at `uber_target`, the expected
    /// failing-cell count and VRT accumulation rate from the (calibrated)
    /// retention model, and a profiling `coverage`.
    ///
    /// This is exactly the §6.2.3 worked example when called with 2 GB,
    /// SECDED, 1024 ms @ 45 °C ambient, and 99 % coverage.
    ///
    /// # Panics
    /// Panics if `coverage` is outside `[0, 1]`.
    pub fn for_system(
        ecc: EccStrength,
        dram_bytes: u64,
        uber_target: f64,
        retention: &RetentionConfig,
        target: TargetConditions,
        coverage: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&coverage), "coverage must be in [0,1]");
        let tolerable = ecc.tolerable_bit_errors(dram_bytes, uber_target);
        let dram_temp = target.dram_temp();
        let capacity_scale =
            (dram_bytes as f64 * 8.0) / retention.represented_bits as f64;
        let failing =
            retention.ber_at(target.interval.as_secs()) * dram_bytes as f64 * 8.0
                * temp_count_scale(retention, dram_temp);
        let accumulation = retention
            .vrt_arrival_rate_per_hour(target.interval.as_secs(), dram_temp)
            * capacity_scale;
        Self {
            tolerable_failures: tolerable,
            missed_failures: (1.0 - coverage) * failing,
            accumulation_per_hour: accumulation,
        }
    }
}

/// Eq. 1 count-scale factor for a DRAM temperature relative to the
/// calibration reference.
fn temp_count_scale(cfg: &RetentionConfig, dram_temp: Celsius) -> f64 {
    cfg.vendor.failure_rate_scale(dram_temp - cfg.ref_temp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reaper_dram_model::Vendor;

    #[test]
    fn paper_worked_example_2_3_days() {
        // §6.2.3: 2GB, SECDED (N = 65), 1024ms @ 45°C, 99% coverage,
        // 2464 failures ⇒ C ≈ 25, A = 0.73/hour ⇒ T ≈ 2.3 days.
        let m = LongevityModel {
            tolerable_failures: 65.0,
            missed_failures: 25.0,
            accumulation_per_hour: 0.73,
        };
        let t = m.longevity().unwrap();
        assert!((t.as_days() - 2.28).abs() < 0.1, "T = {} days", t.as_days());
    }

    #[test]
    fn for_system_reproduces_worked_example() {
        let cfg = RetentionConfig::for_vendor(Vendor::B);
        let m = LongevityModel::for_system(
            EccStrength::secded(),
            2 * (1 << 30),
            1e-15,
            &cfg,
            TargetConditions::paper_example(),
            0.99,
        );
        // N ≈ 65 in the paper (its Table 1 numbers imply a 136-bit ECC word;
        // our (72,64) SECDED gives N ≈ 91 — same order, same conclusions).
        assert!((50.0..110.0).contains(&m.tolerable_failures), "N = {}", m.tolerable_failures);
        assert!((m.missed_failures - 24.6).abs() < 3.0, "C = {}", m.missed_failures);
        assert!((m.accumulation_per_hour - 0.73).abs() < 0.05, "A = {}", m.accumulation_per_hour);
        let t = m.longevity().unwrap();
        assert!((1.0..5.0).contains(&t.as_days()), "T = {} days", t.as_days());
    }

    #[test]
    fn dead_on_arrival_when_coverage_too_low() {
        let m = LongevityModel {
            tolerable_failures: 65.0,
            missed_failures: 100.0,
            accumulation_per_hour: 0.73,
        };
        assert_eq!(m.longevity(), None);
    }

    #[test]
    fn longevity_shrinks_at_longer_intervals() {
        let cfg = RetentionConfig::for_vendor(Vendor::B);
        let t1 = LongevityModel::for_system(
            EccStrength::ecc2(),
            2 * (1 << 30),
            1e-15,
            &cfg,
            TargetConditions::new(Ms::new(512.0), Celsius::new(45.0)),
            1.0,
        )
        .longevity()
        .unwrap();
        let t2 = LongevityModel::for_system(
            EccStrength::ecc2(),
            2 * (1 << 30),
            1e-15,
            &cfg,
            TargetConditions::new(Ms::new(1536.0), Celsius::new(45.0)),
            1.0,
        )
        .longevity()
        .unwrap();
        assert!(
            t2.as_hours() < t1.as_hours() / 10.0,
            "t1 = {}h, t2 = {}h",
            t1.as_hours(),
            t2.as_hours()
        );
    }

    #[test]
    fn hotter_targets_shorten_longevity() {
        let cfg = RetentionConfig::for_vendor(Vendor::B);
        let cool = LongevityModel::for_system(
            EccStrength::ecc2(),
            2 * (1 << 30),
            1e-15,
            &cfg,
            TargetConditions::new(Ms::new(512.0), Celsius::new(40.0)),
            1.0,
        )
        .longevity()
        .unwrap();
        let hot = LongevityModel::for_system(
            EccStrength::ecc2(),
            2 * (1 << 30),
            1e-15,
            &cfg,
            TargetConditions::new(Ms::new(512.0), Celsius::new(50.0)),
            1.0,
        )
        .longevity()
        .unwrap();
        assert!(hot < cool);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_accumulation() {
        LongevityModel {
            tolerable_failures: 1.0,
            missed_failures: 0.0,
            accumulation_per_hour: 0.0,
        }
        .longevity();
    }
}
