//! The paper's three key profiling metrics: **coverage**, **false positive
//! rate**, and **runtime** (§1, §6.1).

use reaper_dram_model::Ms;

use crate::profile::FailureProfile;

/// Coverage / false-positive evaluation of a profile against a ground-truth
/// failing set.
///
/// * *Coverage* = found ∩ truth / |truth| — "the ratio of the number of
///   failing cells discovered by the profiling mechanism to the number of
///   all possible failing cells at the target refresh interval".
/// * *False positive rate* = |found \ truth| / |found| — the fraction of the
///   profile that "fails during profiling but never during actual operation
///   at the target refresh interval".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileMetrics {
    /// Fraction of the ground truth the profile covers, in `[0, 1]`.
    pub coverage: f64,
    /// Fraction of the profile that is not in the ground truth, in `[0, 1]`.
    pub false_positive_rate: f64,
    /// |found ∩ truth|.
    pub true_positives: usize,
    /// |found \ truth|.
    pub false_positives: usize,
    /// |truth \ found| — failures the profile misses.
    pub missed: usize,
    /// Profiling runtime, if the caller supplied one.
    pub runtime: Option<Ms>,
}

impl ProfileMetrics {
    /// Evaluates `found` against `truth`.
    ///
    /// Degenerate cases: an empty truth set yields coverage 1.0 (there was
    /// nothing to find); an empty found set yields FPR 0.0.
    pub fn evaluate(found: &FailureProfile, truth: &FailureProfile) -> Self {
        let true_positives = found.intersection_count(truth);
        let false_positives = found.len() - true_positives;
        let missed = truth.len() - true_positives;
        let coverage = if truth.is_empty() {
            1.0
        } else {
            true_positives as f64 / truth.len() as f64
        };
        let false_positive_rate = if found.is_empty() {
            0.0
        } else {
            false_positives as f64 / found.len() as f64
        };
        Self {
            coverage,
            false_positive_rate,
            true_positives,
            false_positives,
            missed,
            runtime: None,
        }
    }

    /// Attaches a profiling runtime to the metrics.
    pub fn with_runtime(mut self, runtime: Ms) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// Number of cells the profile identified in total.
    pub fn found(&self) -> usize {
        self.true_positives + self.false_positives
    }
}

impl core::fmt::Display for ProfileMetrics {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "coverage {:.2}% | FPR {:.2}% | TP {} FP {} missed {}",
            self.coverage * 100.0,
            self.false_positive_rate * 100.0,
            self.true_positives,
            self.false_positives,
            self.missed
        )?;
        if let Some(rt) = self.runtime {
            write!(f, " | runtime {rt}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_profile() {
        let truth = FailureProfile::from_cells([1, 2, 3]);
        let m = ProfileMetrics::evaluate(&truth, &truth);
        assert_eq!(m.coverage, 1.0);
        assert_eq!(m.false_positive_rate, 0.0);
        assert_eq!(m.true_positives, 3);
        assert_eq!(m.missed, 0);
        assert_eq!(m.found(), 3);
    }

    #[test]
    fn partial_coverage_with_false_positives() {
        let truth = FailureProfile::from_cells([1, 2, 3, 4]);
        let found = FailureProfile::from_cells([3, 4, 5, 6]);
        let m = ProfileMetrics::evaluate(&found, &truth);
        assert_eq!(m.coverage, 0.5);
        assert_eq!(m.false_positive_rate, 0.5);
        assert_eq!(m.true_positives, 2);
        assert_eq!(m.false_positives, 2);
        assert_eq!(m.missed, 2);
    }

    #[test]
    fn empty_truth_is_full_coverage() {
        let m = ProfileMetrics::evaluate(
            &FailureProfile::from_cells([1]),
            &FailureProfile::new(),
        );
        assert_eq!(m.coverage, 1.0);
        assert_eq!(m.false_positive_rate, 1.0);
    }

    #[test]
    fn empty_found_is_zero_fpr() {
        let m = ProfileMetrics::evaluate(
            &FailureProfile::new(),
            &FailureProfile::from_cells([1, 2]),
        );
        assert_eq!(m.coverage, 0.0);
        assert_eq!(m.false_positive_rate, 0.0);
        assert_eq!(m.missed, 2);
    }

    #[test]
    fn runtime_attachment_and_display() {
        let truth = FailureProfile::from_cells([1]);
        let m = ProfileMetrics::evaluate(&truth, &truth).with_runtime(Ms::new(1500.0));
        assert_eq!(m.runtime, Some(Ms::new(1500.0)));
        let s = m.to_string();
        assert!(s.contains("coverage 100.00%"));
        assert!(s.contains("runtime 1.500s"));
    }
}
