//! The online profiling controller: REAPER as a long-running system
//! service (paper §7.1).
//!
//! "REAPER implements reach profiling in firmware running directly in the
//! memory controller. Each time the set of retention failures must be
//! updated, profiling is initiated by gaining exclusive access to DRAM."
//! This module packages that loop: it owns the reach configuration,
//! schedules rounds on the Eq. 7 longevity cadence, and accounts the
//! cumulative overhead the system pays.

use reaper_dram_model::Ms;
use reaper_softmc::TestHarness;

use crate::conditions::{ReachConditions, TargetConditions};
use crate::longevity::LongevityModel;
use crate::profile::FailureProfile;
use crate::profiler::{PatternSet, Profiler, ProfilingRun};

/// Configuration of the online controller.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineConfig {
    /// The operating point the system runs at.
    pub target: TargetConditions,
    /// Reach offsets each round profiles at.
    pub reach: ReachConditions,
    /// Iterations per round.
    pub iterations: u32,
    /// Pattern set per iteration.
    pub patterns: PatternSet,
    /// Longevity inputs (N, C, A) fixing the reprofiling cadence.
    pub longevity: LongevityModel,
}

/// Outcome of one controller round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Round number (1-based).
    pub round: u64,
    /// The round's profiling result.
    pub run: ProfilingRun,
    /// Cells newly added to the working profile this round.
    pub newly_found: usize,
    /// Cells in the previous profile not re-observed this round (VRT
    /// departures and low-probability stragglers).
    pub not_reobserved: usize,
    /// When the next round is due.
    pub next_due: Ms,
}

/// A long-running online profiling controller.
#[derive(Debug, Clone)]
pub struct OnlineController {
    config: OnlineConfig,
    profile: FailureProfile,
    rounds: u64,
    profiling_time: Ms,
    next_due: Ms,
    cadence: Ms,
}

impl OnlineController {
    /// Creates a controller; the first round is due immediately.
    ///
    /// # Panics
    /// Panics if the longevity model is not viable (missed failures exceed
    /// the ECC budget) — such a system must not extend its refresh interval.
    pub fn new(config: OnlineConfig) -> Self {
        let cadence = config
            .longevity
            .longevity()
            // lint: allow(panic) documented `# Panics` contract of the constructor
            .expect("longevity model must be viable for online operation");
        Self {
            config,
            profile: FailureProfile::new(),
            rounds: 0,
            profiling_time: Ms::ZERO,
            next_due: Ms::ZERO,
            cadence,
        }
    }

    /// The reprofiling cadence (Eq. 7 longevity).
    pub fn cadence(&self) -> Ms {
        self.cadence
    }

    /// Whether a round is due at harness time `now`.
    pub fn is_due(&self, now: Ms) -> bool {
        now >= self.next_due
    }

    /// The current working failure profile.
    pub fn profile(&self) -> &FailureProfile {
        &self.profile
    }

    /// Rounds executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total simulated time spent profiling.
    pub fn profiling_time(&self) -> Ms {
        self.profiling_time
    }

    /// Fraction of harness-elapsed time spent profiling so far (the Eq. 8
    /// overhead the system actually paid).
    pub fn overhead_fraction(&self, harness: &TestHarness) -> f64 {
        let elapsed = harness.elapsed();
        if elapsed.is_positive() {
            self.profiling_time / elapsed
        } else {
            0.0
        }
    }

    /// Runs one profiling round now (regardless of due time), replaces the
    /// working profile, and schedules the next round one cadence after the
    /// round's completion.
    pub fn run_round(&mut self, harness: &mut TestHarness) -> RoundReport {
        let profiler = Profiler::reach(
            self.config.target,
            self.config.reach,
            self.config.iterations,
            self.config.patterns.clone(),
        );
        let run = profiler.run(harness);
        self.rounds += 1;
        self.profiling_time += run.runtime;

        let newly_found = run.profile.difference_count(&self.profile);
        let not_reobserved = self.profile.difference_count(&run.profile);
        self.profile = run.profile.clone();
        self.next_due = harness.elapsed() + self.cadence;

        RoundReport {
            round: self.rounds,
            run,
            newly_found,
            not_reobserved,
            next_due: self.next_due,
        }
    }

    /// Convenience driver: idles the harness to the next due time, then
    /// runs the round. Models the steady-state service loop.
    pub fn idle_and_run(&mut self, harness: &mut TestHarness) -> RoundReport {
        let now = harness.elapsed();
        if self.next_due > now {
            harness.idle(self.next_due - now);
        }
        self.run_round(harness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reaper_dram_model::{Celsius, Vendor};
    use reaper_retention::{RetentionConfig, SimulatedChip};

    fn controller_and_harness() -> (OnlineController, TestHarness) {
        let retention = RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 16);
        let chip = SimulatedChip::new(retention.clone(), 0x041);
        let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
        let harness = TestHarness::new(chip, target.ambient, 3);
        let longevity = LongevityModel::for_system(
            crate::ecc::EccStrength::secded(),
            retention.represented_bits / 8,
            1e-15,
            &retention,
            target,
            0.99,
        );
        let controller = OnlineController::new(OnlineConfig {
            target,
            reach: ReachConditions::paper_headline(),
            iterations: 3,
            patterns: PatternSet::Standard,
            longevity,
        });
        (controller, harness)
    }

    #[test]
    fn rounds_follow_the_cadence() {
        let (mut c, mut h) = controller_and_harness();
        assert!(c.is_due(h.elapsed()));
        let r1 = c.idle_and_run(&mut h);
        assert_eq!(r1.round, 1);
        assert!(!c.is_due(h.elapsed()));
        assert_eq!(r1.next_due, h.elapsed() + c.cadence());
        let r2 = c.idle_and_run(&mut h);
        assert_eq!(r2.round, 2);
        assert!(h.elapsed() >= r1.next_due);
        assert!(!c.profile().is_empty());
    }

    #[test]
    fn overhead_fraction_tracks_round_cost_over_cadence() {
        let (mut c, mut h) = controller_and_harness();
        for _ in 0..3 {
            let _ = c.idle_and_run(&mut h);
        }
        let frac = c.overhead_fraction(&h);
        // Round time ~ 36 patterns * 1.5s ≈ 55s vs multi-day cadence.
        assert!(frac > 0.0);
        assert!(frac < 0.01, "overhead {frac}");
        assert!(c.profiling_time().is_positive());
        assert_eq!(c.rounds(), 3);
    }

    #[test]
    fn profile_churn_is_reported() {
        let (mut c, mut h) = controller_and_harness();
        let _ = c.idle_and_run(&mut h);
        let r2 = c.idle_and_run(&mut h);
        // Across a multi-day idle, VRT arrivals and probabilistic stragglers
        // produce churn in at least one direction.
        assert!(
            r2.newly_found > 0 || r2.not_reobserved > 0,
            "expected profile churn: {r2:?}"
        );
    }
}
