//! End-to-end profiling overhead model (paper §7.2–7.3, Eqs. 8–9).
//!
//! `T_profile = (T_REFI + T_wr + T_rd) · N_dp · N_it` (Eq. 9), with the
//! read/write pass time measured at 125 ms per direction for 2 GB and scaled
//! linearly with module capacity (§7.3.1 footnote). System throughput under
//! online profiling follows `IPC_real = IPC_ideal · (1 − overhead)` (Eq. 8),
//! pessimistically assuming a full system pause during profiling.

use reaper_dram_model::Ms;

/// Measured pass time per direction for the characterized 2 GB module.
const PASS_MS_PER_2GB: f64 = 125.0;
const BYTES_2GB: f64 = 2.0 * (1u64 << 30) as f64;

/// The Eq. 9 profiling-round runtime model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Refresh interval used while profiling (`T_REFI` in Eq. 9) — the
    /// target interval for brute force, target + reach offset for REAPER.
    pub profiling_interval: Ms,
    /// Data patterns per iteration (`N_dp`; the paper's §7.3.1 examples use
    /// 6).
    pub patterns: u32,
    /// Profiling iterations per round (`N_it`).
    pub iterations: u32,
    /// Total module capacity in bytes (32 chips × chip density in the
    /// paper's sweep).
    pub module_bytes: u64,
}

impl OverheadModel {
    /// Creates a model.
    ///
    /// # Panics
    /// Panics if any count is zero or the interval is not positive.
    pub fn new(profiling_interval: Ms, patterns: u32, iterations: u32, module_bytes: u64) -> Self {
        assert!(profiling_interval.is_positive(), "interval must be positive");
        assert!(patterns > 0, "need at least one pattern");
        assert!(iterations > 0, "need at least one iteration");
        assert!(module_bytes > 0, "module must be nonempty");
        Self {
            profiling_interval,
            patterns,
            iterations,
            module_bytes,
        }
    }

    /// The paper's Fig. 11/12 configuration: 16 iterations, 6 data patterns,
    /// a module of 32 chips of `chip_gbit` each, profiling at `interval`.
    pub fn paper_fig11(interval: Ms, chip_gbit: u32) -> Self {
        Self::new(interval, 6, 16, module_bytes(chip_gbit))
    }

    /// Time to write or read one full pass over the module (each direction).
    pub fn pass_time_each(&self) -> Ms {
        Ms::new(PASS_MS_PER_2GB * self.module_bytes as f64 / BYTES_2GB)
    }

    /// One full profiling round, Eq. 9:
    /// `(T_REFI + T_wr + T_rd) · N_dp · N_it`.
    pub fn round_time(&self) -> Ms {
        (self.profiling_interval + self.pass_time_each() * 2.0)
            * (self.patterns as f64 * self.iterations as f64)
    }

    /// The same round under reach profiling's runtime speedup (the paper
    /// plots REAPER at its measured 2.5× over brute force).
    pub fn round_time_with_speedup(&self, speedup: f64) -> Ms {
        assert!(speedup > 0.0, "speedup must be positive");
        self.round_time() / speedup
    }

    /// Fraction of total system time spent profiling when a round runs every
    /// `online_interval` (Fig. 11's y-axis), clamped to 1.
    ///
    /// # Panics
    /// Panics if `online_interval` is not positive.
    pub fn time_fraction(&self, online_interval: Ms) -> f64 {
        assert!(online_interval.is_positive(), "online interval must be positive");
        (self.round_time() / online_interval).min(1.0)
    }

    /// Like [`OverheadModel::time_fraction`] with a runtime speedup applied
    /// (REAPER's bars in Fig. 11).
    pub fn time_fraction_with_speedup(&self, online_interval: Ms, speedup: f64) -> f64 {
        (self.round_time_with_speedup(speedup) / online_interval).min(1.0)
    }
}

/// Eq. 8: real system throughput under a profiling overhead fraction.
///
/// # Panics
/// Panics if `overhead_fraction` is outside `[0, 1]`.
pub fn ipc_with_overhead(ipc_ideal: f64, overhead_fraction: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&overhead_fraction),
        "overhead fraction must be in [0, 1]"
    );
    ipc_ideal * (1.0 - overhead_fraction)
}

/// Module capacity in bytes for the paper's 32-chip modules of `chip_gbit`
/// chips.
pub fn module_bytes(chip_gbit: u32) -> u64 {
    32 * (u64::from(chip_gbit) << 30) / 8
}

/// The chip densities swept in Figs. 11–13.
pub const PAPER_CHIP_SIZES_GBIT: [u32; 4] = [8, 16, 32, 64];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_3_minutes() {
        // §7.3.1: 32 × 8Gb chips, tREFI = 1024ms, Ndp = 6, Nit = 6
        // ⇒ T_profile ≈ 3.01 minutes.
        let m = OverheadModel::new(Ms::new(1024.0), 6, 6, module_bytes(8));
        let minutes = m.round_time().as_secs() / 60.0;
        assert!((minutes - 3.01).abs() < 0.05, "T = {minutes} min");
    }

    #[test]
    fn paper_example_64gb_chips() {
        // §7.3.1: 32 × 64Gb ⇒ ≈ 19.8 minutes.
        let m = OverheadModel::new(Ms::new(1024.0), 6, 6, module_bytes(64));
        let minutes = m.round_time().as_secs() / 60.0;
        assert!((minutes - 19.8).abs() < 0.3, "T = {minutes} min");
    }

    #[test]
    fn fig11_brute_force_point() {
        // §7.3.1: 4-hour profiling interval, 64Gb chips ⇒ 22.7% with brute
        // force, 9.1% with REAPER (2.5×).
        let m = OverheadModel::paper_fig11(Ms::new(1024.0), 64);
        let brute = m.time_fraction(Ms::from_hours(4.0));
        assert!((brute - 0.227).abs() < 0.02, "brute {brute}");
        let reaper = m.time_fraction_with_speedup(Ms::from_hours(4.0), 2.5);
        assert!((reaper - 0.091).abs() < 0.01, "reaper {reaper}");
    }

    #[test]
    fn pass_time_scales_with_module() {
        let m8 = OverheadModel::paper_fig11(Ms::new(1024.0), 8);
        // 32 x 8Gb = 32GB = 16 x 2GB ⇒ 2s per direction.
        assert_eq!(m8.pass_time_each(), Ms::from_secs(2.0));
        let m64 = OverheadModel::paper_fig11(Ms::new(1024.0), 64);
        assert_eq!(m64.pass_time_each(), Ms::from_secs(16.0));
    }

    #[test]
    fn fraction_clamps_at_one() {
        let m = OverheadModel::paper_fig11(Ms::new(4096.0), 64);
        assert_eq!(m.time_fraction(Ms::from_secs(1.0)), 1.0);
    }

    #[test]
    fn speedup_divides_round_time() {
        let m = OverheadModel::paper_fig11(Ms::new(1024.0), 8);
        let full = m.round_time();
        let fast = m.round_time_with_speedup(2.5);
        assert!((full / fast - 2.5).abs() < 1e-12);
    }

    #[test]
    fn eq8_ipc_model() {
        assert_eq!(ipc_with_overhead(2.0, 0.25), 1.5);
        assert_eq!(ipc_with_overhead(2.0, 0.0), 2.0);
        assert_eq!(ipc_with_overhead(2.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "overhead fraction")]
    fn eq8_rejects_bad_fraction() {
        ipc_with_overhead(1.0, 1.5);
    }

    #[test]
    fn module_bytes_math() {
        assert_eq!(module_bytes(8), 32 * (1u64 << 30)); // 32 GB
        assert_eq!(module_bytes(64), 256 * (1u64 << 30)); // 256 GB
        assert_eq!(PAPER_CHIP_SIZES_GBIT, [8, 16, 32, 64]);
    }

    #[test]
    #[should_panic(expected = "at least one pattern")]
    fn rejects_zero_patterns() {
        OverheadModel::new(Ms::new(64.0), 0, 1, 1);
    }
}
