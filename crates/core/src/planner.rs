//! Chip characterization and reach-condition planning (paper §6.3).
//!
//! §6.3 argues that choosing good reach conditions for a *real* system
//! needs per-chip characterization data — ideally shipped by the vendor in
//! the SPD, otherwise measured from "a few sample points around the
//! tradeoff space ... in conjunction with the general trends". This module
//! implements that program:
//!
//! * [`ChipCharacterization::measure`] profiles a chip at a few intervals
//!   and temperatures and fits the BER power law and the Eq. 1 temperature
//!   coefficient — the data sheet the paper wishes vendors shipped,
//! * [`ChipCharacterization::recommend_reach`] turns a false-positive
//!   budget into concrete reach conditions analytically, without a full
//!   Fig. 9 grid exploration.

use reaper_analysis::fit::{LinearFit, PowerLawFit};
use reaper_dram_model::Ms;
use reaper_softmc::TestHarness;

use crate::conditions::{ReachConditions, TargetConditions};
use crate::profiler::{PatternSet, Profiler};

/// Options for a characterization pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CharacterizeOptions {
    /// Profiling iterations per sample point (small: this is meant to be a
    /// cheap pass).
    pub iterations: u32,
    /// Sample refresh intervals (ms). Must be at least two, increasing.
    pub intervals_ms: [f64; 3],
    /// Ambient temperature offsets (°C) sampled above the base ambient for
    /// the temperature-coefficient fit. Must stay within the chamber range.
    pub temp_offsets: [f64; 2],
}

impl Default for CharacterizeOptions {
    fn default() -> Self {
        Self {
            iterations: 4,
            intervals_ms: [768.0, 1536.0, 3072.0],
            temp_offsets: [0.0, 8.0],
        }
    }
}

/// A fitted per-chip retention characterization — the §6.3 "detailed chip
/// characterization data", measured rather than vendor-provided.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipCharacterization {
    /// Fitted failure-count power law `count = a · t^b` (t in seconds).
    pub ber_fit: PowerLawFit,
    /// Fitted Eq. 1 exponential temperature coefficient `k` (per °C).
    pub temp_coefficient: f64,
    /// Raw sample points: (interval seconds, failures observed).
    pub samples: Vec<(f64, usize)>,
    /// Simulated time the characterization pass consumed.
    pub runtime: Ms,
}

impl ChipCharacterization {
    /// Measures a characterization from a few sample points (cheap compared
    /// to a full Fig. 9 exploration).
    ///
    /// # Panics
    /// Panics if the sampled failure counts are all zero (chip capacity too
    /// small for the sampled intervals) or options are degenerate.
    pub fn measure(harness: &mut TestHarness, opts: CharacterizeOptions) -> Self {
        assert!(opts.iterations > 0, "need at least one iteration");
        assert!(
            opts.intervals_ms.len() >= 2,
            "need at least two sample intervals"
        );
        assert!(
            // lint: allow(panic) windows(2) yields exactly-2-element slices
            opts.intervals_ms.windows(2).all(|w| w[0] < w[1]),
            "sample intervals must increase"
        );
        let start = harness.elapsed();
        let base_ambient = harness.ambient_setpoint();

        // Interval sweep at base temperature.
        let mut samples = Vec::new();
        for &t_ms in &opts.intervals_ms {
            let target = TargetConditions::new(Ms::new(t_ms), base_ambient);
            let run =
                Profiler::brute_force(target, opts.iterations, PatternSet::Standard).run(harness);
            samples.push((t_ms / 1e3, run.profile.len()));
        }
        assert!(
            samples.iter().any(|&(_, n)| n > 0),
            "no failures observed; chip capacity too small for characterization"
        );
        let fit_points: Vec<(f64, f64)> = samples
            .iter()
            .filter(|&&(_, n)| n > 0)
            .map(|&(t, n)| (t, n as f64))
            .collect();
        let ber_fit = PowerLawFit::fit(&fit_points)
            .expect("invariant: fit_points is non-empty and filtered to positive counts");

        // Temperature sweep at the middle interval.
        // lint: allow(panic) length asserted >= 2 at function entry
        let mid = Ms::new(opts.intervals_ms[1]);
        let mut temp_points = Vec::new();
        for &dt in &opts.temp_offsets {
            let ambient = base_ambient + dt;
            let target = TargetConditions::new(mid, ambient);
            let run =
                Profiler::reach(target, ReachConditions::brute_force(), opts.iterations, PatternSet::Standard)
                    .run(harness);
            if !run.profile.is_empty() {
                temp_points.push((dt, (run.profile.len() as f64).ln()));
            }
        }
        if harness.ambient_setpoint() != base_ambient {
            harness.set_ambient(base_ambient);
        }
        let temp_coefficient = if temp_points.len() >= 2 {
            LinearFit::fit(&temp_points).map(|f| f.slope).unwrap_or(0.22)
        } else {
            // Fall back to the population trend the paper reports (Eq. 1).
            0.22
        };

        Self {
            ber_fit,
            temp_coefficient,
            samples,
            runtime: harness.elapsed() - start,
        }
    }

    /// Expected failure count at refresh interval `t` (seconds) from the
    /// fitted power law.
    pub fn expected_failures(&self, t_secs: f64) -> f64 {
        self.ber_fit.eval(t_secs)
    }

    /// Predicted false-positive rate of profiling at `target + delta`
    /// relative to operating at `target`: with counts `N(t) = a·t^b`,
    /// `FPR ≈ 1 − N(t)/N(t + Δ)`.
    pub fn predicted_fpr(&self, target: Ms, delta: Ms) -> f64 {
        let n_target = self.expected_failures(target.as_secs());
        let n_reach = self.expected_failures((target + delta).as_secs());
        (1.0 - n_target / n_reach).clamp(0.0, 1.0)
    }

    /// The interval offset whose count inflation matches a `delta_t`-degree
    /// temperature reach (`e^{kΔT} = ((t+Δ)/t)^b`), i.e. the paper's
    /// interval↔temperature equivalence (§5.5) computed from this chip's
    /// own fits.
    pub fn interval_equivalent_of_temp(&self, target: Ms, delta_t: f64) -> Ms {
        let scale = (self.temp_coefficient * delta_t / self.ber_fit.b).exp();
        Ms::from_secs(target.as_secs() * (scale - 1.0))
    }

    /// Recommends the largest interval-only reach offset whose predicted
    /// false-positive rate stays within `max_fpr` (the §6.1.2 selection
    /// rule: "as high a refresh interval/temperature as possible that keeps
    /// the resulting amount of false positives tractable").
    ///
    /// Returns `None` if even the smallest step exceeds the budget.
    ///
    /// # Panics
    /// Panics if `max_fpr` is outside (0, 1).
    pub fn recommend_reach(&self, target: Ms, max_fpr: f64) -> Option<ReachConditions> {
        assert!(max_fpr > 0.0 && max_fpr < 1.0, "max_fpr must be in (0, 1)");
        // Closed form: FPR ≤ f  ⇔  (1 + Δ/t)^b ≤ 1/(1−f).
        let ratio = (1.0 / (1.0 - max_fpr)).powf(1.0 / self.ber_fit.b);
        let delta_secs = target.as_secs() * (ratio - 1.0);
        if delta_secs < 1e-3 {
            return None;
        }
        Some(ReachConditions::interval_offset(Ms::from_secs(delta_secs)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reaper_dram_model::{Celsius, Vendor};
    use reaper_retention::{RetentionConfig, SimulatedChip};

    fn harness() -> TestHarness {
        let chip = SimulatedChip::new(
            RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 8),
            0x9A,
        );
        TestHarness::new(chip, Celsius::new(45.0), 0x9A)
    }

    #[test]
    fn characterization_recovers_model_parameters() {
        let mut h = harness();
        let c = ChipCharacterization::measure(&mut h, CharacterizeOptions::default());
        // The chip's BER exponent is 2.5; the empirical fit should land
        // near it (profiling-coverage effects bias it slightly).
        assert!(
            (1.8..3.2).contains(&c.ber_fit.b),
            "fitted exponent {}",
            c.ber_fit.b
        );
        // Eq. 1 coefficient for Vendor B is 0.20.
        assert!(
            (0.10..0.30).contains(&c.temp_coefficient),
            "fitted k {}",
            c.temp_coefficient
        );
        assert!(c.runtime.is_positive());
        assert_eq!(c.samples.len(), 3);
    }

    #[test]
    fn recommendation_respects_fpr_budget() {
        let mut h = harness();
        let c = ChipCharacterization::measure(&mut h, CharacterizeOptions::default());
        let target = Ms::new(1024.0);
        let reach = c.recommend_reach(target, 0.5).expect("a reach exists");
        assert!(reach.delta_interval.as_ms() > 50.0);
        // Its own prediction must respect the budget.
        assert!(c.predicted_fpr(target, reach.delta_interval) <= 0.5 + 1e-9);
        // A tighter budget yields a smaller offset.
        let tight = c.recommend_reach(target, 0.25).expect("a reach exists");
        assert!(tight.delta_interval < reach.delta_interval);
    }

    #[test]
    fn predicted_fpr_matches_paper_arithmetic() {
        let mut h = harness();
        let c = ChipCharacterization::measure(&mut h, CharacterizeOptions::default());
        // With b ≈ 2.5: +250ms on 1024ms inflates counts ~1.7x ⇒ FPR ~40%.
        let fpr = c.predicted_fpr(Ms::new(1024.0), Ms::new(250.0));
        assert!((0.25..0.55).contains(&fpr), "predicted FPR {fpr}");
    }

    #[test]
    fn temp_equivalence_is_positive_and_monotone() {
        let mut h = harness();
        let c = ChipCharacterization::measure(&mut h, CharacterizeOptions::default());
        let e5 = c.interval_equivalent_of_temp(Ms::new(1024.0), 5.0);
        let e10 = c.interval_equivalent_of_temp(Ms::new(1024.0), 10.0);
        assert!(e5.as_ms() > 0.0);
        assert!(e10 > e5);
    }

    #[test]
    #[should_panic(expected = "max_fpr")]
    fn rejects_degenerate_budget() {
        let fit = PowerLawFit {
            a: 100.0,
            b: 2.5,
            r_squared: 1.0,
        };
        let c = ChipCharacterization {
            ber_fit: fit,
            temp_coefficient: 0.2,
            samples: vec![],
            runtime: Ms::new(1.0),
        };
        c.recommend_reach(Ms::new(1024.0), 1.5);
    }
}
