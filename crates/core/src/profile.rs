//! Failure profiles: sets of failing-cell addresses with the set algebra
//! the paper's metrics need, plus the compact wire encoding `reaper-serve`
//! ships over HTTP.
//!
//! The sorted-delta varint machinery is shared with the `RPD1` streaming
//! delta codec and lives in [`reaper_retention::delta`]; this module
//! layers the `RPF1` full-profile framing and the profile-level
//! delta/apply API on top.

use std::collections::BTreeSet;

use reaper_retention::delta::{
    self, push_varint, read_varint, DeltaApplyError, ProfileDelta, VarintError,
};

/// Magic prefix of the binary profile encoding (`"RPF"` + version `1`).
pub const PROFILE_WIRE_MAGIC: [u8; 4] = *b"RPF1";

/// Decoding failure for [`FailureProfile::from_bytes`].
///
/// Corrupt input is an expected condition on a network boundary, so every
/// variant is a plain `Err` — decoding never panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileCodecError {
    /// Input shorter than the 4-byte magic.
    TooShort,
    /// Magic bytes do not spell `RPF1`.
    BadMagic,
    /// A varint ran past the end of the input.
    TruncatedVarint,
    /// A varint encoded more than 64 bits.
    VarintOverflow,
    /// A varint used more bytes than its minimal encoding; accepted
    /// profiles therefore have exactly one wire form per cell set.
    NonCanonicalVarint,
    /// A delta pushed the running address past `u64::MAX`.
    AddressOverflow,
    /// The declared cell count exceeds what the payload can hold.
    CountTooLarge,
    /// Bytes remained after the declared number of cells was decoded.
    TrailingBytes,
}

impl core::fmt::Display for ProfileCodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let what = match self {
            Self::TooShort => "input shorter than the RPF1 magic",
            Self::BadMagic => "magic bytes are not RPF1",
            Self::TruncatedVarint => "varint truncated mid-value",
            Self::VarintOverflow => "varint encodes more than 64 bits",
            Self::NonCanonicalVarint => "varint is not minimally encoded",
            Self::AddressOverflow => "delta overflows the u64 address space",
            Self::CountTooLarge => "declared count exceeds payload capacity",
            Self::TrailingBytes => "trailing bytes after the last cell",
        };
        write!(f, "profile decode error: {what}")
    }
}

impl std::error::Error for ProfileCodecError {}

impl From<VarintError> for ProfileCodecError {
    fn from(e: VarintError) -> Self {
        match e {
            VarintError::Truncated => ProfileCodecError::TruncatedVarint,
            VarintError::Overflow => ProfileCodecError::VarintOverflow,
            VarintError::NonCanonical => ProfileCodecError::NonCanonicalVarint,
        }
    }
}

/// A retention-failure profile: the set of (linear) cell addresses observed
/// or predicted to fail at some conditions.
///
/// Backed by a [`BTreeSet`] so iteration is ordered and set algebra is
/// straightforward; profile sizes are thousands-to-millions of cells, far
/// below the full address space.
///
/// # Example
/// ```
/// use reaper_core::FailureProfile;
///
/// let mut p = FailureProfile::new();
/// p.insert(42);
/// p.extend([7, 42, 99]);
/// assert_eq!(p.len(), 3);
/// assert!(p.contains(42));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FailureProfile {
    cells: BTreeSet<u64>,
}

impl FailureProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a profile from any collection of cell addresses.
    pub fn from_cells<I: IntoIterator<Item = u64>>(cells: I) -> Self {
        Self {
            cells: cells.into_iter().collect(),
        }
    }

    /// Number of cells in the profile.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether `cell` is in the profile.
    pub fn contains(&self, cell: u64) -> bool {
        self.cells.contains(&cell)
    }

    /// Inserts one cell; returns true if it was new.
    pub fn insert(&mut self, cell: u64) -> bool {
        self.cells.insert(cell)
    }

    /// Merges `other` into `self`.
    pub fn union_with(&mut self, other: &FailureProfile) {
        self.cells.extend(other.cells.iter().copied());
    }

    /// Number of cells present in both profiles.
    pub fn intersection_count(&self, other: &FailureProfile) -> usize {
        if self.len() <= other.len() {
            self.cells.iter().filter(|c| other.contains(**c)).count()
        } else {
            other.cells.iter().filter(|c| self.contains(**c)).count()
        }
    }

    /// Number of cells in `self` but not in `other`.
    pub fn difference_count(&self, other: &FailureProfile) -> usize {
        self.len() - self.intersection_count(other)
    }

    /// Iterates over the cell addresses in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.cells.iter().copied()
    }

    /// Encodes the profile into the compact sorted-delta varint wire form:
    /// `RPF1` magic, varint cell count, then per cell a varint delta from
    /// its predecessor (the first cell absolute, subsequent cells encoded
    /// as `cell − prev − 1`, exploiting strict ascending order).
    ///
    /// The encoding is canonical — equal profiles produce identical bytes
    /// — which is what lets `reaper-serve` treat profile bytes as
    /// content-addressed values and tests compare wire output against
    /// direct library calls byte-for-byte.
    pub fn to_bytes(&self) -> Vec<u8> {
        // Dense profiles encode near 1 byte/cell; reserve for that plus
        // slack so typical encodes do not reallocate.
        let mut out = Vec::with_capacity(8 + self.cells.len() * 2);
        out.extend_from_slice(&PROFILE_WIRE_MAGIC);
        push_varint(&mut out, reaper_exec::num::to_u64(self.cells.len()));
        let mut prev: Option<u64> = None;
        for cell in self.cells.iter().copied() {
            match prev {
                None => push_varint(&mut out, cell),
                // BTreeSet iteration is strictly ascending, so the -1 is safe.
                Some(p) => push_varint(&mut out, cell - p - 1),
            }
            prev = Some(cell);
        }
        out
    }

    /// Decodes a profile from the [`FailureProfile::to_bytes`] wire form.
    ///
    /// # Errors
    /// Returns a [`ProfileCodecError`] on any malformed input — wrong
    /// magic, truncated or over-long varints, address overflow, or
    /// trailing garbage. Never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ProfileCodecError> {
        let Some((magic, mut rest)) = bytes.split_first_chunk::<4>() else {
            return Err(ProfileCodecError::TooShort);
        };
        if *magic != PROFILE_WIRE_MAGIC {
            return Err(ProfileCodecError::BadMagic);
        }
        let count;
        (count, rest) = read_varint(rest)?;
        // Each cell takes at least one payload byte, so a count beyond the
        // remaining length is corrupt — reject before allocating.
        if count > reaper_exec::num::to_u64(rest.len()) {
            return Err(ProfileCodecError::CountTooLarge);
        }
        let mut cells = BTreeSet::new();
        let mut prev: Option<u64> = None;
        for _ in 0..count {
            let delta;
            (delta, rest) = read_varint(rest)?;
            let cell = match prev {
                None => delta,
                Some(p) => p
                    .checked_add(1)
                    .and_then(|p1| p1.checked_add(delta))
                    .ok_or(ProfileCodecError::AddressOverflow)?,
            };
            cells.insert(cell);
            prev = Some(cell);
        }
        if !rest.is_empty() {
            return Err(ProfileCodecError::TrailingBytes);
        }
        Ok(Self { cells })
    }

    /// The content hash of this profile's canonical `RPF1` encoding —
    /// the value `reaper-serve` derives ETags, delta `base_hash` /
    /// `result_hash` fields, and epoch-log identity from. Equal profiles
    /// hash equal by the canonicality of [`FailureProfile::to_bytes`].
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        delta::content_hash(&self.to_bytes())
    }

    /// Computes the `RPD1` delta that rewrites `self` (at `base_epoch`)
    /// into `next` (at `new_epoch`), with both endpoint content hashes
    /// bound into the header.
    #[must_use]
    pub fn delta_to(&self, next: &FailureProfile, base_epoch: u64, new_epoch: u64) -> ProfileDelta {
        ProfileDelta::compute(
            self.iter(),
            next.iter(),
            base_epoch,
            new_epoch,
            self.content_hash(),
            next.content_hash(),
        )
    }

    /// Applies a delta with full integrity checking: the delta's
    /// `base_hash` must match this profile, the set constraints must
    /// hold (added cells absent, removed cells present), and the result
    /// must hash to the delta's `result_hash` — so a successful apply
    /// guarantees the reconstructed encoding is byte-identical to the
    /// directly encoded profile the delta was computed from.
    ///
    /// # Errors
    /// [`DeltaApplyError`] naming the first violated check. Never
    /// panics, whatever the delta claims.
    pub fn apply_delta(&self, d: &ProfileDelta) -> Result<FailureProfile, DeltaApplyError> {
        let actual = self.content_hash();
        if d.base_hash != actual {
            return Err(DeltaApplyError::BaseHashMismatch {
                expected: d.base_hash,
                actual,
            });
        }
        let next = Self {
            cells: d.apply_to(&self.cells)?,
        };
        let result_actual = next.content_hash();
        if d.result_hash != result_actual {
            return Err(DeltaApplyError::ResultHashMismatch {
                expected: d.result_hash,
                actual: result_actual,
            });
        }
        Ok(next)
    }
}

impl Extend<u64> for FailureProfile {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.cells.extend(iter);
    }
}

impl FromIterator<u64> for FailureProfile {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Self::from_cells(iter)
    }
}

impl<'a> IntoIterator for &'a FailureProfile {
    type Item = &'a u64;
    type IntoIter = std::collections::btree_set::Iter<'a, u64>;
    fn into_iter(self) -> Self::IntoIter {
        self.cells.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_dedup() {
        let mut p = FailureProfile::new();
        assert!(p.insert(1));
        assert!(!p.insert(1));
        p.extend([2, 2, 3]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = FailureProfile::from_cells([1, 2, 3, 4]);
        let b = FailureProfile::from_cells([3, 4, 5]);
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(b.intersection_count(&a), 2);
        assert_eq!(a.difference_count(&b), 2);
        assert_eq!(b.difference_count(&a), 1);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 5);
    }

    #[test]
    fn iteration_is_sorted() {
        let p = FailureProfile::from_cells([9, 1, 5]);
        let v: Vec<u64> = p.iter().collect();
        assert_eq!(v, vec![1, 5, 9]);
        let r: Vec<u64> = (&p).into_iter().copied().collect();
        assert_eq!(r, v);
    }

    #[test]
    fn from_iterator_collects() {
        let p: FailureProfile = (0..10u64).filter(|x| x % 2 == 0).collect();
        assert_eq!(p.len(), 5);
        assert!(p.contains(8));
        assert!(!p.contains(7));
    }

    #[test]
    fn codec_roundtrips_representative_shapes() {
        let shapes: Vec<FailureProfile> = vec![
            FailureProfile::new(),
            FailureProfile::from_cells([0]),
            FailureProfile::from_cells([u64::MAX]),
            FailureProfile::from_cells([0, u64::MAX]),
            (0..5_000u64).collect(),
            FailureProfile::from_cells([1, 128, 129, 1 << 40, (1 << 40) + 1]),
        ];
        for p in shapes {
            let bytes = p.to_bytes();
            assert_eq!(&bytes[..4], b"RPF1");
            let back = FailureProfile::from_bytes(&bytes).expect("roundtrip");
            assert_eq!(back, p);
        }
    }

    #[test]
    fn codec_is_canonical_and_compact() {
        let a: FailureProfile = [9u64, 1, 5].into_iter().collect();
        let b: FailureProfile = [5u64, 9, 1].into_iter().collect();
        assert_eq!(a.to_bytes(), b.to_bytes());
        // Dense runs delta-encode to one byte per cell after the header.
        let dense: FailureProfile = (1000..2000u64).collect();
        assert!(dense.to_bytes().len() < 4 + 2 + 1000 + 8);
    }

    #[test]
    fn decode_rejects_corrupt_inputs_without_panicking() {
        use super::ProfileCodecError as E;
        assert_eq!(FailureProfile::from_bytes(b""), Err(E::TooShort));
        assert_eq!(FailureProfile::from_bytes(b"RPF"), Err(E::TooShort));
        assert_eq!(FailureProfile::from_bytes(b"RPF2\x00"), Err(E::BadMagic));
        // Declared count with no payload.
        assert_eq!(FailureProfile::from_bytes(b"RPF1\x05"), Err(E::CountTooLarge));
        // Truncated mid-varint (continuation bit set, no next byte).
        assert_eq!(
            FailureProfile::from_bytes(b"RPF1\x01\x80"),
            Err(E::TruncatedVarint)
        );
        // 11-byte varint overflows u64.
        let mut over = b"RPF1\x01".to_vec();
        over.extend_from_slice(&[0x80; 10]);
        over.push(0x01);
        assert_eq!(FailureProfile::from_bytes(&over), Err(E::VarintOverflow));
        // Second delta pushes past u64::MAX.
        let mut wrap = b"RPF1\x02".to_vec();
        push_varint(&mut wrap, u64::MAX);
        push_varint(&mut wrap, 0);
        assert_eq!(FailureProfile::from_bytes(&wrap), Err(E::AddressOverflow));
        // Trailing garbage after a valid body.
        let mut trail = FailureProfile::from_cells([3]).to_bytes();
        trail.push(0x00);
        assert_eq!(FailureProfile::from_bytes(&trail), Err(E::TrailingBytes));
    }

    #[test]
    fn delta_wrappers_roundtrip_with_hash_verification() {
        let base = FailureProfile::from_cells([1, 5, 9]);
        let next = FailureProfile::from_cells([1, 6, 9, 12]);
        let d = base.delta_to(&next, 0, 1);
        assert_eq!(d.base_hash, base.content_hash());
        assert_eq!(d.result_hash, next.content_hash());
        let applied = base.apply_delta(&d).expect("checked apply");
        assert_eq!(applied, next);
        assert_eq!(applied.to_bytes(), next.to_bytes());
        // Out-of-order replay: applying to the wrong base is caught by
        // the base hash before any set mutation is trusted.
        let err = next.apply_delta(&d).expect_err("wrong base");
        assert!(matches!(err, DeltaApplyError::BaseHashMismatch { .. }));
        // Tampered result hash is caught after apply.
        let mut forged = base.delta_to(&next, 0, 1);
        forged.result_hash ^= 1;
        assert!(matches!(
            base.apply_delta(&forged),
            Err(DeltaApplyError::ResultHashMismatch { .. })
        ));
    }

    #[test]
    fn truncating_any_prefix_of_a_valid_encoding_errors() {
        let p: FailureProfile = (0..64u64).map(|i| i * 977).collect();
        let bytes = p.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                FailureProfile::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded cleanly"
            );
        }
    }
}
