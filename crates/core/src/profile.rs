//! Failure profiles: sets of failing-cell addresses with the set algebra
//! the paper's metrics need.

use std::collections::BTreeSet;

/// A retention-failure profile: the set of (linear) cell addresses observed
/// or predicted to fail at some conditions.
///
/// Backed by a [`BTreeSet`] so iteration is ordered and set algebra is
/// straightforward; profile sizes are thousands-to-millions of cells, far
/// below the full address space.
///
/// # Example
/// ```
/// use reaper_core::FailureProfile;
///
/// let mut p = FailureProfile::new();
/// p.insert(42);
/// p.extend([7, 42, 99]);
/// assert_eq!(p.len(), 3);
/// assert!(p.contains(42));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FailureProfile {
    cells: BTreeSet<u64>,
}

impl FailureProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a profile from any collection of cell addresses.
    pub fn from_cells<I: IntoIterator<Item = u64>>(cells: I) -> Self {
        Self {
            cells: cells.into_iter().collect(),
        }
    }

    /// Number of cells in the profile.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether `cell` is in the profile.
    pub fn contains(&self, cell: u64) -> bool {
        self.cells.contains(&cell)
    }

    /// Inserts one cell; returns true if it was new.
    pub fn insert(&mut self, cell: u64) -> bool {
        self.cells.insert(cell)
    }

    /// Merges `other` into `self`.
    pub fn union_with(&mut self, other: &FailureProfile) {
        self.cells.extend(other.cells.iter().copied());
    }

    /// Number of cells present in both profiles.
    pub fn intersection_count(&self, other: &FailureProfile) -> usize {
        if self.len() <= other.len() {
            self.cells.iter().filter(|c| other.contains(**c)).count()
        } else {
            other.cells.iter().filter(|c| self.contains(**c)).count()
        }
    }

    /// Number of cells in `self` but not in `other`.
    pub fn difference_count(&self, other: &FailureProfile) -> usize {
        self.len() - self.intersection_count(other)
    }

    /// Iterates over the cell addresses in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.cells.iter().copied()
    }
}

impl Extend<u64> for FailureProfile {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.cells.extend(iter);
    }
}

impl FromIterator<u64> for FailureProfile {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Self::from_cells(iter)
    }
}

impl<'a> IntoIterator for &'a FailureProfile {
    type Item = &'a u64;
    type IntoIter = std::collections::btree_set::Iter<'a, u64>;
    fn into_iter(self) -> Self::IntoIter {
        self.cells.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_dedup() {
        let mut p = FailureProfile::new();
        assert!(p.insert(1));
        assert!(!p.insert(1));
        p.extend([2, 2, 3]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = FailureProfile::from_cells([1, 2, 3, 4]);
        let b = FailureProfile::from_cells([3, 4, 5]);
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(b.intersection_count(&a), 2);
        assert_eq!(a.difference_count(&b), 2);
        assert_eq!(b.difference_count(&a), 1);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 5);
    }

    #[test]
    fn iteration_is_sorted() {
        let p = FailureProfile::from_cells([9, 1, 5]);
        let v: Vec<u64> = p.iter().collect();
        assert_eq!(v, vec![1, 5, 9]);
        let r: Vec<u64> = (&p).into_iter().copied().collect();
        assert_eq!(r, v);
    }

    #[test]
    fn from_iterator_collects() {
        let p: FailureProfile = (0..10u64).filter(|x| x % 2 == 0).collect();
        assert_eq!(p.len(), 5);
        assert!(p.contains(8));
        assert!(!p.contains(7));
    }
}
