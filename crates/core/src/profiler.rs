//! The profilers: brute-force (Algorithm 1) and reach profiling.
//!
//! Both share one engine — reach profiling *is* Algorithm 1 executed at
//! reach conditions — which is exactly the paper's framing: brute-force
//! profiling is the degenerate reach point `(+0 ms, +0 °C)`.

use reaper_dram_model::{Celsius, DataPattern, Ms};
use reaper_exec::num;
use reaper_retention::{SimulatedChip, MAX_BATCH_ROUNDS};
use reaper_softmc::TestHarness;

use crate::conditions::{ReachConditions, TargetConditions};
use crate::profile::FailureProfile;

/// Which data patterns each profiling iteration writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternSet {
    /// The paper's standard set: six families and their inverses, with the
    /// random member reseeded every iteration (§3.2).
    Standard,
    /// Only the random pattern and its inverse, reseeded every iteration
    /// (the strongest single family per Fig. 5 / Observation 3).
    RandomOnly,
    /// A fixed explicit list (used by the Fig. 5 per-pattern study and by
    /// ablations).
    Fixed(Vec<DataPattern>),
}

impl PatternSet {
    /// The patterns to write on iteration `iteration`.
    pub fn for_iteration(&self, iteration: u64) -> Vec<DataPattern> {
        match self {
            PatternSet::Standard => DataPattern::standard_set(iteration),
            PatternSet::RandomOnly => {
                let p = DataPattern::random(0xAB50 ^ iteration);
                vec![p, p.inverse()]
            }
            PatternSet::Fixed(v) => v.clone(),
        }
    }

    /// Number of patterns written per iteration.
    pub fn patterns_per_iteration(&self) -> usize {
        match self {
            PatternSet::Standard => 12,
            PatternSet::RandomOnly => 2,
            PatternSet::Fixed(v) => v.len(),
        }
    }

    /// The patterns that recur on *every* iteration — the ones worth
    /// prewarming in the chip's trial-plan cache before a profiling loop.
    /// The standard set's walking and random members vary per iteration
    /// and are excluded; `RandomOnly` reseeds everything, so nothing is
    /// stable there.
    pub fn stable_patterns(&self) -> Vec<DataPattern> {
        match self {
            PatternSet::Standard => [
                DataPattern::solid0(),
                DataPattern::checkerboard(),
                DataPattern::row_stripe(),
                DataPattern::col_stripe(),
            ]
            .iter()
            .flat_map(|&p| [p, p.inverse()])
            .collect(),
            PatternSet::RandomOnly => Vec::new(),
            PatternSet::Fixed(v) => v.clone(),
        }
    }
}

/// Statistics for one profiling iteration (one pass over all patterns) —
/// the per-iteration series plotted in Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IterationStats {
    /// Cells discovered this iteration that were never seen before.
    pub new_unique: usize,
    /// Cells discovered this iteration that were already in the profile.
    pub repeats: usize,
    /// Cumulative profile size after this iteration.
    pub cumulative: usize,
}

impl IterationStats {
    /// Total cells observed failing this iteration.
    pub fn found(&self) -> usize {
        self.new_unique + self.repeats
    }
}

/// The result of a profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilingRun {
    /// Union of all observed failures.
    pub profile: FailureProfile,
    /// Simulated wall-clock time the run consumed (the paper's *runtime*
    /// metric).
    pub runtime: Ms,
    /// Per-iteration discovery statistics.
    pub iterations: Vec<IterationStats>,
    /// The absolute conditions profiling ran at.
    pub profiling_interval: Ms,
    /// The ambient temperature profiling ran at.
    pub profiling_ambient: Celsius,
}

impl ProfilingRun {
    /// Iterations executed.
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }
}

/// Incremental coverage / false-positive accounting against a fixed
/// ground truth — the bookkeeping [`Profiler::run_to_coverage`] and the
/// portfolio race lanes share. Feed it every *newly inserted* profile
/// cell via [`CoverageTracker::note_new`]; it maintains the covered
/// count, coverage ratio, and false-positive rate without rescanning the
/// profile.
#[derive(Debug, Clone)]
pub struct CoverageTracker<'a> {
    truth: &'a FailureProfile,
    covered: usize,
    inserted: usize,
}

impl<'a> CoverageTracker<'a> {
    /// Tracks coverage of `truth`.
    ///
    /// # Panics
    /// Panics if `truth` is empty (coverage of nothing is meaningless).
    pub fn new(truth: &'a FailureProfile) -> Self {
        assert!(!truth.is_empty(), "ground truth must be nonempty");
        Self {
            truth,
            covered: 0,
            inserted: 0,
        }
    }

    /// The absolute covered-cell count equivalent to a fractional
    /// `coverage_goal` of the truth set (ceiling, so the goal is never
    /// met early by rounding).
    ///
    /// # Panics
    /// Panics if `coverage_goal` is outside `(0, 1]`.
    pub fn goal_count(&self, coverage_goal: f64) -> usize {
        assert!(
            coverage_goal > 0.0 && coverage_goal <= 1.0,
            "coverage goal must be in (0, 1]"
        );
        // lint: allow(lossy-cast) ceil of coverage_goal * len is a small non-negative count
        (coverage_goal * self.truth.len() as f64).ceil() as usize
    }

    /// Records one cell newly inserted into the profile. Callers must only
    /// report first insertions — repeats would double-count.
    pub fn note_new(&mut self, cell: u64) {
        self.inserted += 1;
        if self.truth.contains(cell) {
            self.covered += 1;
        }
    }

    /// Ground-truth cells found so far.
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// Fraction of the truth set found so far.
    pub fn coverage(&self) -> f64 {
        self.covered as f64 / self.truth.len() as f64
    }

    /// Fraction of the profile that is *not* in the truth set (the paper's
    /// false-positive rate); 0 while the profile is empty.
    pub fn fpr(&self) -> f64 {
        if self.inserted == 0 {
            return 0.0;
        }
        (self.inserted - self.covered) as f64 / self.inserted as f64
    }
}

/// A configured profiler: Algorithm 1 at explicit absolute conditions.
///
/// Construct via [`Profiler::brute_force`] (profile at the target
/// conditions) or [`Profiler::reach`] (profile at target + reach offsets).
#[derive(Debug, Clone, PartialEq)]
pub struct Profiler {
    interval: Ms,
    ambient: Celsius,
    iterations: u32,
    patterns: PatternSet,
    restore_ambient: Option<Celsius>,
}

impl Profiler {
    /// Brute-force profiling (Algorithm 1): profile *at* the target
    /// conditions for `iterations` iterations.
    ///
    /// # Panics
    /// Panics if `iterations == 0`.
    pub fn brute_force(target: TargetConditions, iterations: u32, patterns: PatternSet) -> Self {
        Self::reach(target, ReachConditions::brute_force(), iterations, patterns)
    }

    /// Reach profiling: profile at `target + reach`.
    ///
    /// If the reach offset includes a temperature delta, the run will move
    /// the chamber there and restore the target ambient afterwards, charging
    /// both settling times (an honest account of what a thermal reach costs
    /// on real hardware).
    ///
    /// # Panics
    /// Panics if `iterations == 0`.
    pub fn reach(
        target: TargetConditions,
        reach: ReachConditions,
        iterations: u32,
        patterns: PatternSet,
    ) -> Self {
        assert!(iterations > 0, "at least one profiling iteration required");
        let (interval, ambient) = reach.apply_to(target);
        Self {
            interval,
            ambient,
            iterations,
            patterns,
            restore_ambient: if reach.delta_temp > 0.0 {
                Some(target.ambient)
            } else {
                None
            },
        }
    }

    /// The absolute profiling interval.
    pub fn interval(&self) -> Ms {
        self.interval
    }

    /// The absolute profiling ambient temperature.
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// Configured iteration count.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Executes the full profiling run on `harness`.
    ///
    /// This is the paper's Algorithm 1: for each iteration, for each data
    /// pattern, write the pattern, disable refresh for the profiling
    /// interval, re-enable refresh, and accumulate the observed failures.
    pub fn run(&self, harness: &mut TestHarness) -> ProfilingRun {
        let start = harness.elapsed();
        if harness.ambient_setpoint() != self.ambient {
            harness.set_ambient(self.ambient);
        }
        // Pack the recurring patterns' lanes once up front; the chamber's
        // per-trial thermal jitter keeps full plans from ever being
        // reusable under a harness, but pattern lowerings are condition-
        // independent and serve every iteration. Free of simulated time,
        // and outcome-neutral (all engines are bit-identical).
        harness
            .chip_mut()
            .prewarm_lowerings(&self.patterns.stable_patterns());

        let mut profile = FailureProfile::new();
        let mut iterations = Vec::with_capacity(num::idx(self.iterations));
        for it in 0..self.iterations {
            let mut stats = IterationStats::default();
            for pattern in self.patterns.for_iteration(u64::from(it)) {
                let outcome = harness.pattern_trial(pattern, self.interval);
                for &cell in outcome.failures() {
                    if profile.insert(cell) {
                        stats.new_unique += 1;
                    } else {
                        stats.repeats += 1;
                    }
                }
            }
            stats.cumulative = profile.len();
            iterations.push(stats);
        }

        if let Some(restore) = self.restore_ambient {
            harness.set_ambient(restore);
        }

        ProfilingRun {
            profile,
            runtime: harness.elapsed() - start,
            iterations,
            profiling_interval: self.interval,
            profiling_ambient: self.ambient,
        }
    }

    /// Harness-free union profiling at one fixed condition, served by the
    /// chip's bit-plane batch kernel: `iterations` passes over `patterns`
    /// at exactly (`interval`, `dram_temp`), submitted as one trial
    /// schedule so each recurring condition runs up to
    /// [`MAX_BATCH_ROUNDS`] rounds per kernel pass. Returns the union of
    /// all observed failures.
    ///
    /// Unlike [`Profiler::run`] this charges no simulated time and applies
    /// no thermal-chamber jitter — it is the fast path for callers that
    /// want the failure *union* at a known DRAM temperature (ground-truth
    /// construction, benchmarks), not Algorithm 1's runtime accounting.
    /// Per-trial draws are the chip's usual nonce-keyed lanes, so repeated
    /// identical trials still see fresh randomness.
    pub fn direct_union(
        chip: &mut SimulatedChip,
        interval: Ms,
        dram_temp: Celsius,
        iterations: u32,
        patterns: &PatternSet,
    ) -> FailureProfile {
        // Packed polarity/stress lanes shortcut each condition's plan
        // compile; outcome-neutral as ever.
        chip.prewarm_lowerings(&patterns.stable_patterns());
        let mut schedule = Vec::new();
        for it in 0..iterations {
            for pattern in patterns.for_iteration(u64::from(it)) {
                schedule.push((pattern, interval, dram_temp));
            }
        }
        let mut profile = FailureProfile::new();
        for outcome in chip.retention_trial_schedule(&schedule, MAX_BATCH_ROUNDS) {
            for &cell in outcome.failures() {
                profile.insert(cell);
            }
        }
        profile
    }

    /// Runs until the profile covers at least `coverage_goal` of
    /// `ground_truth`, up to `max_iterations` iterations, checking after
    /// **every pattern pass** so runtime is measured at pattern granularity
    /// (the Fig. 10 "iterations required to achieve over 90 % coverage"
    /// analysis, without whole-iteration quantization).
    ///
    /// # Panics
    /// Panics if `ground_truth` is empty, `coverage_goal` is outside (0, 1],
    /// or `max_iterations == 0`.
    pub fn run_to_coverage(
        &self,
        harness: &mut TestHarness,
        ground_truth: &FailureProfile,
        coverage_goal: f64,
        max_iterations: u32,
    ) -> CoverageRun {
        let mut tracker = CoverageTracker::new(ground_truth);
        let goal_count = tracker.goal_count(coverage_goal);
        assert!(max_iterations > 0, "need at least one iteration");

        let start = harness.elapsed();
        if harness.ambient_setpoint() != self.ambient {
            harness.set_ambient(self.ambient);
        }
        // See `run`: lowering prewarm for the recurring patterns.
        harness
            .chip_mut()
            .prewarm_lowerings(&self.patterns.stable_patterns());

        let mut profile = FailureProfile::new();
        let mut iterations = Vec::new();
        let mut met = false;
        let mut patterns_executed = 0u32;
        'outer: for it in 0..max_iterations {
            let mut stats = IterationStats::default();
            for pattern in self.patterns.for_iteration(u64::from(it)) {
                let outcome = harness.pattern_trial(pattern, self.interval);
                patterns_executed += 1;
                for &cell in outcome.failures() {
                    if profile.insert(cell) {
                        stats.new_unique += 1;
                        tracker.note_new(cell);
                    } else {
                        stats.repeats += 1;
                    }
                }
                if tracker.covered() >= goal_count {
                    met = true;
                    stats.cumulative = profile.len();
                    iterations.push(stats);
                    break 'outer;
                }
            }
            stats.cumulative = profile.len();
            iterations.push(stats);
        }

        if let Some(restore) = self.restore_ambient {
            harness.set_ambient(restore);
        }

        CoverageRun {
            run: ProfilingRun {
                profile,
                runtime: harness.elapsed() - start,
                iterations,
                profiling_interval: self.interval,
                profiling_ambient: self.ambient,
            },
            met,
            patterns_executed,
        }
    }
}

/// The result of [`Profiler::run_to_coverage`].
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageRun {
    /// The underlying profiling run (possibly ending mid-iteration).
    pub run: ProfilingRun,
    /// Whether the coverage goal was met within the iteration cap.
    pub met: bool,
    /// Pattern passes executed — the pattern-granular runtime unit
    /// (`runtime ≈ patterns_executed · (t_REFI + t_wr + t_rd)`, Eq. 9).
    pub patterns_executed: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use reaper_dram_model::Vendor;
    use reaper_retention::{RetentionConfig, SimulatedChip};

    fn harness(div: u64, seed: u64) -> TestHarness {
        let chip = SimulatedChip::new(
            RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, div),
            seed,
        );
        TestHarness::new(chip, Celsius::new(45.0), seed)
    }

    #[test]
    fn pattern_set_sizes() {
        assert_eq!(PatternSet::Standard.patterns_per_iteration(), 12);
        assert_eq!(PatternSet::Standard.for_iteration(3).len(), 12);
        let fixed = PatternSet::Fixed(vec![DataPattern::solid0()]);
        assert_eq!(fixed.patterns_per_iteration(), 1);
        assert_eq!(fixed.for_iteration(9), vec![DataPattern::solid0()]);
    }

    #[test]
    fn random_only_set_reseeds_each_iteration() {
        let set = PatternSet::RandomOnly;
        assert_eq!(set.patterns_per_iteration(), 2);
        let a = set.for_iteration(0);
        let b = set.for_iteration(1);
        assert_eq!(a.len(), 2);
        assert_eq!(a[1], a[0].inverse());
        assert_ne!(a[0].param(), b[0].param());
    }

    #[test]
    fn stable_patterns_recur_every_iteration() {
        let set = PatternSet::Standard;
        let stable = set.stable_patterns();
        assert_eq!(stable.len(), 8);
        for it in 0..4 {
            let pats = set.for_iteration(it);
            for p in &stable {
                assert!(pats.contains(p), "{p:?} missing from iteration {it}");
            }
        }
        assert!(PatternSet::RandomOnly.stable_patterns().is_empty());
        let fixed = PatternSet::Fixed(vec![DataPattern::random(7)]);
        assert_eq!(fixed.stable_patterns(), fixed.for_iteration(0));
    }

    #[test]
    fn run_prewarms_lowerings_for_recurring_patterns() {
        let mut h = harness(32, 27);
        let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
        let _ = Profiler::brute_force(target, 2, PatternSet::Standard).run(&mut h);
        let stats = h.chip().plan_stats();
        assert!(stats.lowerings_built >= 8, "{stats:?}");
        // 8 recurring patterns × 2 iterations all served by packed lanes.
        assert!(stats.lowered_trials >= 16, "{stats:?}");
    }

    #[test]
    fn brute_force_run_finds_cells_and_charges_time() {
        let mut h = harness(16, 21);
        let target = TargetConditions::new(Ms::new(2048.0), Celsius::new(45.0));
        let run = Profiler::brute_force(target, 2, PatternSet::Standard).run(&mut h);
        assert!(!run.profile.is_empty());
        assert_eq!(run.iteration_count(), 2);
        // Eq. 9: runtime = (tREFI + rw) * Ndp * Nit
        let expected = (Ms::new(2048.0) + h.costs().pass_cost()) * 12.0 * 2.0;
        assert_eq!(run.runtime, expected);
        assert_eq!(run.profiling_interval, Ms::new(2048.0));
    }

    #[test]
    fn iteration_stats_are_consistent() {
        let mut h = harness(16, 22);
        let target = TargetConditions::new(Ms::new(2048.0), Celsius::new(45.0));
        let run = Profiler::brute_force(target, 3, PatternSet::Standard).run(&mut h);
        let total_unique: usize = run.iterations.iter().map(|s| s.new_unique).sum();
        assert_eq!(total_unique, run.profile.len());
        assert_eq!(
            run.iterations.last().unwrap().cumulative,
            run.profile.len()
        );
        // cumulative is nondecreasing
        let mut prev = 0;
        for s in &run.iterations {
            assert!(s.cumulative >= prev);
            prev = s.cumulative;
        }
    }

    #[test]
    fn reach_finds_superset_of_brute_force_statistically() {
        let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
        let mut h1 = harness(16, 23);
        let brute = Profiler::brute_force(target, 4, PatternSet::Standard).run(&mut h1);
        let mut h2 = harness(16, 23);
        let reach = Profiler::reach(
            target,
            ReachConditions::interval_offset(Ms::new(250.0)),
            4,
            PatternSet::Standard,
        )
        .run(&mut h2);
        assert!(
            reach.profile.len() > brute.profile.len(),
            "reach {} vs brute {}",
            reach.profile.len(),
            brute.profile.len()
        );
    }

    #[test]
    fn thermal_reach_restores_ambient() {
        let mut h = harness(32, 24);
        let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
        let p = Profiler::reach(
            target,
            ReachConditions::temp_offset(5.0),
            1,
            PatternSet::Standard,
        );
        assert_eq!(p.ambient(), Celsius::new(50.0));
        let _ = p.run(&mut h);
        assert_eq!(h.ambient_setpoint(), Celsius::new(45.0));
    }

    #[test]
    fn run_to_coverage_stops_early() {
        let mut h = harness(16, 25);
        let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
        // Ground truth: high-probability failures at target.
        let gt = FailureProfile::from_cells(h.chip_mut().failing_set_worst_case(
            Ms::new(1024.0),
            target.dram_temp(),
            0.9,
        ));
        let profiler = Profiler::reach(
            target,
            ReachConditions::interval_offset(Ms::new(500.0)),
            1,
            PatternSet::Standard,
        );
        let goal = profiler.run_to_coverage(&mut h, &gt, 0.9, 20);
        assert!(goal.met, "goal not met in {} iterations", goal.run.iteration_count());
        assert!(goal.run.iteration_count() < 20);
        assert!(goal.patterns_executed >= 1);
        assert!(goal.patterns_executed <= 20 * 12);
    }

    #[test]
    fn direct_union_matches_sequential_trial_union() {
        // The batched direct path must produce exactly the union a plain
        // retention_trial loop at the same fixed condition produces.
        let mk = || {
            SimulatedChip::new(
                RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 16),
                29,
            )
        };
        let interval = Ms::new(1536.0);
        let temp = Celsius::new(60.0);
        let patterns = PatternSet::Standard;

        let mut reference = mk();
        let mut want = FailureProfile::new();
        for it in 0..3u32 {
            for p in patterns.for_iteration(u64::from(it)) {
                for &cell in reference.retention_trial(p, interval, temp).failures() {
                    want.insert(cell);
                }
            }
        }

        let mut chip = mk();
        let got = Profiler::direct_union(&mut chip, interval, temp, 3, &patterns);
        assert_eq!(got, want);
        assert!(!got.is_empty());
        // All trials were served by the batch kernel.
        let stats = chip.plan_stats();
        assert_eq!(stats.batch_rounds, 3 * 12);
    }

    #[test]
    #[should_panic(expected = "at least one profiling iteration")]
    fn zero_iterations_rejected() {
        let target = TargetConditions::paper_example();
        Profiler::brute_force(target, 0, PatternSet::Standard);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn run_to_coverage_rejects_empty_gt() {
        let mut h = harness(64, 26);
        let target = TargetConditions::paper_example();
        let p = Profiler::brute_force(target, 1, PatternSet::Standard);
        p.run_to_coverage(&mut h, &FailureProfile::new(), 0.9, 1);
    }
}
