//! The canonical profiling-job request: one self-contained, hashable
//! description of a profiling run.
//!
//! `reaper-serve` needs three properties from a job description that the
//! builder-style library API does not give directly:
//!
//! 1. **Canonical bytes** — two requests describing the same job must
//!    serialize identically, so the service can content-address results
//!    ([`ProfilingRequest::canonical_bytes`]).
//! 2. **A deterministic job ID** — the splitmix64-chained hash of the
//!    canonical bytes ([`ProfilingRequest::job_id`]); identical
//!    submissions collide by construction and are deduplicated.
//! 3. **One execution path** — [`ProfilingRequest::execute`] is the same
//!    code whether called in-process or by a service worker, so a profile
//!    served over the wire is bit-identical to a direct library call at
//!    any thread count.

use reaper_dram_model::{Celsius, Ms, Vendor};
use reaper_exec::rng;
use reaper_retention::{RetentionConfig, SimulatedChip};
use reaper_softmc::{thermal, TestHarness};

use crate::conditions::{ReachConditions, TargetConditions};
use crate::metrics::ProfileMetrics;
use crate::profile::FailureProfile;
use crate::profiler::{PatternSet, Profiler, ProfilingRun};

/// Version byte of the canonical encoding; bump when fields change so old
/// job IDs cannot alias new requests.
const CANONICAL_VERSION: u8 = 1;

/// Probability floor used for the analytic ground truth a job's
/// coverage/FPR metrics are evaluated against (cells whose worst-case
/// single-trial failure probability at target conditions is ≥ 50 %).
pub const TRUTH_MIN_PROB: f64 = 0.5;

/// Which pattern family set a job profiles with (the wire-facing subset
/// of [`PatternSet`]; `Fixed` lists are a library-only concern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternSpec {
    /// The paper's standard six families and inverses (§3.2).
    Standard,
    /// Random pattern + inverse only (Fig. 5 / Observation 3).
    RandomOnly,
}

impl PatternSpec {
    /// Stable wire code of this variant.
    pub fn code(self) -> u8 {
        match self {
            PatternSpec::Standard => 0,
            PatternSpec::RandomOnly => 1,
        }
    }

    /// Stable wire name (`standard` / `random_only`).
    pub fn name(self) -> &'static str {
        match self {
            PatternSpec::Standard => "standard",
            PatternSpec::RandomOnly => "random_only",
        }
    }

    /// Parses the wire name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "standard" => Some(PatternSpec::Standard),
            "random_only" => Some(PatternSpec::RandomOnly),
            _ => None,
        }
    }

    /// The executable pattern set.
    pub fn to_pattern_set(self) -> PatternSet {
        match self {
            PatternSpec::Standard => PatternSet::Standard,
            PatternSpec::RandomOnly => PatternSet::RandomOnly,
        }
    }
}

/// A rejected [`ProfilingRequest`], with the offending constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError(pub String);

impl core::fmt::Display for RequestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid profiling request: {}", self.0)
    }
}

impl std::error::Error for RequestError {}

/// A complete, canonicalizable profiling job: chip config, seed, target
/// and reach conditions, iteration count, and pattern set.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilingRequest {
    /// DRAM vendor of the simulated chip.
    pub vendor: Vendor,
    /// Capacity scale numerator (`represented_bits × num / den`).
    pub capacity_num: u64,
    /// Capacity scale denominator.
    pub capacity_den: u64,
    /// Seed for the chip population, thermal chamber, and trial RNG lanes.
    pub seed: u64,
    /// Target refresh interval in milliseconds.
    pub target_interval_ms: f64,
    /// Target ambient temperature in °C.
    pub target_ambient_c: f64,
    /// Reach interval offset in milliseconds (0 = brute force).
    pub reach_delta_ms: f64,
    /// Reach ambient-temperature offset in °C (0 = no thermal reach).
    pub reach_delta_temp_c: f64,
    /// Profiling iterations (Algorithm 1 rounds).
    pub rounds: u32,
    /// Pattern families written each round.
    pub patterns: PatternSpec,
}

impl ProfilingRequest {
    /// A small, fast job at the paper's most-discussed operating point:
    /// Vendor B at 1/16 capacity, 1024 ms @ 45 °C target, the +250 ms
    /// headline reach, 4 rounds of the standard pattern set.
    pub fn example(seed: u64) -> Self {
        Self {
            vendor: Vendor::B,
            capacity_num: 1,
            capacity_den: 16,
            seed,
            target_interval_ms: 1024.0,
            target_ambient_c: 45.0,
            reach_delta_ms: 250.0,
            reach_delta_temp_c: 0.0,
            rounds: 4,
            patterns: PatternSpec::Standard,
        }
    }

    /// Checks every constraint the underlying simulator enforces by
    /// panic, so a validated request executes without panicking.
    ///
    /// # Errors
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), RequestError> {
        let err = |m: &str| Err(RequestError(m.to_string()));
        if self.capacity_num == 0 || self.capacity_den == 0 {
            return err("capacity_num and capacity_den must be nonzero");
        }
        if self.capacity_num > (1 << 20) || self.capacity_num > self.capacity_den * 64 {
            return err("capacity scale too large (num ≤ 2^20 and num/den ≤ 64)");
        }
        for (name, v) in [
            ("target_interval_ms", self.target_interval_ms),
            ("target_ambient_c", self.target_ambient_c),
            ("reach_delta_ms", self.reach_delta_ms),
            ("reach_delta_temp_c", self.reach_delta_temp_c),
        ] {
            if !v.is_finite() {
                return Err(RequestError(format!("{name} must be finite")));
            }
        }
        if self.target_interval_ms <= 0.0 {
            return err("target_interval_ms must be positive");
        }
        if self.reach_delta_ms < 0.0 || self.reach_delta_temp_c < 0.0 {
            return err("reach offsets must be non-negative");
        }
        let lo = thermal::CHAMBER_MIN;
        let hi = thermal::CHAMBER_MAX;
        if self.target_ambient_c < lo || self.target_ambient_c > hi {
            return Err(RequestError(format!(
                "target_ambient_c must be within the chamber range {lo}–{hi} °C"
            )));
        }
        if self.target_ambient_c + self.reach_delta_temp_c > hi {
            return Err(RequestError(format!(
                "target_ambient_c + reach_delta_temp_c exceeds the chamber maximum {hi} °C"
            )));
        }
        if self.rounds == 0 {
            return err("rounds must be at least 1");
        }
        Ok(())
    }

    /// The canonical byte encoding: a version byte followed by every field
    /// in declaration order, integers little-endian, floats as the IEEE-754
    /// bits of `value + 0.0` (normalizing `-0.0` to `+0.0` so numerically
    /// equal requests hash identically).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        fn f64_canon(v: f64) -> [u8; 8] {
            (v + 0.0).to_bits().to_le_bytes()
        }
        let mut out = Vec::with_capacity(64);
        out.push(CANONICAL_VERSION);
        out.push(match self.vendor {
            Vendor::A => 0,
            Vendor::B => 1,
            Vendor::C => 2,
        });
        out.extend_from_slice(&self.capacity_num.to_le_bytes());
        out.extend_from_slice(&self.capacity_den.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&f64_canon(self.target_interval_ms));
        out.extend_from_slice(&f64_canon(self.target_ambient_c));
        out.extend_from_slice(&f64_canon(self.reach_delta_ms));
        out.extend_from_slice(&f64_canon(self.reach_delta_temp_c));
        out.extend_from_slice(&self.rounds.to_le_bytes());
        out.push(self.patterns.code());
        out
    }

    /// Hash-domain seed for job IDs (see [`rng::hash_bytes`]).
    const JOB_ID_SEED: u64 = 0xC0FF_EE1D_5EED_F00D;

    /// The deterministic job ID: a splitmix64-chained hash of the
    /// canonical bytes ([`rng::hash_bytes`] under the job-ID domain
    /// seed; the algorithm and therefore every existing job ID are
    /// unchanged). Identical requests — same chip config, seed,
    /// conditions, rounds, patterns — always produce the same ID, which is
    /// what makes the service's result cache content-addressed.
    pub fn job_id(&self) -> u64 {
        rng::hash_bytes(Self::JOB_ID_SEED, &self.canonical_bytes())
    }

    /// Renders a job ID in the service's 16-hex-digit wire form.
    pub fn format_job_id(id: u64) -> String {
        format!("{id:016x}")
    }

    /// Parses the 16-hex-digit wire form of a job ID.
    pub fn parse_job_id(text: &str) -> Option<u64> {
        if text.len() != 16 {
            return None;
        }
        u64::from_str_radix(text, 16).ok()
    }

    /// Executes the job: builds the simulated chip and harness, runs
    /// Algorithm 1 at the requested reach conditions, and evaluates the
    /// result against the analytic ground truth at target conditions.
    ///
    /// The outcome is a pure function of the request — in particular it is
    /// independent of `REAPER_THREADS` (the parallel trial substrate is
    /// bit-identical at any worker count), which is the property the
    /// service's end-to-end determinism test pins.
    ///
    /// # Errors
    /// Returns the [`RequestError`] from [`ProfilingRequest::validate`];
    /// a validated request cannot fail.
    pub fn execute(&self) -> Result<ProfilingOutcome, RequestError> {
        self.validate()?;
        let cfg = RetentionConfig::for_vendor(self.vendor)
            .with_capacity_scale(self.capacity_num, self.capacity_den);
        cfg.validate().map_err(|m| RequestError(m.to_string()))?;
        let chip = SimulatedChip::new(cfg, self.seed);
        let target = TargetConditions::new(
            Ms::new(self.target_interval_ms),
            Celsius::new(self.target_ambient_c),
        );
        let reach = ReachConditions::new(Ms::new(self.reach_delta_ms), self.reach_delta_temp_c);
        let mut harness = TestHarness::new(chip, target.ambient, self.seed);
        // `Profiler::run` prewarms the chip's trial-plan lowerings for the
        // recurring patterns, so serve workers get the packed-lane fast
        // path without any per-worker setup — and since every engine is
        // bit-identical, job IDs and cached profile bytes are unaffected.
        let run = Profiler::reach(target, reach, self.rounds, self.patterns.to_pattern_set())
            .run(&mut harness);
        let truth = FailureProfile::from_cells(harness.chip_mut().failing_set_worst_case(
            target.interval,
            target.dram_temp(),
            TRUTH_MIN_PROB,
        ));
        let metrics = ProfileMetrics::evaluate(&run.profile, &truth).with_runtime(run.runtime);
        Ok(ProfilingOutcome {
            run,
            metrics,
            truth_cells: truth.len(),
        })
    }
}

/// The result of executing a [`ProfilingRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilingOutcome {
    /// The full profiling run (profile, simulated runtime, per-iteration
    /// stats).
    pub run: ProfilingRun,
    /// Coverage / FPR against the target-conditions ground truth, with the
    /// simulated runtime attached.
    pub metrics: ProfileMetrics,
    /// Size of the ground-truth failing set the metrics were evaluated
    /// against.
    pub truth_cells: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ProfilingRequest {
        let mut r = ProfilingRequest::example(7);
        r.capacity_den = 64;
        r.rounds = 2;
        r.target_interval_ms = 512.0;
        r.reach_delta_ms = 128.0;
        r
    }

    #[test]
    fn job_ids_are_stable_and_content_addressed() {
        let a = quick();
        let b = quick();
        assert_eq!(a.job_id(), b.job_id());
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        let mut c = quick();
        c.seed = 8;
        assert_ne!(a.job_id(), c.job_id());
        let mut d = quick();
        d.patterns = PatternSpec::RandomOnly;
        assert_ne!(a.job_id(), d.job_id());
        let mut e = quick();
        e.reach_delta_ms = 129.0;
        assert_ne!(a.job_id(), e.job_id());
    }

    #[test]
    fn negative_zero_hashes_like_positive_zero() {
        let a = quick();
        let mut b = quick();
        b.reach_delta_temp_c = -0.0;
        assert_eq!(a.job_id(), b.job_id());
        assert!(b.validate().is_ok());
    }

    #[test]
    fn job_id_wire_format_roundtrips() {
        let id = quick().job_id();
        let text = ProfilingRequest::format_job_id(id);
        assert_eq!(text.len(), 16);
        assert_eq!(ProfilingRequest::parse_job_id(&text), Some(id));
        assert_eq!(ProfilingRequest::parse_job_id("xyz"), None);
        assert_eq!(ProfilingRequest::parse_job_id(""), None);
    }

    type Mutator = Box<dyn Fn(&mut ProfilingRequest)>;

    #[test]
    fn validation_rejects_out_of_range_requests() {
        let ok = quick();
        assert!(ok.validate().is_ok());
        let cases: Vec<(&str, Mutator)> = vec![
            ("zero den", Box::new(|r| r.capacity_den = 0)),
            ("zero num", Box::new(|r| r.capacity_num = 0)),
            ("huge num", Box::new(|r| r.capacity_num = 1 << 21)),
            ("zero interval", Box::new(|r| r.target_interval_ms = 0.0)),
            ("nan interval", Box::new(|r| r.target_interval_ms = f64::NAN)),
            ("negative reach", Box::new(|r| r.reach_delta_ms = -1.0)),
            ("cold ambient", Box::new(|r| r.target_ambient_c = 20.0)),
            ("hot reach", Box::new(|r| r.reach_delta_temp_c = 30.0)),
            ("zero rounds", Box::new(|r| r.rounds = 0)),
        ];
        for (name, mutate) in cases {
            let mut r = quick();
            mutate(&mut r);
            assert!(r.validate().is_err(), "{name} accepted");
        }
    }

    #[test]
    fn execute_is_deterministic_and_matches_direct_library_use() {
        let req = quick();
        let a = req.execute().expect("valid request");
        let b = req.execute().expect("valid request");
        assert_eq!(a.run.profile, b.run.profile);
        assert_eq!(a.run.profile.to_bytes(), b.run.profile.to_bytes());
        assert!(!a.run.profile.is_empty());
        assert!(a.truth_cells > 0);
        assert!(a.metrics.coverage > 0.0);

        // The same job spelled out by hand through the library API.
        let cfg = RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 64);
        let chip = SimulatedChip::new(cfg, 7);
        let mut h = TestHarness::new(chip, Celsius::new(45.0), 7);
        let target = TargetConditions::new(Ms::new(512.0), Celsius::new(45.0));
        let direct = Profiler::reach(
            target,
            ReachConditions::interval_offset(Ms::new(128.0)),
            2,
            PatternSet::Standard,
        )
        .run(&mut h);
        assert_eq!(a.run.profile.to_bytes(), direct.profile.to_bytes());
        assert_eq!(a.run.runtime, direct.runtime);
    }

    #[test]
    fn execute_rejects_invalid_without_panicking() {
        let mut r = quick();
        r.rounds = 0;
        assert!(r.execute().is_err());
    }

    #[test]
    fn pattern_spec_wire_names_roundtrip() {
        for p in [PatternSpec::Standard, PatternSpec::RandomOnly] {
            assert_eq!(PatternSpec::parse(p.name()), Some(p));
        }
        assert_eq!(PatternSpec::parse("solid0"), None);
        assert_eq!(PatternSpec::Standard.to_pattern_set(), PatternSet::Standard);
        assert_eq!(
            PatternSpec::RandomOnly.to_pattern_set(),
            PatternSet::RandomOnly
        );
    }
}
