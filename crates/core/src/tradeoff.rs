//! The coverage / false-positive-rate / runtime tradeoff space (paper §6.1,
//! Figs. 9–10) and reach-condition selection (§6.1.2).
//!
//! For a grid of reach offsets (Δ refresh interval × Δ temperature), the
//! explorer measures, per the paper's methodology:
//!
//! * **coverage** and **false positive rate** of a fixed-iteration reach
//!   profile against the target's ground-truth failing set (Fig. 9),
//! * **runtime** as the number of iterations required to achieve a coverage
//!   goal (90 % in Fig. 10), converted to time by the Eq. 9 cost model and
//!   normalized to brute-force profiling at the target.

use reaper_dram_model::Ms;
use reaper_exec::num;
use reaper_retention::SimulatedChip;
use reaper_softmc::TestHarness;

use crate::conditions::{ReachConditions, TargetConditions};
use crate::metrics::ProfileMetrics;
use crate::profile::FailureProfile;
use crate::profiler::{PatternSet, Profiler};

/// How the target's ground-truth failing set is established.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GroundTruth {
    /// The paper's approach: the union of many brute-force iterations at the
    /// target conditions.
    Empirical {
        /// Brute-force iterations to accumulate.
        iterations: u32,
    },
    /// Oracle access to the simulator: every cell whose worst-case failure
    /// probability at target conditions is at least `min_prob`.
    Analytic {
        /// Probability floor for membership.
        min_prob: f64,
    },
    /// The union of many profiling iterations at exact target conditions,
    /// served harness-free by the chip's bit-plane batch kernel
    /// ([`Profiler::direct_union`]). Much faster than `Empirical` but not
    /// draw-identical to it: no simulated time is charged and no thermal
    /// jitter is applied, so the trials all run at the precise target
    /// DRAM temperature.
    Direct {
        /// Profiling iterations to accumulate.
        iterations: u32,
    },
}

impl Default for GroundTruth {
    fn default() -> Self {
        GroundTruth::Empirical { iterations: 24 }
    }
}

/// Options for a tradeoff-space exploration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreOptions {
    /// Iterations per grid-point profile (the paper's Fig. 9 uses 16).
    pub profile_iterations: u32,
    /// Ground-truth construction.
    pub ground_truth: GroundTruth,
    /// Coverage goal for the runtime measurement (Fig. 10 uses 0.9).
    pub coverage_goal: f64,
    /// Iteration cap for the runtime measurement.
    pub max_runtime_iterations: u32,
    /// RNG seed for harness construction.
    pub seed: u64,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self {
            profile_iterations: 16,
            ground_truth: GroundTruth::default(),
            coverage_goal: 0.9,
            max_runtime_iterations: 96,
            seed: 0x5EED,
        }
    }
}

/// One measured point of the tradeoff space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// The reach offset measured.
    pub reach: ReachConditions,
    /// Coverage of the target ground truth after `profile_iterations`.
    pub coverage: f64,
    /// False positive rate of the same profile.
    pub false_positive_rate: f64,
    /// Iterations needed to hit the coverage goal (capped).
    pub iterations_to_goal: u32,
    /// Pattern passes needed to hit the goal (pattern-granular runtime).
    pub patterns_to_goal: u32,
    /// Whether the goal was met within the cap.
    pub met_goal: bool,
    /// Eq. 9 runtime for `iterations_to_goal` at these conditions.
    pub runtime: Ms,
    /// Runtime normalized to the brute-force point (Fig. 10's contours).
    pub runtime_rel: f64,
}

impl TradeoffPoint {
    /// Brute-force speedup this point offers (`1 / runtime_rel`).
    pub fn speedup(&self) -> f64 {
        1.0 / self.runtime_rel
    }
}

/// A measured tradeoff space for one chip and target.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffAnalysis {
    /// The target conditions every point is evaluated against.
    pub target: TargetConditions,
    /// Measured grid points (row-major over the supplied delta lists).
    pub points: Vec<TradeoffPoint>,
    /// Size of the ground-truth failing set used.
    pub ground_truth_size: usize,
}

impl TradeoffAnalysis {
    /// Explores the tradeoff space of `chip` around `target` over the cross
    /// product of `deltas_interval` × `deltas_temp`.
    ///
    /// Every grid point starts from a clone of the pristine `chip`, so all
    /// points see an identical cell population (the paper's single
    /// "representative chip" methodology).
    ///
    /// # Panics
    /// Panics if either delta list is empty, or options are degenerate.
    pub fn explore(
        chip: &SimulatedChip,
        target: TargetConditions,
        deltas_interval: &[Ms],
        deltas_temp: &[f64],
        opts: ExploreOptions,
    ) -> Self {
        assert!(!deltas_interval.is_empty(), "need at least one interval delta");
        assert!(!deltas_temp.is_empty(), "need at least one temperature delta");
        assert!(opts.profile_iterations > 0, "need at least one iteration");

        // Build the recurring patterns' trial-plan lowerings once on the
        // pristine chip: the ground-truth run and every grid point profile
        // a clone of it, so the packed lanes are inherited instead of
        // being rebuilt per point. Outcome-neutral (all trial engines are
        // bit-identical); it only moves shared work out of the fan-out.
        let mut base = chip.clone();
        base.prewarm_lowerings(&PatternSet::Standard.stable_patterns());
        let chip = &base;

        let ground_truth = Self::establish_ground_truth(chip, target, opts);
        assert!(
            !ground_truth.is_empty(),
            "no failing cells at target conditions; raise the interval or chip capacity"
        );

        // Brute-force reference runtime (denominator of Fig. 10's contours).
        let brute = Self::measure_point(
            chip,
            target,
            ReachConditions::brute_force(),
            &ground_truth,
            opts,
            None,
        );

        // Every grid point profiles an independent clone of the pristine
        // chip, so points can be measured in parallel; the row-major output
        // order is preserved by par_map.
        let grid: Vec<ReachConditions> = deltas_temp
            .iter()
            .flat_map(|&dt| deltas_interval.iter().map(move |&di| ReachConditions::new(di, dt)))
            .collect();
        let points = reaper_exec::par_map(&grid, |&reach| {
            if reach.is_brute_force() {
                brute
            } else {
                Self::measure_point(chip, target, reach, &ground_truth, opts, Some(brute.runtime))
            }
        });

        Self {
            target,
            points,
            ground_truth_size: ground_truth.len(),
        }
    }

    fn establish_ground_truth(
        chip: &SimulatedChip,
        target: TargetConditions,
        opts: ExploreOptions,
    ) -> FailureProfile {
        match opts.ground_truth {
            GroundTruth::Analytic { min_prob } => FailureProfile::from_cells(
                chip.clone()
                    .failing_set_worst_case(target.interval, target.dram_temp(), min_prob),
            ),
            GroundTruth::Empirical { iterations } => {
                let mut harness =
                    TestHarness::new(chip.clone(), target.ambient, opts.seed ^ 0x61);
                let run = Profiler::brute_force(target, iterations, PatternSet::Standard)
                    .run(&mut harness);
                run.profile
            }
            GroundTruth::Direct { iterations } => {
                let mut chip = chip.clone();
                Profiler::direct_union(
                    &mut chip,
                    target.interval,
                    target.dram_temp(),
                    iterations,
                    &PatternSet::Standard,
                )
            }
        }
    }

    fn measure_point(
        chip: &SimulatedChip,
        target: TargetConditions,
        reach: ReachConditions,
        ground_truth: &FailureProfile,
        opts: ExploreOptions,
        brute_runtime: Option<Ms>,
    ) -> TradeoffPoint {
        // Coverage / FPR at fixed iterations (Fig. 9).
        let mut harness = TestHarness::new(chip.clone(), target.ambient, opts.seed);
        let run = Profiler::reach(target, reach, opts.profile_iterations, PatternSet::Standard)
            .run(&mut harness);
        let metrics = ProfileMetrics::evaluate(&run.profile, ground_truth);

        // Runtime to the coverage goal (Fig. 10). The paper counts whole
        // iterations ("the number of profiling iterations required", Eq. 9's
        // N_dp x N_it product), so runtime is quantized at iterations even
        // though the goal check runs per pattern; `patterns_to_goal` is kept
        // as a finer-grained observable.
        let mut harness = TestHarness::new(chip.clone(), target.ambient, opts.seed ^ 0x10);
        let profiler = Profiler::reach(target, reach, 1, PatternSet::Standard);
        let goal = profiler.run_to_coverage(
            &mut harness,
            ground_truth,
            opts.coverage_goal,
            opts.max_runtime_iterations,
        );
        let met = goal.met;
        let iterations_to_goal = num::to_u32(goal.run.iteration_count());
        // Eq. 9 runtime at these conditions (excluding thermal settling,
        // matching the paper's iteration-count-based runtime accounting).
        let (interval, _) = reach.apply_to(target);
        let per_iteration = (interval + harness.costs().pass_cost())
            * PatternSet::Standard.patterns_per_iteration() as f64;
        let runtime = per_iteration * iterations_to_goal as f64;

        let runtime_rel = match brute_runtime {
            Some(b) if b.is_positive() => runtime / b,
            _ => 1.0,
        };

        TradeoffPoint {
            reach,
            coverage: metrics.coverage,
            false_positive_rate: metrics.false_positive_rate,
            iterations_to_goal,
            patterns_to_goal: goal.patterns_executed,
            met_goal: met,
            runtime,
            runtime_rel,
        }
    }

    /// §6.1.2's selection rule: among points meeting `min_coverage` and
    /// `max_fpr`, the one with the smallest relative runtime. Returns `None`
    /// if no point qualifies.
    pub fn select(&self, min_coverage: f64, max_fpr: f64) -> Option<&TradeoffPoint> {
        self.points
            .iter()
            .filter(|p| p.coverage >= min_coverage && p.false_positive_rate <= max_fpr && p.met_goal)
            .min_by(|a, b| {
                a.runtime_rel
                    .partial_cmp(&b.runtime_rel)
                    .expect("invariant: runtimes are finite ratios of positive durations")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reaper_dram_model::{Celsius, Vendor};
    use reaper_retention::RetentionConfig;

    fn chip() -> SimulatedChip {
        SimulatedChip::new(
            RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 16),
            77,
        )
    }

    fn quick_opts() -> ExploreOptions {
        ExploreOptions {
            profile_iterations: 6,
            ground_truth: GroundTruth::Empirical { iterations: 12 },
            coverage_goal: 0.9,
            max_runtime_iterations: 32,
            seed: 5,
        }
    }

    #[test]
    fn reach_trades_fpr_for_coverage_and_speed() {
        let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
        let analysis = TradeoffAnalysis::explore(
            &chip(),
            target,
            &[Ms::ZERO, Ms::new(250.0)],
            &[0.0],
            quick_opts(),
        );
        assert_eq!(analysis.points.len(), 2);
        let brute = &analysis.points[0];
        let reach = &analysis.points[1];
        assert!(brute.reach.is_brute_force());
        // Reach covers at least as much, with more false positives, faster.
        assert!(
            reach.coverage >= brute.coverage - 0.02,
            "reach {} vs brute {}",
            reach.coverage,
            brute.coverage
        );
        assert!(reach.false_positive_rate > brute.false_positive_rate);
        assert!(
            reach.runtime_rel < 1.0,
            "reach should be faster: rel {}",
            reach.runtime_rel
        );
        assert!(reach.speedup() > 1.0);
    }

    #[test]
    fn temperature_reach_behaves_like_interval_reach() {
        let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
        let analysis = TradeoffAnalysis::explore(
            &chip(),
            target,
            &[Ms::ZERO],
            &[0.0, 5.0],
            quick_opts(),
        );
        let brute = &analysis.points[0];
        let hot = &analysis.points[1];
        assert!(hot.coverage >= brute.coverage - 0.02);
        assert!(hot.false_positive_rate > brute.false_positive_rate);
    }

    #[test]
    fn select_respects_fpr_budget() {
        let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
        let analysis = TradeoffAnalysis::explore(
            &chip(),
            target,
            &[Ms::ZERO, Ms::new(250.0), Ms::new(750.0)],
            &[0.0],
            quick_opts(),
        );
        // With a generous budget some reach point must win.
        let picked = analysis.select(0.5, 0.95).expect("a point qualifies");
        assert!(picked.runtime_rel <= 1.0);
        // With an impossible coverage bar, nothing qualifies.
        assert!(analysis.select(1.01, 1.0).is_none());
    }

    #[test]
    fn analytic_ground_truth_works() {
        let target = TargetConditions::new(Ms::new(1536.0), Celsius::new(45.0));
        let mut opts = quick_opts();
        opts.ground_truth = GroundTruth::Analytic { min_prob: 0.5 };
        let analysis =
            TradeoffAnalysis::explore(&chip(), target, &[Ms::new(500.0)], &[0.0], opts);
        assert!(analysis.ground_truth_size > 0);
        assert!(analysis.points[0].coverage > 0.9);
    }

    #[test]
    fn direct_ground_truth_works() {
        let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
        let mut opts = quick_opts();
        opts.ground_truth = GroundTruth::Direct { iterations: 12 };
        let analysis =
            TradeoffAnalysis::explore(&chip(), target, &[Ms::new(500.0)], &[0.0], opts);
        assert!(analysis.ground_truth_size > 0);
        // Profiling well above target must cover most of the direct truth.
        assert!(
            analysis.points[0].coverage > 0.8,
            "coverage {}",
            analysis.points[0].coverage
        );
    }

    #[test]
    #[should_panic(expected = "at least one interval delta")]
    fn rejects_empty_grid() {
        let target = TargetConditions::paper_example();
        TradeoffAnalysis::explore(&chip(), target, &[], &[0.0], quick_opts());
    }
}
