//! Property tests for the `FailureProfile` wire codec: round-trip over
//! arbitrary address sets (empty, singleton, dense, max-u64), and a
//! corruption fuzz pass asserting the decoder returns `Err` — never
//! panics — on mangled input (the P1 lint contract at the service's
//! network boundary).

// Fuzz offsets are reduced modulo small buffer lengths before narrowing;
// clippy's in-tests knobs do not cover cast lints.
#![allow(clippy::cast_possible_truncation)]

use proptest::prelude::*;
use reaper_core::FailureProfile;
use reaper_exec::rng::SplitMix64;

proptest! {
    #[test]
    fn roundtrip_arbitrary_sets(cells in proptest::collection::btree_set(any::<u64>(), 0..512)) {
        let p = FailureProfile::from_cells(cells.iter().copied());
        let bytes = p.to_bytes();
        let back = FailureProfile::from_bytes(&bytes).expect("valid encoding must decode");
        prop_assert_eq!(back, p);
    }

    #[test]
    fn roundtrip_edge_shapes(start in any::<u64>(), len in 0usize..256) {
        // Dense run starting anywhere, clamped so it can touch u64::MAX.
        let cells: Vec<u64> = (0..len as u64)
            .map(|i| start.saturating_add(i))
            .collect();
        let p = FailureProfile::from_cells(cells);
        let back = FailureProfile::from_bytes(&p.to_bytes()).expect("dense run decodes");
        prop_assert_eq!(back, p);
    }

    #[test]
    fn corrupted_inputs_error_instead_of_panicking(
        cells in proptest::collection::btree_set(any::<u64>(), 0..64),
        seed in any::<u64>(),
        flips in 1usize..8,
    ) {
        let valid = FailureProfile::from_cells(cells.iter().copied()).to_bytes();
        let mut rng = SplitMix64::new(seed);

        // Bit-flip corruption: may stay decodable (a flipped delta is
        // still a profile) but must never panic, and a decode that
        // succeeds must re-encode without panicking too.
        let mut flipped = valid.clone();
        for _ in 0..flips {
            let pos = (rng.next_u64() % flipped.len().max(1) as u64) as usize;
            if let Some(byte) = flipped.get_mut(pos) {
                *byte ^= 1 << (rng.next_u64() % 8);
            }
        }
        if let Ok(decoded) = FailureProfile::from_bytes(&flipped) {
            let _ = decoded.to_bytes();
        }

        // Truncation corruption: every strict prefix of a nonempty body
        // must be rejected.
        if !cells.is_empty() {
            let cut = (rng.next_u64() % valid.len() as u64) as usize;
            prop_assert!(FailureProfile::from_bytes(&valid[..cut]).is_err());
        }

        // Random-garbage corruption: arbitrary bytes after a forged magic.
        let mut garbage = b"RPF1".to_vec();
        for _ in 0..(rng.next_u64() % 64) {
            garbage.push((rng.next_u64() & 0xFF) as u8);
        }
        if let Ok(decoded) = FailureProfile::from_bytes(&garbage) {
            let _ = decoded.to_bytes();
        }
    }
}
