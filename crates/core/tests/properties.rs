//! Property-based tests of the REAPER core: metric identities, ECC model
//! monotonicity, longevity algebra, and overhead-model linearity.

use proptest::prelude::*;
use reaper_core::ecc::EccStrength;
use reaper_core::longevity::LongevityModel;
use reaper_core::metrics::ProfileMetrics;
use reaper_core::overhead::{ipc_with_overhead, OverheadModel};
use reaper_core::profile::FailureProfile;
use reaper_dram_model::Ms;

proptest! {
    #[test]
    fn metric_identities_hold(
        found in proptest::collection::btree_set(0u64..500, 0..100),
        truth in proptest::collection::btree_set(0u64..500, 0..100),
    ) {
        let f = FailureProfile::from_cells(found.iter().copied());
        let t = FailureProfile::from_cells(truth.iter().copied());
        let m = ProfileMetrics::evaluate(&f, &t);
        prop_assert_eq!(m.true_positives + m.false_positives, f.len());
        prop_assert_eq!(m.true_positives + m.missed, t.len());
        prop_assert!((0.0..=1.0).contains(&m.coverage));
        prop_assert!((0.0..=1.0).contains(&m.false_positive_rate));
        if !t.is_empty() {
            let cov = m.true_positives as f64 / t.len() as f64;
            prop_assert!((m.coverage - cov).abs() < 1e-12);
        }
    }

    #[test]
    fn growing_the_profile_never_lowers_coverage(
        base in proptest::collection::btree_set(0u64..300, 0..60),
        extra in proptest::collection::btree_set(0u64..300, 0..60),
        truth in proptest::collection::btree_set(0u64..300, 1..60),
    ) {
        let t = FailureProfile::from_cells(truth.iter().copied());
        let small = FailureProfile::from_cells(base.iter().copied());
        let mut big = small.clone();
        big.extend(extra.iter().copied());
        let m_small = ProfileMetrics::evaluate(&small, &t);
        let m_big = ProfileMetrics::evaluate(&big, &t);
        prop_assert!(m_big.coverage >= m_small.coverage);
    }

    #[test]
    fn uber_is_monotone_in_rber(
        k in 0u32..3,
        r1 in 1e-12..1e-3f64,
        factor in 1.01..100.0f64,
    ) {
        let ecc = EccStrength::new(64 + 8 * k, k);
        let r2 = (r1 * factor).min(1.0);
        prop_assert!(ecc.uber(r1) <= ecc.uber(r2));
    }

    #[test]
    fn stronger_ecc_never_hurts(r in 1e-10..1e-2f64) {
        let weaker = EccStrength::new(72, 1);
        let stronger = EccStrength::new(72, 2);
        prop_assert!(stronger.uber(r) <= weaker.uber(r));
    }

    #[test]
    fn tolerable_rber_inverts_uber(k in 0u32..3, exp in -16.0..-6.0f64) {
        let target = 10f64.powf(exp);
        let ecc = EccStrength::new(64 + 8 * k, k);
        let r = ecc.tolerable_rber(target);
        prop_assert!(ecc.uber(r) <= target * (1.0 + 1e-6));
        // Slightly above the bound must violate it.
        prop_assert!(ecc.uber((r * 1.01).min(1.0)) >= target * 0.98);
    }

    #[test]
    fn longevity_scales_inversely_with_accumulation(
        n in 10.0..1e5f64,
        c_frac in 0.0..0.9f64,
        a in 0.01..100.0f64,
        scale in 1.1..10.0f64,
    ) {
        let m1 = LongevityModel {
            tolerable_failures: n,
            missed_failures: n * c_frac,
            accumulation_per_hour: a,
        };
        let m2 = LongevityModel { accumulation_per_hour: a * scale, ..m1 };
        let t1 = m1.longevity().unwrap();
        let t2 = m2.longevity().unwrap();
        prop_assert!((t1.as_hours() / t2.as_hours() - scale).abs() < 1e-9 * scale);
    }

    #[test]
    fn eq9_round_time_is_linear_in_counts(
        interval in 1.0..5000.0f64,
        patterns in 1u32..16,
        iterations in 1u32..64,
        gbit_idx in 0usize..4,
    ) {
        let gbit = [8u32, 16, 32, 64][gbit_idx];
        let bytes = reaper_core::overhead::module_bytes(gbit);
        let one = OverheadModel::new(Ms::new(interval), 1, 1, bytes).round_time();
        let many = OverheadModel::new(Ms::new(interval), patterns, iterations, bytes).round_time();
        let expected = one.as_ms() * patterns as f64 * iterations as f64;
        prop_assert!((many.as_ms() - expected).abs() < 1e-6 * expected);
    }

    #[test]
    fn eq8_is_contractive(ipc in 0.0..100.0f64, frac in 0.0..1.0f64) {
        let real = ipc_with_overhead(ipc, frac);
        prop_assert!(real <= ipc);
        prop_assert!(real >= 0.0);
    }

    #[test]
    fn profile_set_algebra(
        a in proptest::collection::btree_set(0u64..200, 0..50),
        b in proptest::collection::btree_set(0u64..200, 0..50),
    ) {
        let pa = FailureProfile::from_cells(a.iter().copied());
        let pb = FailureProfile::from_cells(b.iter().copied());
        // |A| = |A∩B| + |A\B|
        prop_assert_eq!(pa.len(), pa.intersection_count(&pb) + pa.difference_count(&pb));
        // Union size = |A| + |B| - |A∩B|
        let mut u = pa.clone();
        u.union_with(&pb);
        prop_assert_eq!(u.len(), pa.len() + pb.len() - pa.intersection_count(&pb));
        // Symmetry of intersection.
        prop_assert_eq!(pa.intersection_count(&pb), pb.intersection_count(&pa));
    }
}
