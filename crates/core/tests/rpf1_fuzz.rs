//! Decoder-hardening fuzz suite for the `RPF1` wire codec, extending
//! `profile_codec.rs` with the *silent misdecode* dimension: beyond
//! never panicking, the decoder must accept exactly one wire form per
//! cell set. Every input it accepts must re-encode byte-identically —
//! so a mutated message either errors or *is* the canonical encoding of
//! the (different) profile it decodes to. Nothing decodes to bytes it
//! didn't come from.

// Fuzz offsets are reduced modulo small buffer lengths before
// narrowing; clippy's in-tests knobs do not cover cast lints.
#![allow(clippy::cast_possible_truncation)]

use proptest::prelude::*;
use reaper_core::{FailureProfile, ProfileCodecError};
use reaper_exec::rng::SplitMix64;
use reaper_retention::delta::push_varint;

/// The canonical-acceptance oracle: decode, and if that succeeds the
/// re-encoding must equal the input bytes exactly.
fn assert_canonical_or_err(bytes: &[u8]) {
    if let Ok(profile) = FailureProfile::from_bytes(bytes) {
        assert_eq!(
            profile.to_bytes(),
            bytes,
            "accepted a non-canonical RPF1 encoding"
        );
    }
}

proptest! {
    #[test]
    fn every_single_byte_mutation_errors_or_stays_canonical(
        cells in proptest::collection::btree_set(any::<u64>(), 0..48),
        mask in 1u8..=255,
    ) {
        let valid = FailureProfile::from_cells(cells.iter().copied()).to_bytes();
        // Systematic sweep: every byte position, one XOR mask per case.
        for pos in 0..valid.len() {
            let mut mutated = valid.clone();
            if let Some(byte) = mutated.get_mut(pos) {
                *byte ^= mask;
            }
            assert_canonical_or_err(&mutated);
        }
    }

    #[test]
    fn every_truncation_of_a_nonempty_profile_errors(
        cells in proptest::collection::btree_set(any::<u64>(), 1..48),
    ) {
        let valid = FailureProfile::from_cells(cells.iter().copied()).to_bytes();
        for cut in 0..valid.len() {
            let prefix = valid.get(..cut).expect("cut is in range");
            prop_assert!(
                FailureProfile::from_bytes(prefix).is_err(),
                "strict prefix of length {cut} must not decode"
            );
        }
    }

    #[test]
    fn random_bodies_after_a_forged_magic_never_misdecode(
        seed in any::<u64>(),
        len in 0usize..96,
    ) {
        let mut rng = SplitMix64::new(seed);
        let mut forged = b"RPF1".to_vec();
        for _ in 0..len {
            forged.push((rng.next_u64() & 0xFF) as u8);
        }
        assert_canonical_or_err(&forged);
    }

    #[test]
    fn appended_trailing_bytes_are_rejected(
        cells in proptest::collection::btree_set(any::<u64>(), 0..48),
        extra in 1usize..8,
    ) {
        let mut padded = FailureProfile::from_cells(cells.iter().copied()).to_bytes();
        padded.extend(std::iter::repeat_n(0u8, extra));
        prop_assert_eq!(
            FailureProfile::from_bytes(&padded),
            Err(ProfileCodecError::TrailingBytes)
        );
    }
}

/// Hand-crafted varint pathologies the random sweeps are unlikely to
/// hit: overflow past 64 bits and non-minimal ("overlong") encodings.
#[test]
fn varint_pathologies_error_cleanly() {
    // 10-byte varint whose final byte carries more than the one legal
    // bit (value would need 65 bits).
    let mut overflow = b"RPF1".to_vec();
    push_varint(&mut overflow, 1); // count = 1
    overflow.extend_from_slice(&[0xFF; 9]);
    overflow.push(0x02);
    assert_eq!(
        FailureProfile::from_bytes(&overflow),
        Err(ProfileCodecError::VarintOverflow)
    );

    // 11-byte varint: continuation past the widest legal length.
    let mut eleven = b"RPF1".to_vec();
    push_varint(&mut eleven, 1);
    eleven.extend_from_slice(&[0x80; 10]);
    eleven.push(0x01);
    assert_eq!(
        FailureProfile::from_bytes(&eleven),
        Err(ProfileCodecError::VarintOverflow)
    );

    // Overlong zero (`0x80 0x00`) in the count position: same value as
    // `0x00`, different bytes — exactly the two-encodings shape the
    // canonical rule exists to forbid.
    let overlong_count = [b'R', b'P', b'F', b'1', 0x80, 0x00];
    assert_eq!(
        FailureProfile::from_bytes(&overlong_count),
        Err(ProfileCodecError::NonCanonicalVarint)
    );

    // Overlong cell delta (`0x81 0x00` = 1): count says one cell.
    let mut overlong_cell = b"RPF1".to_vec();
    push_varint(&mut overlong_cell, 1);
    overlong_cell.extend_from_slice(&[0x81, 0x00]);
    assert_eq!(
        FailureProfile::from_bytes(&overlong_cell),
        Err(ProfileCodecError::NonCanonicalVarint)
    );

    // The minimal encodings of the same values decode fine.
    let minimal = [b'R', b'P', b'F', b'1', 0x00];
    assert!(FailureProfile::from_bytes(&minimal).is_ok());
    let mut one_cell = b"RPF1".to_vec();
    push_varint(&mut one_cell, 1);
    push_varint(&mut one_cell, 1);
    let decoded = FailureProfile::from_bytes(&one_cell).expect("minimal form decodes");
    assert_eq!(decoded.iter().collect::<Vec<_>>(), vec![1]);
}

/// `u64::MAX` addresses sit on the overflow boundary of the running
/// `prev + 1 + delta` sum; both sides of the boundary must behave.
#[test]
fn address_overflow_boundary_is_exact() {
    // Legal: the last cell is exactly u64::MAX.
    let top = FailureProfile::from_cells([0, u64::MAX]);
    let bytes = top.to_bytes();
    assert_eq!(
        FailureProfile::from_bytes(&bytes).expect("max address decodes"),
        top
    );

    // Illegal: a second cell after u64::MAX would wrap. Craft it by
    // appending one more zero-delta cell and bumping the count.
    let mut wrapped = b"RPF1".to_vec();
    push_varint(&mut wrapped, 3);
    push_varint(&mut wrapped, 0); // cell 0
    push_varint(&mut wrapped, u64::MAX - 1); // cell u64::MAX
    push_varint(&mut wrapped, 0); // would be u64::MAX + 1
    assert_eq!(
        FailureProfile::from_bytes(&wrapped),
        Err(ProfileCodecError::AddressOverflow)
    );
}
