//! DRAM chip and module geometry, and cell addressing.
//!
//! Matches the paper's evaluated configuration (Table 2): LPDDR4 with 8
//! banks/rank, 32K–256K rows per bank, 2 KB row buffer, and modules of 32
//! chips with per-chip densities from 8 Gb to 64 Gb (§7.3).

/// Geometry of a single DRAM chip.
///
/// Density = `banks * rows_per_bank * row_bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChipGeometry {
    banks: u32,
    rows_per_bank: u32,
    row_bits: u32,
}

impl ChipGeometry {
    /// Creates a geometry from explicit dimensions.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(banks: u32, rows_per_bank: u32, row_bits: u32) -> Self {
        assert!(banks > 0, "banks must be nonzero");
        assert!(rows_per_bank > 0, "rows_per_bank must be nonzero");
        assert!(row_bits > 0, "row_bits must be nonzero");
        Self {
            banks,
            rows_per_bank,
            row_bits,
        }
    }

    /// An LPDDR4 chip of the given density in gigabits.
    ///
    /// Uses the paper's Table 2 shape: 8 banks, a 2 KB (16 Kb) row buffer,
    /// and 32K–256K rows/bank depending on density. Supported densities:
    /// 8, 16, 32, 64 Gb.
    ///
    /// # Errors
    /// Returns `Err` with the unsupported density otherwise.
    pub fn lpddr4_gb(density_gbit: u32) -> Result<Self, UnsupportedDensity> {
        let rows_per_bank = match density_gbit {
            8 => 64 * 1024,
            16 => 128 * 1024,
            32 => 256 * 1024,
            64 => 512 * 1024,
            other => return Err(UnsupportedDensity(other)),
        };
        // 8 banks * rows * 16 Kb row = density.
        Ok(Self::new(8, rows_per_bank, 16 * 1024))
    }

    /// A small geometry for fast unit tests and Monte-Carlo population
    /// studies: 8 banks × 1024 rows × 8192 bits = 64 Mb.
    pub fn small() -> Self {
        Self::new(8, 1024, 8 * 1024)
    }

    /// Number of banks.
    pub fn banks(self) -> u32 {
        self.banks
    }

    /// Rows per bank.
    pub fn rows_per_bank(self) -> u32 {
        self.rows_per_bank
    }

    /// Bits per row (row-buffer size in bits).
    pub fn row_bits(self) -> u32 {
        self.row_bits
    }

    /// Total rows in the chip.
    pub fn total_rows(self) -> u64 {
        self.banks as u64 * self.rows_per_bank as u64
    }

    /// Total cell count (= density in bits).
    pub fn density_bits(self) -> u64 {
        self.total_rows() * self.row_bits as u64
    }

    /// Density in gigabits (rounded down).
    pub fn density_gbit(self) -> u64 {
        self.density_bits() >> 30
    }

    /// Converts a dense linear cell index into a [`CellAddr`].
    ///
    /// # Panics
    /// Panics if `index >= density_bits()`.
    pub fn cell_at(self, index: u64) -> CellAddr {
        assert!(
            index < self.density_bits(),
            "cell index {index} out of range for {} bits",
            self.density_bits()
        );
        let col = (index % self.row_bits as u64) as u32;
        let row_linear = index / self.row_bits as u64;
        let row = (row_linear % self.rows_per_bank as u64) as u32;
        let bank = (row_linear / self.rows_per_bank as u64) as u32;
        CellAddr { bank, row, col }
    }

    /// Converts a [`CellAddr`] back into its dense linear index.
    ///
    /// # Panics
    /// Panics if the address is outside this geometry.
    pub fn linear_index(self, addr: CellAddr) -> u64 {
        assert!(addr.bank < self.banks, "bank out of range");
        assert!(addr.row < self.rows_per_bank, "row out of range");
        assert!(addr.col < self.row_bits, "col out of range");
        ((addr.bank as u64 * self.rows_per_bank as u64) + addr.row as u64) * self.row_bits as u64
            + addr.col as u64
    }
}

/// Error returned by [`ChipGeometry::lpddr4_gb`] for densities outside the
/// paper's 8–64 Gb sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedDensity(pub u32);

impl core::fmt::Display for UnsupportedDensity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "unsupported LPDDR4 density: {} Gb (supported: 8, 16, 32, 64)", self.0)
    }
}

impl std::error::Error for UnsupportedDensity {}

/// Physical coordinates of one DRAM cell within a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellAddr {
    /// Bank index.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// Column (bit) index within the row.
    pub col: u32,
}

impl core::fmt::Display for CellAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "b{}r{}c{}", self.bank, self.row, self.col)
    }
}

/// Geometry of a DRAM module: `chips` identical chips.
///
/// The paper's §7 evaluation uses modules of 32 chips of 8–64 Gb each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleGeometry {
    chip: ChipGeometry,
    chips: u32,
}

impl ModuleGeometry {
    /// Creates a module of `chips` chips with identical geometry.
    ///
    /// # Panics
    /// Panics if `chips == 0`.
    pub fn new(chip: ChipGeometry, chips: u32) -> Self {
        assert!(chips > 0, "module needs at least one chip");
        Self { chip, chips }
    }

    /// Geometry of each chip.
    pub fn chip(self) -> ChipGeometry {
        self.chip
    }

    /// Number of chips in the module.
    pub fn chips(self) -> u32 {
        self.chips
    }

    /// Total module capacity in bits.
    pub fn capacity_bits(self) -> u64 {
        self.chip.density_bits() * self.chips as u64
    }

    /// Total module capacity in bytes.
    pub fn capacity_bytes(self) -> u64 {
        self.capacity_bits() / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpddr4_densities() {
        for gb in [8u32, 16, 32, 64] {
            let g = ChipGeometry::lpddr4_gb(gb).unwrap();
            assert_eq!(g.density_gbit(), gb as u64, "density {gb}");
            assert_eq!(g.banks(), 8);
            assert_eq!(g.row_bits(), 16 * 1024); // 2KB row buffer
        }
        assert!(ChipGeometry::lpddr4_gb(12).is_err());
        let err = ChipGeometry::lpddr4_gb(3).unwrap_err();
        assert!(err.to_string().contains("3 Gb"));
    }

    #[test]
    fn rows_per_bank_in_table2_range() {
        // Table 2: 32K-256K rows/bank. Our 64Gb stretch uses 512K (the
        // paper's table tops at 256K rows for the configurations simulated).
        let g8 = ChipGeometry::lpddr4_gb(8).unwrap();
        assert!(g8.rows_per_bank() >= 32 * 1024);
        let g32 = ChipGeometry::lpddr4_gb(32).unwrap();
        assert_eq!(g32.rows_per_bank(), 256 * 1024);
    }

    #[test]
    fn small_geometry_is_64mbit() {
        assert_eq!(ChipGeometry::small().density_bits(), 64 << 20);
    }

    #[test]
    fn cell_addressing_roundtrip() {
        let g = ChipGeometry::small();
        for &idx in &[0u64, 1, 8191, 8192, 12_345_678, g.density_bits() - 1] {
            let addr = g.cell_at(idx);
            assert_eq!(g.linear_index(addr), idx, "idx {idx}");
        }
    }

    #[test]
    fn cell_at_decomposition() {
        let g = ChipGeometry::new(2, 4, 8);
        // index 0 -> bank0 row0 col0
        assert_eq!(g.cell_at(0), CellAddr { bank: 0, row: 0, col: 0 });
        // one full row later
        assert_eq!(g.cell_at(8), CellAddr { bank: 0, row: 1, col: 0 });
        // one full bank later (4 rows * 8 cols = 32)
        assert_eq!(g.cell_at(32), CellAddr { bank: 1, row: 0, col: 0 });
        assert_eq!(g.cell_at(63), CellAddr { bank: 1, row: 3, col: 7 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cell_at_rejects_overflow() {
        let g = ChipGeometry::new(1, 1, 8);
        g.cell_at(8);
    }

    #[test]
    #[should_panic(expected = "row out of range")]
    fn linear_index_validates() {
        let g = ChipGeometry::new(1, 1, 8);
        g.linear_index(CellAddr { bank: 0, row: 5, col: 0 });
    }

    #[test]
    fn module_capacity() {
        // Paper §7: 32 chips of 8Gb = 32GB module.
        let m = ModuleGeometry::new(ChipGeometry::lpddr4_gb(8).unwrap(), 32);
        assert_eq!(m.capacity_bytes(), 32 * (8u64 << 30) / 8);
        assert_eq!(m.chips(), 32);
        assert_eq!(m.chip().density_gbit(), 8);
    }

    #[test]
    fn cell_addr_display() {
        let a = CellAddr { bank: 1, row: 2, col: 3 };
        assert_eq!(a.to_string(), "b1r2c3");
    }
}
