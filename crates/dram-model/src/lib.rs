//! Shared DRAM modeling vocabulary for the REAPER reproduction.
//!
//! This crate defines the types every other crate speaks in:
//!
//! * physical units — [`Ms`] (milliseconds) and [`Celsius`] newtypes with the
//!   arithmetic the tradeoff analysis needs,
//! * the three anonymized DRAM [`Vendor`]s and their published temperature
//!   coefficients (paper Eq. 1),
//! * DRAM [`geometry`] (banks / rows / columns, chip densities from 8 Gb to
//!   64 Gb, modules of 32 chips as in the paper's §7 evaluation),
//! * cell addressing ([`CellAddr`]) with dense linear indices,
//! * the retention-test [`DataPattern`]s the paper profiles with (solid,
//!   checkerboard, row/column stripes, walking 1s/0s, random, and inverses —
//!   §3.2).
//!
//! # Example
//!
//! ```
//! use reaper_dram_model::{ChipGeometry, DataPattern, Ms, Vendor};
//!
//! let geom = ChipGeometry::lpddr4_gb(8).unwrap();
//! assert_eq!(geom.density_bits(), 8 << 30);
//!
//! let target = Ms::new(1024.0);
//! let reach = target + Ms::new(250.0); // the paper's headline reach offset
//! assert_eq!(reach, Ms::new(1274.0));
//!
//! // Vendor A's failure rate scales as e^{0.22 ΔT} (Eq. 1).
//! assert!((Vendor::A.temperature_coefficient() - 0.22).abs() < 1e-12);
//!
//! let dp = DataPattern::checkerboard();
//! assert_ne!(dp.bit_at(0, 0), dp.bit_at(0, 1));
//! ```

// Deny-wall escapes (DESIGN.md §"Static analysis & determinism
// invariants"): `reaper-lint` enforces the finer-grained forms of these
// lints — P1 requires `invariant: `-prefixed expect messages and audits
// indexing in the hot-path crates, C1 bans bare casts there — with
// per-site `// lint: allow` markers. Clippy's blanket versions are
// allowed at the crate root so `-D warnings` stays green without
// annotating every audited site twice.
#![allow(clippy::cast_possible_truncation)]
// Tests additionally assert exact float equality on purpose — bit-identical
// outputs are the determinism contract, and clippy.toml has no in-tests
// knob for these lints.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod geometry;
pub mod pattern;
pub mod units;
pub mod vendor;

pub use geometry::{CellAddr, ChipGeometry, ModuleGeometry};
pub use pattern::{DataPattern, PatternFamily};
pub use units::{Celsius, Ms};
pub use vendor::Vendor;
