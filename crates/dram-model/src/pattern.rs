//! Retention-test data patterns.
//!
//! The paper profiles with "solid 1s and 0s, checkerboards, row/column
//! stripes, walking 1s/0s, random data, and their inverses" (§3.2), i.e.
//! six pattern families and their bitwise inverses per iteration. Each
//! pattern is a deterministic function from cell coordinates to the stored
//! bit, so simulated chips can evaluate data-pattern-dependence without
//! materializing terabits of state.

/// The six pattern families of the paper's test set (§3.2, Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatternFamily {
    /// All cells store the same value.
    Solid,
    /// Alternating bits in both row and column direction.
    Checkerboard,
    /// Whole rows alternate between all-0 and all-1.
    RowStripe,
    /// Whole columns alternate between 0 and 1.
    ColStripe,
    /// A single set bit walks through a window of otherwise-clear bits.
    Walking,
    /// Pseudorandom data, deterministic in a seed.
    Random,
}

impl PatternFamily {
    /// All six families in canonical order.
    pub const ALL: [PatternFamily; 6] = [
        PatternFamily::Solid,
        PatternFamily::Checkerboard,
        PatternFamily::RowStripe,
        PatternFamily::ColStripe,
        PatternFamily::Walking,
        PatternFamily::Random,
    ];

    /// Short name for figure legends.
    pub fn name(self) -> &'static str {
        match self {
            PatternFamily::Solid => "solid",
            PatternFamily::Checkerboard => "checkerboard",
            PatternFamily::RowStripe => "row_stripe",
            PatternFamily::ColStripe => "col_stripe",
            PatternFamily::Walking => "walking",
            PatternFamily::Random => "random",
        }
    }
}

impl core::fmt::Display for PatternFamily {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Period of the walking-1s/0s pattern window.
const WALK_PERIOD: u64 = 8;

/// A concrete data pattern: a family, an optional inversion, and a
/// family-specific parameter (walking phase or random seed).
///
/// # Example
/// ```
/// use reaper_dram_model::DataPattern;
///
/// let cb = DataPattern::checkerboard();
/// assert!(cb.bit_at(0, 0) != cb.bit_at(0, 1)); // alternates along a row
/// assert!(cb.bit_at(0, 0) != cb.bit_at(1, 0)); // and along a column
/// assert_eq!(cb.inverse().bit_at(0, 0), !cb.bit_at(0, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataPattern {
    family: PatternFamily,
    inverted: bool,
    /// Walking phase for `Walking`, RNG seed for `Random`, unused otherwise.
    param: u64,
}

impl DataPattern {
    /// Solid all-zeros pattern.
    pub fn solid0() -> Self {
        Self {
            family: PatternFamily::Solid,
            inverted: false,
            param: 0,
        }
    }

    /// Solid all-ones pattern (the inverse of [`DataPattern::solid0`]).
    pub fn solid1() -> Self {
        Self::solid0().inverse()
    }

    /// Checkerboard pattern.
    pub fn checkerboard() -> Self {
        Self {
            family: PatternFamily::Checkerboard,
            inverted: false,
            param: 0,
        }
    }

    /// Row-stripe pattern (even rows 0, odd rows 1).
    pub fn row_stripe() -> Self {
        Self {
            family: PatternFamily::RowStripe,
            inverted: false,
            param: 0,
        }
    }

    /// Column-stripe pattern (even columns 0, odd columns 1).
    pub fn col_stripe() -> Self {
        Self {
            family: PatternFamily::ColStripe,
            inverted: false,
            param: 0,
        }
    }

    /// Walking-1s pattern with the given phase: one set bit per
    /// 8-bit window, at a position shifted by `phase`.
    pub fn walking1(phase: u64) -> Self {
        Self {
            family: PatternFamily::Walking,
            inverted: false,
            param: phase,
        }
    }

    /// Walking-0s pattern (inverse of walking-1s) with the given phase.
    pub fn walking0(phase: u64) -> Self {
        Self::walking1(phase).inverse()
    }

    /// Pseudorandom pattern deterministic in `seed`.
    pub fn random(seed: u64) -> Self {
        Self {
            family: PatternFamily::Random,
            inverted: false,
            param: seed,
        }
    }

    /// The bitwise inverse of this pattern.
    pub fn inverse(self) -> Self {
        Self {
            inverted: !self.inverted,
            ..self
        }
    }

    /// The pattern family.
    pub fn family(self) -> PatternFamily {
        self.family
    }

    /// Whether the pattern is the inverted member of its pair.
    pub fn is_inverted(self) -> bool {
        self.inverted
    }

    /// Family-specific parameter (walking phase or random seed).
    pub fn param(self) -> u64 {
        self.param
    }

    /// The stored bit at global `row` (linear across banks) and `col`.
    pub fn bit_at(self, row: u64, col: u32) -> bool {
        let base = match self.family {
            PatternFamily::Solid => false,
            PatternFamily::Checkerboard => (row ^ col as u64) & 1 == 1,
            PatternFamily::RowStripe => row & 1 == 1,
            PatternFamily::ColStripe => col as u64 & 1 == 1,
            PatternFamily::Walking => (col as u64 + self.param).is_multiple_of(WALK_PERIOD),
            PatternFamily::Random => {
                splitmix64(self.param ^ row.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ col as u64) & 1
                    == 1
            }
        };
        base ^ self.inverted
    }

    /// The paper's standard profiling set: six families and their inverses
    /// (12 patterns per iteration). The random member's seed varies with
    /// `iteration` so repeated iterations explore new random data, as a real
    /// profiler would.
    pub fn standard_set(iteration: u64) -> Vec<DataPattern> {
        let base = [
            DataPattern::solid0(),
            DataPattern::checkerboard(),
            DataPattern::row_stripe(),
            DataPattern::col_stripe(),
            DataPattern::walking1(iteration % WALK_PERIOD),
            DataPattern::random(0xC0FFEE ^ iteration),
        ];
        base.iter()
            .flat_map(|&p| [p, p.inverse()])
            .collect()
    }
}

impl core::fmt::Display for DataPattern {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.inverted {
            write!(f, "~{}", self.family)
        } else {
            write!(f, "{}", self.family)
        }
    }
}

/// SplitMix64 hash — cheap, deterministic bit mixing for the random pattern.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solid_patterns() {
        let s0 = DataPattern::solid0();
        let s1 = DataPattern::solid1();
        for row in 0..4u64 {
            for col in 0..4u32 {
                assert!(!s0.bit_at(row, col));
                assert!(s1.bit_at(row, col));
            }
        }
    }

    #[test]
    fn checkerboard_alternates_both_axes() {
        let cb = DataPattern::checkerboard();
        assert_ne!(cb.bit_at(0, 0), cb.bit_at(0, 1));
        assert_ne!(cb.bit_at(0, 0), cb.bit_at(1, 0));
        assert_eq!(cb.bit_at(0, 0), cb.bit_at(1, 1));
    }

    #[test]
    fn stripes() {
        let rs = DataPattern::row_stripe();
        assert!(!rs.bit_at(0, 5));
        assert!(rs.bit_at(1, 5));
        assert!(rs.bit_at(1, 6)); // constant along a row

        let cs = DataPattern::col_stripe();
        assert!(!cs.bit_at(7, 0));
        assert!(cs.bit_at(7, 1));
        assert!(cs.bit_at(8, 1)); // constant along a column
    }

    #[test]
    fn walking_has_one_bit_per_window() {
        let w = DataPattern::walking1(0);
        let set: Vec<u32> = (0..16).filter(|&c| w.bit_at(0, c)).collect();
        assert_eq!(set, vec![0, 8]);
        let w3 = DataPattern::walking1(3);
        assert!(w3.bit_at(0, 5)); // (5 + 3) % 8 == 0
        assert!(!w3.bit_at(0, 0));
    }

    #[test]
    fn walking0_is_inverse_of_walking1() {
        let w1 = DataPattern::walking1(2);
        let w0 = DataPattern::walking0(2);
        for c in 0..32 {
            assert_eq!(w0.bit_at(0, c), !w1.bit_at(0, c));
        }
    }

    #[test]
    fn random_is_deterministic_and_seed_sensitive() {
        let a = DataPattern::random(1);
        let b = DataPattern::random(1);
        let c = DataPattern::random(2);
        let bits_a: Vec<bool> = (0..64).map(|i| a.bit_at(3, i)).collect();
        let bits_b: Vec<bool> = (0..64).map(|i| b.bit_at(3, i)).collect();
        let bits_c: Vec<bool> = (0..64).map(|i| c.bit_at(3, i)).collect();
        assert_eq!(bits_a, bits_b);
        assert_ne!(bits_a, bits_c);
    }

    #[test]
    fn random_is_roughly_balanced() {
        let p = DataPattern::random(99);
        let ones: usize = (0..64u64)
            .flat_map(|r| (0..64u32).map(move |c| (r, c)))
            .filter(|&(r, c)| p.bit_at(r, c))
            .count();
        let frac = ones as f64 / 4096.0;
        assert!((0.45..0.55).contains(&frac), "ones fraction {frac}");
    }

    #[test]
    fn inverse_flips_every_bit() {
        for p in DataPattern::standard_set(0) {
            let q = p.inverse();
            for row in 0..8u64 {
                for col in 0..8u32 {
                    assert_eq!(q.bit_at(row, col), !p.bit_at(row, col), "{p} at {row},{col}");
                }
            }
        }
    }

    #[test]
    fn double_inverse_is_identity() {
        let p = DataPattern::checkerboard();
        assert_eq!(p.inverse().inverse(), p);
    }

    #[test]
    fn standard_set_is_six_families_and_inverses() {
        let set = DataPattern::standard_set(0);
        assert_eq!(set.len(), 12);
        let inverted = set.iter().filter(|p| p.is_inverted()).count();
        assert_eq!(inverted, 6);
        for fam in PatternFamily::ALL {
            assert_eq!(
                set.iter().filter(|p| p.family() == fam).count(),
                2,
                "family {fam}"
            );
        }
    }

    #[test]
    fn standard_set_random_seed_varies_by_iteration() {
        let s0 = DataPattern::standard_set(0);
        let s1 = DataPattern::standard_set(1);
        let r0 = s0.iter().find(|p| p.family() == PatternFamily::Random).unwrap();
        let r1 = s1.iter().find(|p| p.family() == PatternFamily::Random).unwrap();
        assert_ne!(r0.param(), r1.param());
    }

    #[test]
    fn display_marks_inversion() {
        assert_eq!(DataPattern::checkerboard().to_string(), "checkerboard");
        assert_eq!(DataPattern::checkerboard().inverse().to_string(), "~checkerboard");
    }
}
