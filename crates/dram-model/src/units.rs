//! Physical-unit newtypes: milliseconds and degrees Celsius.
//!
//! The reach-profiling tradeoff space is a plane of (Δ refresh interval,
//! Δ temperature); keeping both quantities in distinct newtypes prevents the
//! classic "was that seconds or milliseconds?" class of bug throughout the
//! workspace (C-NEWTYPE).

use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A span of time in milliseconds.
///
/// Used for refresh intervals (`tREFI` sweeps from 64 ms to 4096 ms in the
/// paper), profiling runtimes, and profile longevity.
///
/// # Example
/// ```
/// use reaper_dram_model::Ms;
/// let t = Ms::new(64.0) * 16.0;
/// assert_eq!(t, Ms::new(1024.0));
/// assert!((t.as_secs() - 1.024).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Ms(f64);

impl Ms {
    /// Zero milliseconds.
    pub const ZERO: Ms = Ms(0.0);

    /// Creates a duration of `ms` milliseconds.
    ///
    /// # Panics
    /// Panics if `ms` is NaN.
    pub fn new(ms: f64) -> Self {
        assert!(!ms.is_nan(), "Ms cannot be NaN");
        Ms(ms)
    }

    /// Creates a duration from seconds.
    pub fn from_secs(secs: f64) -> Self {
        Ms::new(secs * 1e3)
    }

    /// Creates a duration from hours.
    pub fn from_hours(hours: f64) -> Self {
        Ms::new(hours * 3_600_000.0)
    }

    /// Creates a duration from days.
    pub fn from_days(days: f64) -> Self {
        Ms::from_hours(days * 24.0)
    }

    /// The value in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0
    }

    /// The value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 / 1e3
    }

    /// The value in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3_600_000.0
    }

    /// The value in days.
    pub fn as_days(self) -> f64 {
        self.as_hours() / 24.0
    }

    /// True if the duration is greater than zero.
    pub fn is_positive(self) -> bool {
        self.0 > 0.0
    }

    /// Clamps negative durations to zero.
    pub fn max_zero(self) -> Self {
        Ms(self.0.max(0.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Ms) -> Ms {
        Ms(self.0.min(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Ms) -> Ms {
        Ms(self.0.max(other.0))
    }
}

impl Add for Ms {
    type Output = Ms;
    fn add(self, rhs: Ms) -> Ms {
        Ms(self.0 + rhs.0)
    }
}

impl AddAssign for Ms {
    fn add_assign(&mut self, rhs: Ms) {
        self.0 += rhs.0;
    }
}

impl Sub for Ms {
    type Output = Ms;
    fn sub(self, rhs: Ms) -> Ms {
        Ms(self.0 - rhs.0)
    }
}

impl SubAssign for Ms {
    fn sub_assign(&mut self, rhs: Ms) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Ms {
    type Output = Ms;
    fn mul(self, rhs: f64) -> Ms {
        Ms(self.0 * rhs)
    }
}

impl Div<f64> for Ms {
    type Output = Ms;
    fn div(self, rhs: f64) -> Ms {
        Ms(self.0 / rhs)
    }
}

impl Div<Ms> for Ms {
    /// Ratio of two durations (dimensionless).
    type Output = f64;
    fn div(self, rhs: Ms) -> f64 {
        self.0 / rhs.0
    }
}

impl Neg for Ms {
    type Output = Ms;
    fn neg(self) -> Ms {
        Ms(-self.0)
    }
}

impl core::fmt::Display for Ms {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.0.abs() >= 1e3 {
            write!(f, "{:.3}s", self.as_secs())
        } else {
            write!(f, "{:.1}ms", self.0)
        }
    }
}

/// A temperature in degrees Celsius.
///
/// The paper's characterization spans 40–55 °C ambient with the DRAM held
/// 15 °C above ambient; reach profiling manipulates ΔT relative to a target.
///
/// # Example
/// ```
/// use reaper_dram_model::Celsius;
/// let target = Celsius::new(45.0);
/// let reach = target + 5.0;
/// assert_eq!(reach.degrees(), 50.0);
/// assert_eq!(reach - target, 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(f64);

impl Celsius {
    /// Creates a temperature of `deg` degrees Celsius.
    ///
    /// # Panics
    /// Panics if `deg` is NaN.
    pub fn new(deg: f64) -> Self {
        assert!(!deg.is_nan(), "Celsius cannot be NaN");
        Celsius(deg)
    }

    /// The temperature in degrees Celsius.
    pub fn degrees(self) -> f64 {
        self.0
    }

    /// Clamps the temperature to the inclusive range `[lo, hi]`.
    pub fn clamp(self, lo: Celsius, hi: Celsius) -> Celsius {
        Celsius(self.0.clamp(lo.0, hi.0))
    }
}

impl Add<f64> for Celsius {
    type Output = Celsius;
    fn add(self, delta: f64) -> Celsius {
        Celsius(self.0 + delta)
    }
}

impl Sub<f64> for Celsius {
    type Output = Celsius;
    fn sub(self, delta: f64) -> Celsius {
        Celsius(self.0 - delta)
    }
}

impl Sub for Celsius {
    /// Temperature difference in degrees.
    type Output = f64;
    fn sub(self, rhs: Celsius) -> f64 {
        self.0 - rhs.0
    }
}

impl core::fmt::Display for Celsius {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.2}°C", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_constructors_and_conversions() {
        assert_eq!(Ms::from_secs(1.5).as_ms(), 1500.0);
        assert_eq!(Ms::from_hours(2.0).as_secs(), 7200.0);
        assert_eq!(Ms::from_days(1.0).as_hours(), 24.0);
        assert!((Ms::new(2304.0).as_days() - 2304.0 / 86_400_000.0).abs() < 1e-18);
    }

    #[test]
    fn ms_arithmetic() {
        let a = Ms::new(100.0);
        let b = Ms::new(50.0);
        assert_eq!(a + b, Ms::new(150.0));
        assert_eq!(a - b, Ms::new(50.0));
        assert_eq!(a * 2.0, Ms::new(200.0));
        assert_eq!(a / 4.0, Ms::new(25.0));
        assert_eq!(a / b, 2.0);
        assert_eq!(-a, Ms::new(-100.0));
        let mut c = a;
        c += b;
        c -= Ms::new(25.0);
        assert_eq!(c, Ms::new(125.0));
    }

    #[test]
    fn ms_ordering_and_clamps() {
        assert!(Ms::new(64.0) < Ms::new(128.0));
        assert!(Ms::new(-5.0).max_zero() == Ms::ZERO);
        assert!(Ms::new(5.0).is_positive());
        assert!(!Ms::ZERO.is_positive());
        assert_eq!(Ms::new(3.0).min(Ms::new(4.0)), Ms::new(3.0));
        assert_eq!(Ms::new(3.0).max(Ms::new(4.0)), Ms::new(4.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ms_rejects_nan() {
        Ms::new(f64::NAN);
    }

    #[test]
    fn ms_display_switches_units() {
        assert_eq!(Ms::new(64.0).to_string(), "64.0ms");
        assert_eq!(Ms::new(2048.0).to_string(), "2.048s");
    }

    #[test]
    fn celsius_arithmetic_and_display() {
        let t = Celsius::new(45.0);
        assert_eq!((t + 10.0).degrees(), 55.0);
        assert_eq!((t - 5.0).degrees(), 40.0);
        assert_eq!(Celsius::new(55.0) - t, 10.0);
        assert_eq!(t.to_string(), "45.00°C");
    }

    #[test]
    fn celsius_clamp() {
        let lo = Celsius::new(40.0);
        let hi = Celsius::new(55.0);
        assert_eq!(Celsius::new(60.0).clamp(lo, hi), hi);
        assert_eq!(Celsius::new(30.0).clamp(lo, hi), lo);
        assert_eq!(Celsius::new(45.0).clamp(lo, hi), Celsius::new(45.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn celsius_rejects_nan() {
        Celsius::new(f64::NAN);
    }
}
