//! The three anonymized LPDDR4 DRAM vendors of the paper's 368-chip study.
//!
//! The paper publishes per-vendor temperature scaling coefficients (Eq. 1)
//! and per-vendor VRT failure-accumulation power-law fits (Fig. 4); the
//! coefficients live here, the physics that consumes them lives in
//! `reaper-retention`.

/// A DRAM vendor, anonymized as in the paper ("Vendor A/B/C").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vendor {
    /// Vendor A — temperature coefficient 0.22 /°C.
    A,
    /// Vendor B — temperature coefficient 0.20 /°C. The paper's
    /// "representative chip" figures (3, 6–10) use a Vendor B part.
    B,
    /// Vendor C — temperature coefficient 0.26 /°C.
    C,
}

impl Vendor {
    /// All three vendors, in order.
    pub const ALL: [Vendor; 3] = [Vendor::A, Vendor::B, Vendor::C];

    /// Exponential temperature coefficient `k` in `R ∝ e^{k·ΔT}` (paper
    /// Eq. 1). Roughly a 10× failure-rate increase per 10 °C.
    ///
    /// # Example
    /// ```
    /// use reaper_dram_model::Vendor;
    /// // 10°C at Vendor C scales failures by e^{2.6} ≈ 13.5x.
    /// let scale = (Vendor::C.temperature_coefficient() * 10.0_f64).exp();
    /// assert!(scale > 10.0 && scale < 14.0);
    /// ```
    pub fn temperature_coefficient(self) -> f64 {
        match self {
            Vendor::A => 0.22,
            Vendor::B => 0.20,
            Vendor::C => 0.26,
        }
    }

    /// Failure-rate scale factor for an ambient temperature change of
    /// `delta_t` degrees (Eq. 1: `R ∝ e^{k ΔT}`).
    pub fn failure_rate_scale(self, delta_t: f64) -> f64 {
        (self.temperature_coefficient() * delta_t).exp()
    }

    /// Short display name ("A", "B", "C").
    pub fn name(self) -> &'static str {
        match self {
            Vendor::A => "A",
            Vendor::B => "B",
            Vendor::C => "C",
        }
    }
}

impl core::fmt::Display for Vendor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Vendor {}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_match_eq1() {
        assert_eq!(Vendor::A.temperature_coefficient(), 0.22);
        assert_eq!(Vendor::B.temperature_coefficient(), 0.20);
        assert_eq!(Vendor::C.temperature_coefficient(), 0.26);
    }

    #[test]
    fn ten_degrees_is_about_a_decade() {
        // Paper: "approximately ... a factor of 10 for every 10°C".
        for v in Vendor::ALL {
            let scale = v.failure_rate_scale(10.0);
            assert!((7.0..14.0).contains(&scale), "{v}: {scale}");
        }
    }

    #[test]
    fn negative_delta_shrinks_rate() {
        assert!(Vendor::B.failure_rate_scale(-5.0) < 1.0);
        assert_eq!(Vendor::B.failure_rate_scale(0.0), 1.0);
    }

    #[test]
    fn display_and_ordering() {
        assert_eq!(Vendor::B.to_string(), "Vendor B");
        assert!(Vendor::A < Vendor::B && Vendor::B < Vendor::C);
        assert_eq!(Vendor::ALL.len(), 3);
    }
}
