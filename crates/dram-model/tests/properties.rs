//! Property-based tests of geometry, units, and data patterns.

// Proptest generators derive indices from fractions; the truncating cast
// is the sampling mechanism, not a correctness hazard.
#![allow(clippy::cast_possible_truncation)]

use proptest::prelude::*;
use reaper_dram_model::{CellAddr, ChipGeometry, DataPattern, Ms, Vendor};

proptest! {
    #[test]
    fn cell_index_roundtrip_any_geometry(
        banks in 1u32..16,
        rows in 1u32..2048,
        cols_pow in 3u32..12,
        idx_frac in 0.0..1.0f64,
    ) {
        let g = ChipGeometry::new(banks, rows, 1 << cols_pow);
        let idx = ((g.density_bits() - 1) as f64 * idx_frac) as u64;
        let addr = g.cell_at(idx);
        prop_assert_eq!(g.linear_index(addr), idx);
        prop_assert!(addr.bank < banks);
        prop_assert!(addr.row < rows);
        prop_assert!(addr.col < (1 << cols_pow));
    }

    #[test]
    fn linear_index_is_injective(
        a_bank in 0u32..4, a_row in 0u32..64, a_col in 0u32..64,
        b_bank in 0u32..4, b_row in 0u32..64, b_col in 0u32..64,
    ) {
        let g = ChipGeometry::new(4, 64, 64);
        let a = CellAddr { bank: a_bank, row: a_row, col: a_col };
        let b = CellAddr { bank: b_bank, row: b_row, col: b_col };
        prop_assume!(a != b);
        prop_assert_ne!(g.linear_index(a), g.linear_index(b));
    }

    #[test]
    fn every_pattern_inverse_flips_every_bit(
        row in 0u64..10_000,
        col in 0u32..10_000,
        iteration in 0u64..100,
    ) {
        for p in DataPattern::standard_set(iteration) {
            prop_assert_eq!(p.inverse().bit_at(row, col), !p.bit_at(row, col));
            prop_assert_eq!(p.inverse().inverse(), p);
        }
    }

    #[test]
    fn ms_arithmetic_is_consistent(a in -1e9..1e9f64, b in -1e9..1e9f64) {
        let (x, y) = (Ms::new(a), Ms::new(b));
        prop_assert!(((x + y).as_ms() - (a + b)).abs() < 1e-6);
        prop_assert!(((x - y).as_ms() - (a - b)).abs() < 1e-6);
        prop_assert!((x.max(y)).as_ms() >= (x.min(y)).as_ms());
        prop_assert!((Ms::from_secs(a / 1e3).as_ms() - a).abs() < 1e-6);
    }

    #[test]
    fn vendor_scaling_composes(dt1 in -10.0..10.0f64, dt2 in -10.0..10.0f64) {
        for v in Vendor::ALL {
            let lhs = v.failure_rate_scale(dt1 + dt2);
            let rhs = v.failure_rate_scale(dt1) * v.failure_rate_scale(dt2);
            prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.max(1.0));
        }
    }

    #[test]
    fn random_pattern_is_pure(seed: u64, row in 0u64..1_000_000, col in 0u32..16_384) {
        let p = DataPattern::random(seed);
        prop_assert_eq!(p.bit_at(row, col), p.bit_at(row, col));
    }
}
