//! Cooperative cancellation for racing computations.
//!
//! A [`CancelToken`] is a shared atomic flag: one side calls
//! [`CancelToken::cancel`], the computation polls
//! [`CancelToken::is_cancelled`] at its own safe points and returns
//! early. Nothing is interrupted preemptively — a holder that never
//! polls is never cancelled — which is exactly the property the
//! deterministic kernels need: cancellation can only land on a batch
//! boundary the computation chose, so every result produced before the
//! stop is bit-identical to the corresponding prefix of an uncancelled
//! run.
//!
//! The token is pure compute (one relaxed-ish atomic, no locks, no
//! blocking, no clock), so polling it inside a hot loop is free and the
//! workspace's concurrency lints (L1–L4) have nothing to track across
//! a check. Cancellation is sticky: once set, the flag never clears;
//! clone-shared tokens observe it in any order the race happens to
//! produce, which is safe precisely because callers are required to
//! treat "cancelled" as "stop producing, keep what you have".

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, sticky, cooperative cancellation flag.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the flag. Idempotent; never blocks.
    ///
    /// Release ordering pairs with the acquire load in
    /// [`CancelToken::is_cancelled`] so a holder that observes the flag
    /// also observes everything the canceller wrote before setting it
    /// (e.g. the race result that made this lane a loser).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once any clone has called [`CancelToken::cancel`].
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uncancelled_and_sticks() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled(), "cancellation is idempotent");
    }

    #[test]
    fn clones_share_one_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        let c = b.clone();
        assert!(c.is_cancelled(), "clones of a cancelled token are cancelled");
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!b.is_cancelled());
    }

    #[test]
    fn flag_crosses_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::spawn(move || u.cancel())
            .join()
            .expect("canceller thread");
        assert!(t.is_cancelled());
    }
}
