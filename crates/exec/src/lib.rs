//! Zero-dependency parallel execution substrate.
//!
//! The REAPER workloads are embarrassingly parallel across cells, chips,
//! grid points, and whole experiments, but the build environment cannot
//! pull `rayon` (no network path to crates.io). This crate provides the
//! small slice of rayon the workspace needs using only `std`:
//!
//! * [`par_map`] — order-preserving parallel map over a slice,
//! * [`par_chunk_map`] — parallel map over contiguous chunks (amortizes
//!   per-item overhead on hot inner loops),
//! * [`par_map_mut`] — parallel in-place mutation of a slice,
//! * [`run_partitioned`] — low-level work-stealing loop for custom shapes,
//! * [`par_index_map_pooled`] — the persistent-pool variant of
//!   [`par_index_map`] for hot loops whose bodies are too short to
//!   amortize per-call `thread::scope` spawns (the retention batch
//!   kernel's fan-out),
//! * [`pool`] — long-lived worker-pool primitives (bounded MPMC queue +
//!   joinable thread pool + the process-wide compute pool) for
//!   service-shaped workloads like `reaper-serve` and for the pooled
//!   fork-join above,
//! * [`cancel`] — a cooperative, pure-compute cancellation flag polled at
//!   batch boundaries by racing computations (`reaper-portfolio`'s
//!   first-finisher-wins strategy races).
//!
//! Work distribution is an atomic chunk index: workers `fetch_add` to
//! claim the next chunk, so load-imbalanced items (e.g. chips with very
//! different weak-cell counts) cannot stall the pool. Results are
//! reassembled in input order, and worker panics are propagated to the
//! caller after all threads have joined.
//!
//! Thread count resolution (first match wins):
//! 1. a process-wide override set via [`set_thread_count`],
//! 2. the `REAPER_THREADS` environment variable (read once),
//! 3. [`std::thread::available_parallelism`].
//!
//! Determinism: none of the entry points introduces ordering or timing
//! dependence — given pure per-item closures, output is identical at any
//! thread count. For Monte-Carlo loops, pair this with [`rng::stream`]
//! to give each (item, nonce) its own hash-derived RNG lane instead of
//! sharing one sequential generator.

// Deny-wall escapes (DESIGN.md §"Static analysis & determinism
// invariants"): `reaper-lint` enforces the finer-grained forms of these
// lints — P1 requires `invariant: `-prefixed expect messages and audits
// indexing in the hot-path crates, C1 bans bare casts there — with
// per-site `// lint: allow` markers. Clippy's blanket versions are
// allowed at the crate root so `-D warnings` stays green without
// annotating every audited site twice.
#![allow(clippy::expect_used, clippy::indexing_slicing)]
// Tests additionally assert exact float equality on purpose — bit-identical
// outputs are the determinism contract, and clippy.toml has no in-tests
// knob for these lints.
#![cfg_attr(test, allow(clippy::float_cmp))]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;

pub mod cancel;
pub mod num;
pub mod pool;
pub mod rng;
pub mod sync;

/// Process-wide thread-count override; 0 means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `REAPER_THREADS` parsed once; `None` when absent or unparsable.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

/// Overrides the worker count for all subsequent parallel calls in this
/// process. `None` (or `Some(0)`) restores the default resolution
/// (`REAPER_THREADS`, then available parallelism).
pub fn set_thread_count(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// The worker count parallel calls will use right now.
pub fn thread_count() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if over > 0 {
        return over;
    }
    let env = ENV_THREADS.get_or_init(|| {
        std::env::var("REAPER_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    });
    if let Some(n) = *env {
        return n;
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Picks a chunk size that gives each worker several chunks to steal
/// (limits imbalance) without degenerating to per-item dispatch.
fn chunk_size_for(len: usize, workers: usize, min_chunk: usize) -> usize {
    let target_chunks = workers * 4;
    (len.div_ceil(target_chunks)).max(min_chunk).max(1)
}

/// Runs `worker(chunk_start, chunk_end)` over `[0, len)` split into
/// `chunk` -sized pieces claimed via an atomic index. Returns the pieces
/// sorted by `chunk_start`. Propagates the first worker panic.
fn run_chunks<R, F>(len: usize, chunk: usize, workers: usize, worker: F) -> Vec<(usize, R)>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let next = AtomicUsize::new(0);
    let worker = &worker;
    let next = &next;
    let mut pieces: Vec<(usize, R)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        let end = (start + chunk).min(len);
                        // Catch so one panicking chunk doesn't abort the
                        // process via a poisoned scope; rethrown below.
                        match catch_unwind(AssertUnwindSafe(|| worker(start, end))) {
                            Ok(r) => local.push((start, r)),
                            Err(payload) => resume_unwind(payload),
                        }
                    }
                    local
                })
            })
            .collect();
        let mut all = Vec::new();
        let mut panic = None;
        for h in handles {
            match h.join() {
                Ok(local) => all.extend(local),
                Err(payload) => panic = Some(payload),
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        all
    });
    pieces.sort_unstable_by_key(|&(start, _)| start);
    pieces
}

/// Low-level entry point: partitions `[0, len)` into chunks of at least
/// `min_chunk`, runs `worker(start, end)` on the pool, and returns the
/// per-chunk results in input order.
pub fn run_partitioned<R, F>(len: usize, min_chunk: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let workers = thread_count().min(len.div_ceil(min_chunk.max(1)));
    let chunk = chunk_size_for(len, workers, min_chunk);
    if workers <= 1 {
        return (0..len)
            .step_by(chunk)
            .map(|start| worker(start, (start + chunk).min(len)))
            .collect();
    }
    run_chunks(len, chunk, workers, worker)
        .into_iter()
        .map(|(_, r)| r)
        .collect()
}

/// Parallel map preserving input order: `out[i] == f(&items[i])`.
///
/// Panics in `f` are propagated to the caller (after all workers join),
/// matching the behavior of a sequential loop.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let pieces = run_partitioned(items.len(), 1, |start, end| {
        // lint: allow(panic) run_partitioned yields start < end <= items.len()
        items[start..end].iter().map(&f).collect::<Vec<R>>()
    });
    pieces.into_iter().flatten().collect()
}

/// Parallel map over contiguous chunks of at least `min_chunk` items.
/// `f(chunk_start, chunk)` sees the absolute start index so callers can
/// derive per-item identities (e.g. RNG lanes). Chunk results are
/// returned in input order.
pub fn par_chunk_map<T, R, F>(items: &[T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    run_partitioned(items.len(), min_chunk, |start, end| {
        // lint: allow(panic) run_partitioned yields start < end <= items.len()
        f(start, &items[start..end])
    })
}

/// Parallel map over index ranges of `[0, len)` — the structure-of-arrays
/// counterpart of [`par_chunk_map`]. Where `par_chunk_map` hands each
/// worker a sub-slice of one item array, `par_index_map` hands it a
/// `start..end` range so the caller can slice *several* parallel lanes
/// (e.g. an index lane plus a threshold lane) with the same bounds.
/// Range results are returned in input order.
pub fn par_index_map<R, F>(len: usize, min_chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(core::ops::Range<usize>) -> R + Sync,
{
    run_partitioned(len, min_chunk, |start, end| f(start..end))
}

/// Physical parallelism of the machine, resolved once. The pooled
/// dispatch width is clamped to this: oversubscribing a core with more
/// helpers than hardware threads only adds handoff latency, and on a
/// single-core host it makes "4 threads" literally the 1-thread code
/// path — which is the correct answer there.
fn physical_parallelism() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Like [`par_index_map`], but dispatched through the process-wide
/// persistent [`pool::ComputePool`] instead of per-call `thread::scope`
/// spawns.
///
/// Scoped spawns cost tens of microseconds per call — acceptable for
/// coarse fan-outs (whole chips, grid points), ruinous for a hot loop
/// whose entire body is ~50 µs: `BENCH_trial.json` once recorded the
/// compiled trial engine running 3× *slower* at 4 threads than at 1 for
/// exactly this reason. Here the caller publishes the fan-out to threads
/// that already exist, participates in it itself, and waits only for
/// chunk completion — no spawn, no join.
///
/// The price of persistence is the `'static` bound: pool workers outlive
/// every caller, and the workspace denies `unsafe_code`, so borrowed
/// closures cannot cross into the pool. Callers wrap shared state in
/// `Arc` (hence `f: Arc<F>`). The scoped `par_map`/`par_chunk_map`/
/// `par_index_map` family remains the right tool for borrowed data on
/// coarse work.
///
/// Helper width is `min(thread_count(), physical parallelism)`; with one
/// effective worker the closure runs inline with zero synchronization.
/// Results are returned in input order and chunk panics propagate to the
/// caller, exactly like [`par_index_map`].
pub fn par_index_map_pooled<R, F>(len: usize, min_chunk: usize, f: Arc<F>) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(core::ops::Range<usize>) -> R + Send + Sync + 'static,
{
    run_pooled_width(len, min_chunk, thread_count().min(physical_parallelism()), f)
}

/// [`par_index_map_pooled`] with an explicit dispatch width — the policy
/// knob factored out so unit tests can exercise multi-helper dispatch on
/// hosts whose physical parallelism would clamp the public path to 1.
pub(crate) fn run_pooled_width<R, F>(len: usize, min_chunk: usize, width: usize, f: Arc<F>) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(core::ops::Range<usize>) -> R + Send + Sync + 'static,
{
    if len == 0 {
        return Vec::new();
    }
    let workers = width.max(1).min(len.div_ceil(min_chunk.max(1)));
    let chunk = chunk_size_for(len, workers, min_chunk);
    if workers <= 1 {
        return (0..len)
            .step_by(chunk)
            .map(|start| f(start..(start + chunk).min(len)))
            .collect();
    }
    let fan = Arc::new(pool::FanOut::new(len, chunk));
    let task: Arc<dyn Fn() + Send + Sync> = {
        let fan = Arc::clone(&fan);
        let f = Arc::clone(&f);
        Arc::new(move || fan.participate(f.as_ref()))
    };
    pool::ComputePool::global().offer_helpers(&task, workers - 1);
    fan.participate(f.as_ref());
    fan.wait_results().into_iter().map(|(_, r)| r).collect()
}

/// Parallel in-place mutation: `f(i, &mut items[i])` for every index.
/// The slice is statically partitioned across workers via
/// `split_at_mut`, so no locking is involved.
pub fn par_map_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    if len == 0 {
        return;
    }
    let workers = thread_count().min(len);
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = len.div_ceil(workers);
    let f = &f;
    thread::scope(|scope| {
        let mut rest = items;
        let mut start = 0;
        let mut handles = Vec::new();
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let base = start;
            handles.push(scope.spawn(move || {
                for (i, item) in head.iter_mut().enumerate() {
                    f(base + i, item);
                }
            }));
            rest = tail;
            start += take;
        }
        let mut panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                panic = Some(payload);
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    // NOTE: set_thread_count mutates process-global state, and cargo runs
    // #[test] fns of one binary concurrently — so exactly one test here
    // touches the override, and it restores the default before returning.

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map(&items, |&x| x * 2 + 1);
        let expect: Vec<u64> = items.iter().map(|&x| x * 2 + 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "boom at 137")]
    fn par_map_propagates_panics() {
        let items: Vec<u64> = (0..1_000).collect();
        let _ = par_map(&items, |&x| {
            if x == 137 {
                panic!("boom at 137");
            }
            x
        });
    }

    #[test]
    fn par_chunk_map_covers_every_index_once() {
        let items: Vec<usize> = (0..5_000).collect();
        let chunks = par_chunk_map(&items, 64, |start, chunk| {
            assert_eq!(chunk[0], start, "chunk start index must be absolute");
            (start, chunk.len())
        });
        let mut expected_start = 0;
        for (start, len) in chunks {
            assert_eq!(start, expected_start);
            expected_start += len;
        }
        assert_eq!(expected_start, items.len());
    }

    #[test]
    fn par_index_map_covers_every_index_once_in_order() {
        let ranges = par_index_map(10_000, 128, |r| r);
        let mut expected_start = 0;
        for r in ranges {
            assert_eq!(r.start, expected_start);
            assert!(r.end > r.start);
            expected_start = r.end;
        }
        assert_eq!(expected_start, 10_000);
        assert!(par_index_map(0, 128, |r| r).is_empty());
    }

    #[test]
    fn par_map_mut_touches_every_element_exactly_once() {
        let mut items = vec![0u64; 4_321];
        let calls = AtomicU64::new(0);
        par_map_mut(&mut items, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            *x = i as u64 + 1;
        });
        assert_eq!(calls.load(Ordering::Relaxed), 4_321);
        for (i, &x) in items.iter().enumerate() {
            assert_eq!(x, i as u64 + 1);
        }
    }

    #[test]
    fn pooled_map_matches_sequential_at_any_width() {
        let reference: Vec<u64> = (0..10_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9).rotate_left(11))
            .collect();
        for width in [1, 2, 4, 8] {
            let pieces = run_pooled_width(
                10_000,
                64,
                width,
                Arc::new(|r: core::ops::Range<usize>| {
                    r.map(|i| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(11))
                        .collect::<Vec<u64>>()
                }),
            );
            let flat: Vec<u64> = pieces.into_iter().flatten().collect();
            assert_eq!(flat, reference, "width {width}");
        }
    }

    #[test]
    fn pooled_public_api_covers_every_index_in_order() {
        let ranges = par_index_map_pooled(10_000, 128, Arc::new(|r: core::ops::Range<usize>| r));
        let mut expected_start = 0;
        for r in ranges {
            assert_eq!(r.start, expected_start);
            assert!(r.end > r.start);
            expected_start = r.end;
        }
        assert_eq!(expected_start, 10_000);
        assert!(par_index_map_pooled(0, 128, Arc::new(|r: core::ops::Range<usize>| r)).is_empty());
    }

    #[test]
    #[should_panic(expected = "pooled boom at 512")]
    fn pooled_map_propagates_panics() {
        let _ = run_pooled_width(
            4_096,
            64,
            4,
            Arc::new(|r: core::ops::Range<usize>| {
                assert!(r.start != 512, "pooled boom at 512");
                r.len()
            }),
        );
    }

    #[test]
    fn thread_override_takes_effect_and_results_match() {
        let items: Vec<u64> = (0..2_048).collect();
        let at_default = par_map(&items, |&x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        set_thread_count(Some(1));
        assert_eq!(thread_count(), 1);
        let at_one = par_map(&items, |&x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        set_thread_count(Some(4));
        assert_eq!(thread_count(), 4);
        let at_four = par_map(&items, |&x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        set_thread_count(None);
        assert_eq!(at_default, at_one);
        assert_eq!(at_one, at_four);
        assert!(thread_count() >= 1);
    }
}
