//! Checked numeric conversions for the hot-path crates.
//!
//! The reaper-lint C1 rule bans bare `as` integer casts in `exec`,
//! `retention`, and `core` because a silent truncation there corrupts
//! results instead of crashing. These helpers centralize the conversions
//! the kernels actually need, each either lossless by construction or
//! checked at the boundary. The two unavoidable `as` expressions live
//! here, once, with their justification.

/// Widens a `u32` index into a `usize` (lossless: every supported target
/// has at least 32-bit `usize`).
#[inline]
#[must_use]
pub fn idx(i: u32) -> usize {
    // lint: allow(lossy-cast) u32 -> usize is widening on all supported targets
    i as usize
}

/// Converts a `u64` count into a `usize`, panicking on (impossible on
/// 64-bit targets) overflow rather than wrapping.
#[inline]
#[must_use]
pub fn idx_u64(i: u64) -> usize {
    usize::try_from(i).expect("invariant: counts fit in usize on supported targets")
}

/// Converts a length/count into a `u32`, panicking on overflow rather
/// than wrapping. Use for compact per-cell indices where the population
/// is bounded far below 2^32.
#[inline]
#[must_use]
pub fn to_u32(n: usize) -> u32 {
    u32::try_from(n).expect("invariant: compact indices are bounded below 2^32")
}

/// Converts a `u64` value known to be bounded below 2^32 (e.g. a value
/// reduced modulo a row width) into a `u32`, panicking on overflow
/// rather than wrapping.
#[inline]
#[must_use]
pub fn u64_to_u32(x: u64) -> u32 {
    u32::try_from(x).expect("invariant: value is bounded below 2^32 at the call site")
}

/// Widens a `usize` length into a `u64` (lossless on all supported
/// targets: `usize` is at most 64 bits).
#[inline]
#[must_use]
pub fn to_u64(n: usize) -> u64 {
    // lint: allow(lossy-cast) usize -> u64 is widening on all supported targets
    n as u64
}

/// Narrows an `f64` to `f32` for compact storage. This is intentional
/// precision quantization (cell parameters are modeled at f32 precision);
/// round-to-nearest, never a surprise truncation.
#[inline]
#[must_use]
pub fn f32_narrow(x: f64) -> f32 {
    #[allow(clippy::cast_possible_truncation)]
    let narrowed = x as f32; // lint: allow(lossy-cast) intentional f64 -> f32 quantization
    narrowed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_roundtrips() {
        assert_eq!(idx(0), 0);
        assert_eq!(idx(u32::MAX), u32::MAX as usize);
        assert_eq!(idx_u64(12_345), 12_345);
        assert_eq!(to_u64(usize::MAX), usize::MAX as u64);
    }

    #[test]
    fn to_u32_accepts_bounded_counts() {
        assert_eq!(to_u32(0), 0);
        assert_eq!(to_u32(1 << 20), 1 << 20);
    }

    #[test]
    #[should_panic(expected = "invariant")]
    fn to_u32_panics_on_overflow() {
        let _ = to_u32(usize::MAX);
    }

    #[test]
    fn f32_narrow_rounds() {
        assert_eq!(f32_narrow(1.5), 1.5f32);
        assert!((f32_narrow(0.1) - 0.1f32).abs() < f32::EPSILON);
    }
}
