//! Long-lived worker-pool primitives: a bounded MPMC queue and a named
//! thread pool.
//!
//! The parallel-map entry points in the crate root are *fork-join*: they
//! spawn scoped workers, drain one slice, and return. A service has the
//! opposite shape — producers and consumers run indefinitely and
//! hand off heterogeneous jobs — so this module adds the two pieces that
//! shape needs, still zero-dependency:
//!
//! * [`BoundedQueue`] — a `Mutex`+`Condvar` MPMC queue with a hard
//!   capacity (backpressure instead of unbounded memory growth) and
//!   close-then-drain shutdown semantics,
//! * [`WorkerPool`] — N detach-free threads running one worker function,
//!   joined (with panic propagation) on [`WorkerPool::join`].
//! * [`ComputePool`] — a process-wide persistent pool built from the two
//!   primitives above, serving the pooled fork-join entry point
//!   (`par_index_map_pooled` in the crate root). Per-call `thread::scope`
//!   spawns cost tens of microseconds — more than a whole compiled trial
//!   round — so the hot paths dispatch to threads that already exist.
//!
//! Determinism note: queue *pop order* is necessarily scheduling-
//! dependent. Callers that need deterministic outputs must make each job
//! a pure function of its own identity (as `reaper-serve` does by keying
//! jobs on the canonical request hash) so that ordering only affects
//! timing, never results.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::{self, JoinHandle};

use crate::sync::lock;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should shed load or retry.
    Full,
    /// The queue was closed; no further items are accepted.
    Closed,
}

impl core::fmt::Display for PushError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PushError::Full => write!(f, "queue is full"),
            PushError::Closed => write!(f, "queue is closed"),
        }
    }
}

impl std::error::Error for PushError {}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO queue.
///
/// Closing the queue ([`BoundedQueue::close`]) rejects further pushes but
/// lets consumers drain what was already accepted: [`BoundedQueue::pop`]
/// keeps returning items until the queue is both closed *and* empty, then
/// returns `None`. That is exactly the graceful-shutdown contract a
/// service drain loop wants.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue accepting at most `capacity` in-flight items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item` if there is room, without blocking.
    ///
    /// # Errors
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; the item is dropped in both cases (the
    /// caller still owns its own copy of whatever identity it needs).
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut st = lock(&self.state);
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = lock(&self.state);
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pushes fail from now on, blocked consumers wake,
    /// and already-queued items remain poppable (drain semantics).
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.not_empty.notify_all();
    }

    /// True once [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock(&self.state).closed
    }

    /// Items currently queued (a point-in-time snapshot).
    pub fn len(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// True when no items are queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A fixed-size pool of named worker threads all running one function.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (named `<name>-0` … `<name>-{n-1}`), each
    /// running `work(worker_index)` to completion. The worker function
    /// owns its exit condition — typically a [`BoundedQueue::pop`] loop
    /// that ends when the queue closes.
    ///
    /// # Panics
    /// Panics if `workers` is zero or the OS refuses to spawn a thread.
    pub fn spawn<F>(name: &str, workers: usize, work: F) -> Self
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        assert!(workers > 0, "worker pool needs at least one thread");
        let work = Arc::new(work);
        let handles = (0..workers)
            .map(|i| {
                let work = Arc::clone(&work);
                thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || work(i))
                    .expect("invariant: spawning a named worker thread only fails on OS resource exhaustion")
            })
            .collect();
        Self { handles }
    }

    /// Number of threads in the pool.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True for a pool with no threads (cannot be constructed via
    /// [`WorkerPool::spawn`]; exists for API completeness).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to finish. If any worker panicked, the
    /// first panic payload is re-raised here (after all threads joined),
    /// matching the crate's fork-join entry points.
    pub fn join(self) {
        let mut panic = None;
        for h in self.handles {
            if let Err(payload) = h.join() {
                panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

/// A pooled job: a helper thread pops one of these and runs it to
/// completion. Jobs must be `'static` because the workers outlive every
/// caller — the workspace denies `unsafe_code`, so there is no
/// borrowed-closure escape hatch; fan-outs share state via `Arc` instead.
type PoolTask = Arc<dyn Fn() + Send + Sync>;

/// Upper bound on persistent helper threads, far above any sane
/// `REAPER_THREADS`; a runaway override cannot spawn-bomb the process.
const MAX_POOL_WORKERS: usize = 32;

/// Pending-task capacity. A `Full` rejection is harmless for fan-outs —
/// the dispatching caller participates and completes every chunk itself —
/// so a modest bound suffices.
const POOL_QUEUE_CAP: usize = 1024;

/// The process-wide persistent compute pool.
///
/// Workers are spawned lazily (grow-only, up to [`MAX_POOL_WORKERS`]) the
/// first time a caller asks for helpers, then park on the task queue's
/// condvar between jobs for the life of the process. The task queue is
/// never closed: an idle pool costs a few parked threads, and the OS
/// reclaims them at process exit.
///
/// This is the substrate under `par_index_map_pooled` (crate root): the
/// caller always participates in its own fan-out, so even a saturated or
/// single-core pool makes forward progress with zero handoff.
pub struct ComputePool {
    tasks: BoundedQueue<PoolTask>,
    pools: Mutex<Vec<WorkerPool>>,
}

impl ComputePool {
    /// The process-wide pool (created empty on first use).
    pub fn global() -> &'static ComputePool {
        static POOL: OnceLock<ComputePool> = OnceLock::new();
        POOL.get_or_init(|| ComputePool {
            tasks: BoundedQueue::new(POOL_QUEUE_CAP),
            pools: Mutex::new(Vec::new()),
        })
    }

    /// Helper threads currently alive.
    pub fn worker_count(&self) -> usize {
        lock(&self.pools).iter().map(WorkerPool::len).sum()
    }

    /// Grows the pool to at least `n` workers (capped at
    /// [`MAX_POOL_WORKERS`]); existing workers are never retired.
    fn ensure_workers(&'static self, n: usize) {
        let n = n.min(MAX_POOL_WORKERS);
        let mut pools = lock(&self.pools);
        let have: usize = pools.iter().map(WorkerPool::len).sum();
        if have >= n {
            return;
        }
        let tasks = &self.tasks;
        pools.push(WorkerPool::spawn("reaper-pool", n - have, move |_i| {
            while let Some(task) = tasks.pop() {
                // A fan-out participant captures its own panics per chunk;
                // this guard keeps any other unwinding job from killing a
                // worker that the whole process shares.
                let _ = catch_unwind(AssertUnwindSafe(|| task()));
            }
        }));
    }

    /// Offers `helpers` copies of `task` to the pool, spawning workers up
    /// to that many if needed. Best-effort: a full queue sheds the
    /// remainder silently, which fan-out callers tolerate by design
    /// (they run every unclaimed chunk themselves).
    pub fn offer_helpers(&'static self, task: &PoolTask, helpers: usize) {
        if helpers == 0 {
            return;
        }
        self.ensure_workers(helpers);
        for _ in 0..helpers {
            if self.tasks.try_push(Arc::clone(task)).is_err() {
                break;
            }
        }
    }
}

/// Completion state of one pooled fork-join fan-out.
struct FanState<R> {
    completed: usize,
    results: Vec<(usize, R)>,
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
}

/// Shared state of one pooled fork-join fan-out over `[0, len)`.
///
/// Chunks are claimed via `fetch_add` exactly as in the scoped
/// `run_chunks` loop, but completion is counted per chunk under a mutex
/// so the *caller* can wait for helpers it does not own (pool workers are
/// never joined). Every claimed chunk accounts exactly one completion —
/// even a panicking one — so [`FanOut::wait_results`] always terminates,
/// including when no helper ever picks the task up (the caller claims
/// every chunk itself).
pub(crate) struct FanOut<R> {
    next: AtomicUsize,
    chunk: usize,
    len: usize,
    total_chunks: usize,
    state: Mutex<FanState<R>>,
    done: Condvar,
}

impl<R> FanOut<R> {
    pub(crate) fn new(len: usize, chunk: usize) -> Self {
        assert!(len > 0 && chunk > 0, "fan-out needs work and a chunk size");
        Self {
            next: AtomicUsize::new(0),
            chunk,
            len,
            total_chunks: len.div_ceil(chunk),
            state: Mutex::new(FanState {
                completed: 0,
                results: Vec::new(),
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Claims and runs chunks until the range is exhausted. Called by the
    /// dispatching caller and by any pool worker that picked up the task.
    pub(crate) fn participate<F>(&self, f: &F)
    where
        F: Fn(core::ops::Range<usize>) -> R,
    {
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.len {
                return;
            }
            let end = (start + self.chunk).min(self.len);
            let outcome = catch_unwind(AssertUnwindSafe(|| f(start..end)));
            let mut st = lock(&self.state);
            match outcome {
                Ok(r) => st.results.push((start, r)),
                Err(payload) => {
                    if st.panic.is_none() {
                        st.panic = Some(payload);
                    }
                }
            }
            st.completed += 1;
            let all_done = st.completed == self.total_chunks;
            drop(st);
            if all_done {
                self.done.notify_all();
            }
        }
    }

    /// Blocks until every chunk has completed, then returns the chunk
    /// results sorted by start index. Re-raises the first chunk panic.
    pub(crate) fn wait_results(&self) -> Vec<(usize, R)> {
        let mut st = lock(&self.state);
        while st.completed < self.total_chunks {
            st = self.done.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let panic = st.panic.take();
        let mut results = std::mem::take(&mut st.results);
        drop(st);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        results.sort_unstable_by_key(|&(start, _)| start);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order_single_consumer() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).expect("room");
        }
        assert_eq!(q.len(), 5);
        let drained: Vec<i32> = (0..5).map(|_| q.pop().expect("queued")).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_and_closed_pushes_are_rejected() {
        let q = BoundedQueue::new(2);
        q.try_push(1).expect("room");
        q.try_push(2).expect("room");
        assert_eq!(q.try_push(3), Err(PushError::Full));
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(4), Err(PushError::Closed));
        // Drain semantics: accepted items survive the close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.pop());
        // Give the consumer a chance to block, then close.
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().expect("no panic"), None);
    }

    #[test]
    fn pool_consumes_everything_exactly_once() {
        let q = Arc::new(BoundedQueue::new(64));
        let seen = Arc::new(AtomicUsize::new(0));
        let pool = {
            let q = Arc::clone(&q);
            let seen = Arc::clone(&seen);
            WorkerPool::spawn("test-worker", 4, move |_i| {
                while let Some(x) = q.pop() {
                    seen.fetch_add(x, Ordering::Relaxed);
                }
            })
        };
        assert_eq!(pool.len(), 4);
        assert!(!pool.is_empty());
        let mut expect = 0;
        for x in 1..=50usize {
            expect += x;
            while q.try_push(x).is_err() {
                thread::yield_now();
            }
        }
        q.close();
        pool.join();
        assert_eq!(seen.load(Ordering::Relaxed), expect);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "worker 2 exploded")]
    fn pool_join_propagates_worker_panics() {
        let pool = WorkerPool::spawn("panicky", 3, |i| {
            if i == 2 {
                panic!("worker 2 exploded");
            }
        });
        pool.join();
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<()>::new(0);
    }

    #[test]
    fn fan_out_completes_with_caller_alone() {
        // No helper ever shows up: the caller claims every chunk itself
        // and wait_results still terminates with full coverage.
        let fan = FanOut::new(1_000, 64);
        fan.participate(&|r: core::ops::Range<usize>| r.len());
        let pieces = fan.wait_results();
        let total: usize = pieces.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 1_000);
        let starts: Vec<usize> = pieces.iter().map(|&(s, _)| s).collect();
        assert!(starts.windows(2).all(|w| w[0] < w[1]), "sorted by start");
    }

    #[test]
    #[should_panic(expected = "chunk 128 exploded")]
    fn fan_out_propagates_chunk_panics() {
        let fan = FanOut::new(512, 64);
        fan.participate(&|r: core::ops::Range<usize>| {
            assert!(r.start != 128, "chunk 128 exploded");
            r.len()
        });
        let _ = fan.wait_results();
    }

    #[test]
    fn compute_pool_helpers_survive_across_fan_outs() {
        let pool = ComputePool::global();
        for round in 0..3u64 {
            let fan = Arc::new(FanOut::new(4_096, 64));
            let hits = Arc::new(AtomicUsize::new(0));
            let task: PoolTask = {
                let fan = Arc::clone(&fan);
                let hits = Arc::clone(&hits);
                Arc::new(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                    fan.participate(&|r: core::ops::Range<usize>| {
                        r.map(|i| i as u64 + round).sum::<u64>()
                    });
                })
            };
            pool.offer_helpers(&task, 2);
            fan.participate(&|r: core::ops::Range<usize>| {
                r.map(|i| i as u64 + round).sum::<u64>()
            });
            let total: u64 = fan.wait_results().into_iter().map(|(_, s)| s).sum();
            let expect: u64 = (0..4_096u64).map(|i| i + round).sum();
            assert_eq!(total, expect, "round {round}");
        }
        // Workers were spawned at most once and stayed parked between
        // rounds; the pool never shrinks.
        assert!(pool.worker_count() >= 1);
        assert!(pool.worker_count() <= MAX_POOL_WORKERS);
    }
}
