//! Long-lived worker-pool primitives: a bounded MPMC queue and a named
//! thread pool.
//!
//! The parallel-map entry points in the crate root are *fork-join*: they
//! spawn scoped workers, drain one slice, and return. A service has the
//! opposite shape — producers and consumers run indefinitely and
//! hand off heterogeneous jobs — so this module adds the two pieces that
//! shape needs, still zero-dependency:
//!
//! * [`BoundedQueue`] — a `Mutex`+`Condvar` MPMC queue with a hard
//!   capacity (backpressure instead of unbounded memory growth) and
//!   close-then-drain shutdown semantics,
//! * [`WorkerPool`] — N detach-free threads running one worker function,
//!   joined (with panic propagation) on [`WorkerPool::join`].
//!
//! Determinism note: queue *pop order* is necessarily scheduling-
//! dependent. Callers that need deterministic outputs must make each job
//! a pure function of its own identity (as `reaper-serve` does by keying
//! jobs on the canonical request hash) so that ordering only affects
//! timing, never results.

use std::collections::VecDeque;
use std::panic::resume_unwind;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};

/// Locks a mutex, recovering the guard from a poisoned lock (a panicking
/// peer must not cascade into every other worker).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should shed load or retry.
    Full,
    /// The queue was closed; no further items are accepted.
    Closed,
}

impl core::fmt::Display for PushError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PushError::Full => write!(f, "queue is full"),
            PushError::Closed => write!(f, "queue is closed"),
        }
    }
}

impl std::error::Error for PushError {}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO queue.
///
/// Closing the queue ([`BoundedQueue::close`]) rejects further pushes but
/// lets consumers drain what was already accepted: [`BoundedQueue::pop`]
/// keeps returning items until the queue is both closed *and* empty, then
/// returns `None`. That is exactly the graceful-shutdown contract a
/// service drain loop wants.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue accepting at most `capacity` in-flight items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item` if there is room, without blocking.
    ///
    /// # Errors
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; the item is dropped in both cases (the
    /// caller still owns its own copy of whatever identity it needs).
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut st = lock(&self.state);
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = lock(&self.state);
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pushes fail from now on, blocked consumers wake,
    /// and already-queued items remain poppable (drain semantics).
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.not_empty.notify_all();
    }

    /// True once [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock(&self.state).closed
    }

    /// Items currently queued (a point-in-time snapshot).
    pub fn len(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// True when no items are queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A fixed-size pool of named worker threads all running one function.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (named `<name>-0` … `<name>-{n-1}`), each
    /// running `work(worker_index)` to completion. The worker function
    /// owns its exit condition — typically a [`BoundedQueue::pop`] loop
    /// that ends when the queue closes.
    ///
    /// # Panics
    /// Panics if `workers` is zero or the OS refuses to spawn a thread.
    pub fn spawn<F>(name: &str, workers: usize, work: F) -> Self
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        assert!(workers > 0, "worker pool needs at least one thread");
        let work = Arc::new(work);
        let handles = (0..workers)
            .map(|i| {
                let work = Arc::clone(&work);
                thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || work(i))
                    .expect("invariant: spawning a named worker thread only fails on OS resource exhaustion")
            })
            .collect();
        Self { handles }
    }

    /// Number of threads in the pool.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True for a pool with no threads (cannot be constructed via
    /// [`WorkerPool::spawn`]; exists for API completeness).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to finish. If any worker panicked, the
    /// first panic payload is re-raised here (after all threads joined),
    /// matching the crate's fork-join entry points.
    pub fn join(self) {
        let mut panic = None;
        for h in self.handles {
            if let Err(payload) = h.join() {
                panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order_single_consumer() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).expect("room");
        }
        assert_eq!(q.len(), 5);
        let drained: Vec<i32> = (0..5).map(|_| q.pop().expect("queued")).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_and_closed_pushes_are_rejected() {
        let q = BoundedQueue::new(2);
        q.try_push(1).expect("room");
        q.try_push(2).expect("room");
        assert_eq!(q.try_push(3), Err(PushError::Full));
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(4), Err(PushError::Closed));
        // Drain semantics: accepted items survive the close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.pop());
        // Give the consumer a chance to block, then close.
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().expect("no panic"), None);
    }

    #[test]
    fn pool_consumes_everything_exactly_once() {
        let q = Arc::new(BoundedQueue::new(64));
        let seen = Arc::new(AtomicUsize::new(0));
        let pool = {
            let q = Arc::clone(&q);
            let seen = Arc::clone(&seen);
            WorkerPool::spawn("test-worker", 4, move |_i| {
                while let Some(x) = q.pop() {
                    seen.fetch_add(x, Ordering::Relaxed);
                }
            })
        };
        assert_eq!(pool.len(), 4);
        assert!(!pool.is_empty());
        let mut expect = 0;
        for x in 1..=50usize {
            expect += x;
            while q.try_push(x).is_err() {
                thread::yield_now();
            }
        }
        q.close();
        pool.join();
        assert_eq!(seen.load(Ordering::Relaxed), expect);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "worker 2 exploded")]
    fn pool_join_propagates_worker_panics() {
        let pool = WorkerPool::spawn("panicky", 3, |i| {
            if i == 2 {
                panic!("worker 2 exploded");
            }
        });
        pool.join();
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<()>::new(0);
    }
}
