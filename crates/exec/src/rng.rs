//! Hash-derived deterministic RNG streams for parallel Monte-Carlo.
//!
//! A sequential simulation that draws from one shared generator cannot be
//! parallelized without changing its outcomes: the i-th draw depends on
//! how many draws every earlier item consumed. The fix is to derive an
//! independent stream per logical unit of work — here, per
//! `(seed, domain, nonce, item)` tuple — by hashing the tuple into a
//! SplitMix64 state. Outcomes then depend only on the tuple, never on
//! iteration order or thread count.

/// SplitMix64 finalizer: a strong 64-bit mix (Stafford's Mix13 variant,
/// as used by `splitmix64`). Good enough to decorrelate adjacent tuples.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny deterministic generator: the SplitMix64 sequence.
///
/// Statistically solid for Monte-Carlo acceptance draws and cheap enough
/// to construct per (cell, trial) without measurable overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given initial state.
    #[inline]
    pub fn new(state: u64) -> Self {
        Self { state }
    }

    /// Next uniform 64-bit word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Chain seed for [`stream`] (arbitrary odd constant).
const STREAM_SEED: u64 = 0x51_7C_C1_B7_27_22_0A_95;
/// Per-part chain multiplier for [`stream`].
const STREAM_STEP: u64 = 0x2545_F491_4F6C_DD1D;

/// An incrementally built [`stream`] state: the chain hash over the parts
/// pushed so far.
///
/// `stream(&[a, b, c])` hashes its tuple left to right, so lanes sharing
/// a common tuple prefix share a chain prefix. Hot loops that open many
/// lanes keyed `[seed, domain, nonce, item]` can hash the shared parts
/// once per loop instead of once per lane:
///
/// ```
/// use reaper_exec::rng::{stream, StreamPrefix};
/// let per_trial = StreamPrefix::root().push(7).push(42); // seed, domain
/// for item in 0..4u64 {
///     assert_eq!(per_trial.push(item).stream(), stream(&[7, 42, item]));
/// }
/// ```
///
/// The equivalence is bitwise: [`stream`] itself is implemented on top of
/// this type, so the two can never drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPrefix {
    h: u64,
    len: u64,
}

impl StreamPrefix {
    /// The empty prefix (no parts pushed yet).
    #[inline]
    #[must_use]
    pub fn root() -> Self {
        Self {
            h: STREAM_SEED,
            len: 0,
        }
    }

    /// Extends the prefix with one more tuple part. `self` is unchanged
    /// (the type is `Copy`), so one shared prefix can fan out to many
    /// lanes.
    #[inline]
    #[must_use]
    pub fn push(self, part: u64) -> Self {
        Self {
            h: mix64(self.h ^ part).wrapping_mul(STREAM_STEP),
            len: self.len + 1,
        }
    }

    /// Finalizes the prefix into the generator `stream` would return for
    /// the same full tuple. Length is folded in here, so a prefix and its
    /// extension never collide.
    #[inline]
    #[must_use]
    pub fn stream(self) -> SplitMix64 {
        SplitMix64::new(mix64(self.h ^ self.len))
    }
}

/// Derives an independent RNG stream from a tuple of identifiers.
///
/// Feeds each part through the mix with running chaining, so
/// `stream(&[a, b])` and `stream(&[b, a])` are unrelated, as are tuples
/// of different lengths.
#[inline]
pub fn stream(parts: &[u64]) -> SplitMix64 {
    parts
        .iter()
        .fold(StreamPrefix::root(), |p, &part| p.push(part))
        .stream()
}

/// Per-chunk chain multiplier for [`hash_bytes`] (same odd constant the
/// stream chain uses).
const HASH_STEP: u64 = 0x2545_F491_4F6C_DD1D;

/// Content-addresses a byte string: a splitmix64-chained hash over
/// 8-byte little-endian chunks (the final partial chunk zero-padded),
/// finalized with the input length so prefixes of each other never
/// collide by construction of the padding.
///
/// `seed` separates hash domains — job IDs, profile content hashes, and
/// delta chunk IDs each pass a distinct constant so equal bytes in
/// different roles never alias. The algorithm is the one
/// `ProfilingRequest::job_id` has used since the service landed; that
/// function now delegates here, so existing job IDs are unchanged.
#[must_use]
pub fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word.iter_mut().zip(chunk).for_each(|(w, &b)| *w = b);
        h = mix64(h ^ u64::from_le_bytes(word)).wrapping_mul(HASH_STEP);
    }
    mix64(h ^ crate::num::to_u64(bytes.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut s = stream(&[1, 2, 3]);
            (0..8).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = stream(&[1, 2, 3]);
            (0..8).map(|_| s.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut s = stream(&[3, 2, 1]);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tuple_length_matters() {
        let mut two = stream(&[5, 0]);
        let mut one = stream(&[5]);
        assert_ne!(two.next_u64(), one.next_u64());
    }

    #[test]
    fn unit_doubles_are_uniform_enough() {
        let mut s = stream(&[42]);
        let n = 100_000;
        let mut sum = 0.0;
        let mut low = 0usize;
        for _ in 0..n {
            let x = s.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            if x < 0.5 {
                low += 1;
            }
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((low as f64 / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn stream_prefix_is_bitwise_equivalent_to_stream() {
        let tuples: &[&[u64]] = &[
            &[],
            &[0],
            &[5],
            &[5, 0],
            &[1, 2, 3],
            &[u64::MAX, 0, u64::MAX, 7],
            &[0x5245_4150_4552_0001, 42, 1_000_003, 9],
        ];
        for parts in tuples {
            let direct = stream(parts);
            let prefixed = parts
                .iter()
                .fold(StreamPrefix::root(), |p, &part| p.push(part))
                .stream();
            assert_eq!(direct, prefixed, "tuple {parts:?}");
            // And the sequences agree, not just the initial states.
            let mut a = direct;
            let mut b = prefixed;
            for _ in 0..4 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn stream_prefix_fans_out_without_mutation() {
        // A shared prefix is Copy: pushing different tails from the same
        // prefix matches hashing each full tuple from scratch.
        let shared = StreamPrefix::root().push(7).push(99);
        for item in 0..64u64 {
            assert_eq!(shared.push(item).stream(), stream(&[7, 99, item]));
        }
        // Length still disambiguates a prefix from its extensions.
        assert_ne!(shared.stream(), shared.push(0).stream());
    }

    #[test]
    fn adjacent_cell_lanes_are_decorrelated() {
        // Hamming distance between first draws of adjacent lanes should be
        // ~32 bits; catastrophic correlation would show up here.
        let mut total = 0u32;
        for i in 0..1_000u64 {
            let x = stream(&[7, i]).next_u64();
            let y = stream(&[7, i + 1]).next_u64();
            total += (x ^ y).count_ones();
        }
        let avg = total as f64 / 1_000.0;
        assert!((avg - 32.0).abs() < 2.0, "avg hamming {avg}");
    }

    #[test]
    fn hash_bytes_separates_domains_lengths_and_contents() {
        let h = hash_bytes(1, b"abcdefgh");
        assert_eq!(h, hash_bytes(1, b"abcdefgh"), "deterministic");
        assert_ne!(h, hash_bytes(2, b"abcdefgh"), "seed separates domains");
        assert_ne!(h, hash_bytes(1, b"abcdefgi"), "content sensitive");
        // Zero padding must not alias a short chunk with its padded form.
        assert_ne!(hash_bytes(1, b"ab"), hash_bytes(1, b"ab\0"));
        assert_ne!(hash_bytes(1, b""), hash_bytes(1, b"\0"));
        // Prefix extension changes the hash (length finalization).
        assert_ne!(hash_bytes(1, b"abcdefgh"), hash_bytes(1, b"abcdefghi"));
    }
}
