//! Hash-derived deterministic RNG streams for parallel Monte-Carlo.
//!
//! A sequential simulation that draws from one shared generator cannot be
//! parallelized without changing its outcomes: the i-th draw depends on
//! how many draws every earlier item consumed. The fix is to derive an
//! independent stream per logical unit of work — here, per
//! `(seed, domain, nonce, item)` tuple — by hashing the tuple into a
//! SplitMix64 state. Outcomes then depend only on the tuple, never on
//! iteration order or thread count.

/// SplitMix64 finalizer: a strong 64-bit mix (Stafford's Mix13 variant,
/// as used by `splitmix64`). Good enough to decorrelate adjacent tuples.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny deterministic generator: the SplitMix64 sequence.
///
/// Statistically solid for Monte-Carlo acceptance draws and cheap enough
/// to construct per (cell, trial) without measurable overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given initial state.
    #[inline]
    pub fn new(state: u64) -> Self {
        Self { state }
    }

    /// Next uniform 64-bit word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derives an independent RNG stream from a tuple of identifiers.
///
/// Feeds each part through the mix with running chaining, so
/// `stream(&[a, b])` and `stream(&[b, a])` are unrelated, as are tuples
/// of different lengths.
#[inline]
pub fn stream(parts: &[u64]) -> SplitMix64 {
    let mut h = 0x51_7C_C1_B7_27_22_0A_95u64; // arbitrary odd constant
    for &p in parts {
        h = mix64(h ^ p).wrapping_mul(0x2545_F491_4F6C_DD1D);
    }
    SplitMix64::new(mix64(h ^ crate::num::to_u64(parts.len())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut s = stream(&[1, 2, 3]);
            (0..8).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = stream(&[1, 2, 3]);
            (0..8).map(|_| s.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut s = stream(&[3, 2, 1]);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tuple_length_matters() {
        let mut two = stream(&[5, 0]);
        let mut one = stream(&[5]);
        assert_ne!(two.next_u64(), one.next_u64());
    }

    #[test]
    fn unit_doubles_are_uniform_enough() {
        let mut s = stream(&[42]);
        let n = 100_000;
        let mut sum = 0.0;
        let mut low = 0usize;
        for _ in 0..n {
            let x = s.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            if x < 0.5 {
                low += 1;
            }
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((low as f64 / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn adjacent_cell_lanes_are_decorrelated() {
        // Hamming distance between first draws of adjacent lanes should be
        // ~32 bits; catastrophic correlation would show up here.
        let mut total = 0u32;
        for i in 0..1_000u64 {
            let x = stream(&[7, i]).next_u64();
            let y = stream(&[7, i + 1]).next_u64();
            total += (x ^ y).count_ones();
        }
        let avg = total as f64 / 1_000.0;
        assert!((avg - 32.0).abs() < 2.0, "avg hamming {avg}");
    }
}
