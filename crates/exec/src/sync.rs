//! Shared synchronization helpers.
//!
//! The workspace's services recover from mutex poisoning instead of
//! cascading panics across threads: a worker that panicked mid-update
//! can at worst leave a *stale* value behind (every protected structure
//! here is valid after any prefix of updates), and taking the whole
//! process down over it would turn one bad job into an outage.
//!
//! [`lock`] is also the canonical lock-acquisition site that
//! `reaper-lint`'s concurrency rules (L1–L4) model: acquiring through
//! one helper gives the analyzer a single pattern to recognize, which is
//! why `crates/serve` and `crates/exec` both route through it rather
//! than keeping private copies.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering the guard from a poisoned lock (a panicking
/// peer must not cascade into every other thread touching the value).
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recovers_from_poisoning() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().expect("not yet poisoned");
            panic!("poison the mutex");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7);
    }
}
