//! Cancellation semantics through the pooled fan-out and the queue
//! primitives: a cancelled lane stops at the *next batch boundary it
//! checks*, never mid-batch, and everything it produced before the stop
//! is preserved. These are the exact guarantees `reaper-portfolio`'s
//! strategy races lean on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use reaper_exec::cancel::CancelToken;
use reaper_exec::par_index_map_pooled;
use reaper_exec::pool::BoundedQueue;

/// One simulated lane: runs up to `max_batches` batches, polling its
/// token at each batch boundary (i.e. before starting a batch). Returns
/// the per-batch results produced before the stop.
fn run_batches(token: &CancelToken, lane: usize, max_batches: usize) -> Vec<u64> {
    let mut produced = Vec::new();
    for batch in 0..max_batches {
        if token.is_cancelled() {
            break;
        }
        // The "kernel batch": pure compute, deterministic in (lane, batch).
        produced.push((lane as u64) << 32 | batch as u64);
    }
    produced
}

#[test]
fn pre_cancelled_lanes_produce_nothing_and_live_lanes_everything() {
    let tokens: Arc<Vec<CancelToken>> = Arc::new((0..16).map(|_| CancelToken::new()).collect());
    for (i, t) in tokens.iter().enumerate() {
        if i % 2 == 1 {
            t.cancel();
        }
    }
    let lanes = par_index_map_pooled(16, 1, {
        let tokens = Arc::clone(&tokens);
        Arc::new(move |r: core::ops::Range<usize>| {
            r.map(|lane| run_batches(&tokens[lane], lane, 8))
                .collect::<Vec<_>>()
        })
    });
    let lanes: Vec<Vec<u64>> = lanes.into_iter().flatten().collect();
    assert_eq!(lanes.len(), 16);
    for (lane, produced) in lanes.iter().enumerate() {
        if lane % 2 == 1 {
            assert!(produced.is_empty(), "cancelled lane {lane} produced work");
        } else {
            assert_eq!(produced.len(), 8, "live lane {lane} must finish");
        }
    }
}

#[test]
fn self_cancellation_lands_on_the_next_batch_boundary() {
    // Each lane cancels its own token after finishing batch 2: the flag
    // is only honored at the next boundary, so exactly batches 0..=2
    // survive — produced results are preserved, nothing is torn mid-batch.
    let results = par_index_map_pooled(
        8,
        1,
        Arc::new(|r: core::ops::Range<usize>| {
            r.map(|lane| {
                let token = CancelToken::new();
                let mut produced = Vec::new();
                for batch in 0..10u64 {
                    if token.is_cancelled() {
                        break;
                    }
                    produced.push(batch);
                    if batch == 2 {
                        token.cancel();
                    }
                }
                (lane, produced)
            })
            .collect::<Vec<_>>()
        }),
    );
    for (lane, produced) in results.into_iter().flatten() {
        assert_eq!(produced, vec![0, 1, 2], "lane {lane}");
    }
}

#[test]
fn external_cancellation_preserves_a_prefix_in_every_lane() {
    // A canceller races the pooled lanes. The stop *point* is
    // scheduling-dependent, but the contract is not: whatever a lane
    // returns must be an exact prefix of the uncancelled batch sequence,
    // and no lane may run past the cap.
    let token = CancelToken::new();
    let started = Arc::new(AtomicUsize::new(0));
    let canceller = {
        let token = token.clone();
        let started = Arc::clone(&started);
        std::thread::spawn(move || {
            while started.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
            token.cancel();
        })
    };
    let lanes = par_index_map_pooled(8, 1, {
        let token = token.clone();
        let started = Arc::clone(&started);
        Arc::new(move |r: core::ops::Range<usize>| {
            started.fetch_add(1, Ordering::AcqRel);
            r.map(|lane| run_batches(&token, lane, 50_000))
                .collect::<Vec<_>>()
        })
    });
    canceller.join().expect("canceller thread");
    for (lane, produced) in lanes.into_iter().flatten().enumerate() {
        assert!(produced.len() <= 50_000);
        let expect: Vec<u64> = (0..produced.len())
            .map(|b| (lane as u64) << 32 | b as u64)
            .collect();
        assert_eq!(produced, expect, "lane {lane} is not an exact prefix");
    }
}

#[test]
fn cancelled_workers_still_drain_a_closed_queue() {
    // Cancellation must never wedge the shutdown path: a worker that
    // stops *processing* when its token is cancelled still pops until
    // the close-then-drain contract hands it `None`.
    let queue = Arc::new(BoundedQueue::new(64));
    let token = CancelToken::new();
    token.cancel();
    for i in 0..40u64 {
        queue.try_push(i).expect("room");
    }
    queue.close();
    let processed = Arc::new(AtomicUsize::new(0));
    let drained = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let token = token.clone();
            let processed = Arc::clone(&processed);
            let drained = Arc::clone(&drained);
            std::thread::spawn(move || {
                while let Some(_item) = queue.pop() {
                    drained.fetch_add(1, Ordering::Relaxed);
                    if token.is_cancelled() {
                        continue; // discard, but keep draining
                    }
                    processed.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("drain worker");
    }
    assert_eq!(drained.load(Ordering::Relaxed), 40, "every item drained");
    assert_eq!(processed.load(Ordering::Relaxed), 0, "nothing processed after cancel");
    assert!(queue.is_empty());
}

#[test]
fn late_cancellation_keeps_processed_prefix_and_drains_the_rest() {
    // Single consumer, deterministic: process 10 items, then the token
    // is cancelled mid-stream; the remaining 30 drain unprocessed.
    let queue = BoundedQueue::new(64);
    let token = CancelToken::new();
    for i in 0..40u64 {
        queue.try_push(i).expect("room");
    }
    queue.close();
    let mut processed = Vec::new();
    let mut drained = 0usize;
    while let Some(item) = queue.pop() {
        drained += 1;
        if token.is_cancelled() {
            continue;
        }
        processed.push(item);
        if processed.len() == 10 {
            token.cancel();
        }
    }
    assert_eq!(drained, 40);
    assert_eq!(processed, (0..10u64).collect::<Vec<_>>());
}
