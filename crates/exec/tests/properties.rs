//! Property-based tests of the deterministic RNG streams and the
//! parallel-map contract that the golden-table regression relies on:
//! outcomes must depend only on the `(seed, domain, nonce, item)` tuple,
//! never on iteration order or thread count.

use proptest::prelude::*;
use reaper_exec::rng::stream;
use reaper_exec::{par_map, set_thread_count};

proptest! {
    #[test]
    fn same_tuple_reproduces_the_same_stream(parts in proptest::collection::vec(any::<u64>(), 0..6)) {
        let a: Vec<u64> = {
            let mut s = stream(&parts);
            (0..16).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = stream(&parts);
            (0..16).map(|_| s.next_u64()).collect()
        };
        prop_assert_eq!(a, b);
    }

    #[test]
    fn distinct_tuples_give_distinct_streams(
        parts in proptest::collection::vec(any::<u64>(), 1..6),
        idx in 0usize..6,
        delta in 1u64..u64::MAX,
    ) {
        // Perturb one element of the tuple; the derived streams must not
        // collide on their first draws (a collision over 128 bits of
        // output from a 64-bit hash is astronomically unlikely, so any
        // hit here is a real mixing defect).
        let mut other = parts.clone();
        let i = idx % other.len();
        other[i] = other[i].wrapping_add(delta);
        prop_assume!(other != parts);
        let mut s = stream(&parts);
        let mut t = stream(&other);
        prop_assert!(
            (s.next_u64(), s.next_u64()) != (t.next_u64(), t.next_u64()),
            "streams collided for perturbed tuples"
        );
    }

    #[test]
    fn neighboring_tuples_are_statistically_independent(
        domain: u64,
        base in 0u64..u64::MAX - 256,
    ) {
        // First draws of 128 adjacent lanes: pairwise Hamming distance
        // should average ~32 bits. Catastrophic lane correlation (e.g. a
        // counter leaking through the mix) would drag this far off.
        let mut total = 0u32;
        let n = 128u64;
        for i in 0..n {
            let x = stream(&[domain, base + i]).next_u64();
            let y = stream(&[domain, base + i + 1]).next_u64();
            total += (x ^ y).count_ones();
        }
        let avg = f64::from(total) / n as f64;
        prop_assert!((avg - 32.0).abs() < 4.0, "avg hamming {avg}");
    }

    #[test]
    fn par_map_matches_sequential_map_at_any_thread_count(
        items in proptest::collection::vec(any::<u64>(), 0..200),
        threads in 1usize..8,
    ) {
        set_thread_count(Some(threads));
        let f = |&x: &u64| {
            let mut s = stream(&[0xD0E5, x]);
            s.next_u64()
        };
        let parallel = par_map(&items, f);
        set_thread_count(None);
        let sequential: Vec<u64> = items.iter().map(f).collect();
        prop_assert_eq!(parallel, sequential, "order or content diverged");
    }
}

#[test]
fn par_map_propagates_worker_panics() {
    // A panic inside `f` must surface to the caller, like a sequential
    // loop — silently dropping a failed work item would corrupt results.
    let items: Vec<u64> = (0..64).collect();
    let result = std::panic::catch_unwind(|| {
        par_map(&items, |&x| {
            assert!(x != 17, "injected failure");
            x
        })
    });
    assert!(result.is_err(), "panic in worker was swallowed");
}
