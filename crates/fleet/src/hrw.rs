//! Rendezvous (highest-random-weight) placement of job IDs onto shards.
//!
//! Every `(shard, job)` pair gets a pseudo-random score; the job lives
//! on the highest-scoring shard. Two properties make this the right
//! scheme for a profile fleet:
//!
//! * **Determinism and order independence** — the score depends only on
//!   the shard *name* and the job ID, so every router instance (and
//!   every restart of one) computes the same placement regardless of
//!   the order shards were registered in. Ties break toward the
//!   lexicographically smallest name, never toward slice position.
//! * **Minimal disruption** — adding a shard moves exactly the keys the
//!   new shard now wins (≈ `1/(n+1)` of them); removing a shard moves
//!   only the removed shard's keys. No other key changes owner, so
//!   replicated stores stay warm through membership changes.
//!
//! Shard identity is the *name*, not the socket address: a shard that
//! restarts on a fresh ephemeral port keeps its partition.

use reaper_exec::rng;

/// Domain-separation seed for shard weights, so placement scores share
/// no structure with job IDs (which are themselves splitmix64 chains).
const SHARD_SEED: u64 = 0x5245_4150_4552_4653;

/// The per-shard weight seed derived from its name.
pub fn shard_seed(name: &str) -> u64 {
    rng::hash_bytes(SHARD_SEED, name.as_bytes())
}

/// The rendezvous score of one `(shard, job)` pair.
///
/// `job_id` goes through one extra mix so that job IDs differing in few
/// bits (consecutive seeds) still produce independent score columns.
pub fn score(shard_seed: u64, job_id: u64) -> u64 {
    rng::mix64(shard_seed ^ rng::mix64(job_id))
}

/// Picks the winning shard name for `job_id` from `(name, seed)` pairs
/// (seed as from [`shard_seed`]). Returns `None` for an empty shard
/// set. The result is independent of the slice order.
pub fn place(job_id: u64, shards: &[(String, u64)]) -> Option<&str> {
    let mut best: Option<(&str, u64)> = None;
    for (name, seed) in shards {
        let s = score(*seed, job_id);
        let better = match best {
            None => true,
            Some((best_name, best_score)) => {
                s > best_score || (s == best_score && name.as_str() < best_name)
            }
        };
        if better {
            best = Some((name.as_str(), s));
        }
    }
    best.map(|(name, _)| name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_set(names: &[&str]) -> Vec<(String, u64)> {
        names
            .iter()
            .map(|n| ((*n).to_string(), shard_seed(n)))
            .collect()
    }

    #[test]
    fn placement_ignores_registration_order() {
        let forward = shard_set(&["shard-0", "shard-1", "shard-2", "shard-3"]);
        let reverse = shard_set(&["shard-3", "shard-2", "shard-1", "shard-0"]);
        for job in 0..512u64 {
            let id = rng::mix64(job);
            assert_eq!(place(id, &forward), place(id, &reverse));
        }
    }

    #[test]
    fn removal_moves_only_the_removed_shards_keys() {
        let full = shard_set(&["shard-0", "shard-1", "shard-2", "shard-3"]);
        let without_2: Vec<(String, u64)> = full
            .iter()
            .filter(|(n, _)| n != "shard-2")
            .cloned()
            .collect();
        for job in 0..512u64 {
            let id = rng::mix64(job);
            let before = place(id, &full).unwrap();
            let after = place(id, &without_2).unwrap();
            if before != "shard-2" {
                assert_eq!(before, after, "survivor keys must not move");
            }
        }
    }
}
