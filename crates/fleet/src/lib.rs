//! `reaper-fleet`: a sharded control plane over `reaper-serve`.
//!
//! One profiling server computes every profile itself; a *fleet* splits
//! the job-ID space across N shard servers and puts a router in front,
//! so clients keep speaking the exact `/v1/*` API while capacity and
//! availability scale horizontally:
//!
//! * [`hrw`] — rendezvous (highest-random-weight) placement: the owner
//!   of a job ID is a pure function of `(shard name, job ID)`, stable
//!   under shard additions/removals and across restarts,
//! * [`router`] — the frontend: a `poll(2)` event loop classifying
//!   requests on the loop thread, a worker pool doing the blocking
//!   shard round-trips over pooled keep-alive connections, and relay
//!   threads for chunked watch streams,
//! * [`replication`] — tick-driven pull sync: every shard mirrors its
//!   peers' profile stores via `/v1/sync/manifest` + `delta?since=`,
//!   installing at the peer's exact epochs so ETags survive failover,
//! * [`topology`] — [`Fleet`](topology::Fleet): N shards + router as
//!   one unit, with kill/restart for rolling-restart drills.
//!
//! ## Determinism contract
//!
//! Job execution stays on the shards, which run the same
//! [`reaper_core::ProfilingRequest::execute`] path as a standalone
//! server — so fleet results are bit-identical to single-node results
//! at any shard count, and the byte-equality conformance test holds the
//! line. Placement and replication introduce no wall-clock or hash-map
//! iteration anywhere.
//!
//! The router and topology need the non-blocking event loop and are
//! therefore unix-only, like [`reaper_serve::eventloop`]; [`hrw`] is
//! portable.

pub mod hrw;
#[cfg(unix)]
pub mod replication;
#[cfg(unix)]
pub mod router;
#[cfg(unix)]
pub mod topology;

#[cfg(unix)]
pub use replication::{ReplicationAgent, ReplicationStats};
#[cfg(unix)]
pub use router::{Router, RouterConfig, ShardDirectory};
#[cfg(unix)]
pub use topology::{Fleet, FleetConfig};
