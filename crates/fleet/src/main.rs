//! `reaper-fleet` binary: start N shards and a router, replicate on a
//! fixed tick, and print the addresses.
//!
//! ```text
//! cargo run --release -p reaper-fleet -- --shards 4 --addr 127.0.0.1:8080
//! ```
//!
//! `--ticks N` exits after N replication ticks (0 = run until killed),
//! which is how scripts drive a bounded session.

// A CLI front-end prints and exits by design.
#![allow(clippy::print_stdout, clippy::print_stderr, clippy::exit)]

#[cfg(unix)]
fn main() {
    use std::time::Duration;

    use reaper_fleet::{Fleet, FleetConfig};

    let mut config = FleetConfig::default();
    let mut replicate_ms: u64 = 500;
    let mut ticks: u64 = 0;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = args.get(i).map(String::as_str).unwrap_or("");
        let value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match arg {
            "--shards" => {
                if let Some(v) = value(&mut i).and_then(|v| v.parse().ok()) {
                    config.shards = v;
                }
            }
            "--addr" => {
                if let Some(v) = value(&mut i) {
                    config.router.addr = v;
                }
            }
            "--workers" => {
                if let Some(v) = value(&mut i).and_then(|v| v.parse().ok()) {
                    config.shard_template.workers = v;
                }
            }
            "--replicate-ms" => {
                if let Some(v) = value(&mut i).and_then(|v| v.parse().ok()) {
                    replicate_ms = v;
                }
            }
            "--ticks" => {
                if let Some(v) = value(&mut i).and_then(|v| v.parse().ok()) {
                    ticks = v;
                }
            }
            other => {
                eprintln!("reaper-fleet: unknown argument `{other}`");
                eprintln!(
                    "usage: reaper-fleet [--shards N] [--addr HOST:PORT] [--workers N] \
                     [--replicate-ms MS] [--ticks N]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let fleet = match Fleet::start(config) {
        Ok(fleet) => fleet,
        Err(e) => {
            eprintln!("reaper-fleet: failed to start: {e}");
            std::process::exit(1);
        }
    };
    match fleet.router_addr() {
        Some(addr) => println!("router listening on http://{addr}"),
        None => println!("router not running"),
    }
    for i in 0..fleet.shard_count() {
        if let Some(addr) = fleet.shard_addr(i) {
            println!("shard-{i} on http://{addr}");
        }
    }

    let mut done: u64 = 0;
    loop {
        std::thread::sleep(Duration::from_millis(replicate_ms.max(10)));
        let stats = fleet.replicate_once();
        done += 1;
        if stats.installed_full > 0 || stats.applied_chains > 0 {
            println!(
                "replication tick {done}: {} full installs, {} delta chains",
                stats.installed_full, stats.applied_chains
            );
        }
        if ticks > 0 && done >= ticks {
            break;
        }
    }
    fleet.shutdown();
}

#[cfg(not(unix))]
fn main() {
    eprintln!("reaper-fleet requires the unix poll(2) event loop");
}
