//! Pull-based profile replication between shards.
//!
//! Each shard runs a [`ReplicationAgent`] that, once per logical tick,
//! fetches every peer's `/v1/sync/manifest` and reconciles its own
//! store against it:
//!
//! * a profile it has never seen is fetched in full and installed *at
//!   the peer's epoch* with the peer's job record — so the replica's
//!   ETag is byte-identical to the primary's and a failed-over client
//!   revalidates with `If-None-Match` at zero recompute cost;
//! * a profile it holds at an older epoch is caught up with one
//!   `delta?since=` pull — the same `RPD1` chain a client would fetch —
//!   applied link-by-link with per-link hash verification;
//! * anything that fails verification degrades to a full re-fetch, so
//!   corruption can delay convergence but never propagate.
//!
//! The agent is tick-driven (`run_once`): the fleet binary and the load
//! generator call it on their own schedule, which keeps replication
//! deterministic under test and free of background wall-clock state.

use std::sync::Arc;

use reaper_core::ProfilingRequest;
use reaper_serve::{api, json, ConnectionPool, JobRequest, JobSummary, SyncApply, SyncHandle};

use crate::router::ShardDirectory;

/// What one replication tick did, summed over all peers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Peer manifests fetched.
    pub peers_pulled: u64,
    /// Peers that did not answer (down or mid-restart).
    pub peers_unreachable: u64,
    /// Profiles installed from a full snapshot fetch.
    pub installed_full: u64,
    /// Profiles advanced by applying a delta chain.
    pub applied_chains: u64,
    /// Manifest entries already at (or past) the peer's head.
    pub up_to_date: u64,
    /// Entries that could not be applied this tick (malformed manifest
    /// rows, evicted peer bytes, hash mismatches).
    pub failed: u64,
}

impl ReplicationStats {
    /// Accumulates another tick's stats into this one.
    pub fn absorb(&mut self, other: ReplicationStats) {
        self.peers_pulled += other.peers_pulled;
        self.peers_unreachable += other.peers_unreachable;
        self.installed_full += other.installed_full;
        self.applied_chains += other.applied_chains;
        self.up_to_date += other.up_to_date;
        self.failed += other.failed;
    }
}

/// The per-shard replication agent. Cheap to construct; holds only the
/// shard's [`SyncHandle`] and the shared directory.
pub struct ReplicationAgent {
    shard: String,
    local: SyncHandle,
    directory: Arc<ShardDirectory>,
}

impl ReplicationAgent {
    /// Creates the agent for `shard` (its own directory entry is
    /// skipped during pulls).
    pub fn new(shard: String, local: SyncHandle, directory: Arc<ShardDirectory>) -> Self {
        Self {
            shard,
            local,
            directory,
        }
    }

    /// One replication tick: pull every peer's manifest and reconcile.
    pub fn run_once(&self) -> ReplicationStats {
        let mut stats = ReplicationStats::default();
        for (name, pool) in self.directory.pools() {
            if name == self.shard {
                continue;
            }
            let Ok(resp) = pool.request("GET", "/v1/sync/manifest", &[], &[]) else {
                stats.peers_unreachable += 1;
                continue;
            };
            if resp.status != 200 {
                stats.failed += 1;
                continue;
            }
            self.local.note_replication_pull();
            stats.peers_pulled += 1;
            self.reconcile_manifest(&pool, &resp.body, &mut stats);
        }
        stats
    }

    fn reconcile_manifest(
        &self,
        pool: &ConnectionPool,
        manifest: &[u8],
        stats: &mut ReplicationStats,
    ) {
        let Ok(text) = core::str::from_utf8(manifest) else {
            stats.failed += 1;
            return;
        };
        let Ok(doc) = json::parse(text) else {
            stats.failed += 1;
            return;
        };
        let Some(json::Value::Arr(entries)) = doc.get("entries") else {
            stats.failed += 1;
            return;
        };
        for entry in entries {
            self.reconcile_entry(pool, entry, stats);
        }
    }

    fn reconcile_entry(
        &self,
        pool: &ConnectionPool,
        entry: &json::Value,
        stats: &mut ReplicationStats,
    ) {
        let parsed = parse_manifest_entry(entry);
        let Some(entry) = parsed else {
            stats.failed += 1;
            return;
        };
        let local_head = self.local.head_of(entry.id);
        let behind = match &local_head {
            None => true,
            Some(h) => {
                h.epoch < entry.epoch || (h.epoch == entry.epoch && h.hash != entry.hash)
            }
        };
        if !behind {
            stats.up_to_date += 1;
            return;
        }
        match local_head {
            Some(head) => self.pull_delta(pool, &entry, head.epoch, stats),
            None => self.pull_full(pool, &entry, stats),
        }
    }

    /// Catches a known profile up via `delta?since=`; falls back to a
    /// full fetch when the chain no longer extends the local head.
    fn pull_delta(
        &self,
        pool: &ConnectionPool,
        entry: &ManifestEntry,
        since: u64,
        stats: &mut ReplicationStats,
    ) {
        let jid = ProfilingRequest::format_job_id(entry.id);
        let target = format!("/v1/profiles/{jid}/delta?since={since}");
        let Ok(resp) = pool.request("GET", &target, &[], &[]) else {
            stats.peers_unreachable += 1;
            return;
        };
        match resp.status {
            304 => stats.up_to_date += 1,
            200 if resp.header("x-reaper-delta") == Some("chain") => {
                match self.local.apply_delta_chain(entry.id, &resp.body) {
                    SyncApply::Applied { .. } => stats.applied_chains += 1,
                    SyncApply::NoOp => stats.up_to_date += 1,
                    SyncApply::NeedFull => self.pull_full(pool, entry, stats),
                }
            }
            // Full fallback (compaction passed `since`), or anything
            // unexpected: a full fetch answers both.
            _ => self.pull_full(pool, entry, stats),
        }
    }

    /// Fetches the peer's full head snapshot and installs it at the
    /// peer's exact epoch.
    fn pull_full(&self, pool: &ConnectionPool, entry: &ManifestEntry, stats: &mut ReplicationStats) {
        let jid = ProfilingRequest::format_job_id(entry.id);
        let Ok(resp) = pool.request("GET", &format!("/v1/profiles/{jid}"), &[], &[]) else {
            stats.peers_unreachable += 1;
            return;
        };
        if resp.status != 200 {
            // 410 = the peer evicted the bytes (metadata-only head);
            // nothing to copy this tick.
            stats.failed += 1;
            return;
        }
        let Some((hash, epoch)) = resp.header("etag").and_then(parse_etag) else {
            stats.failed += 1;
            return;
        };
        match self.local.install_full(
            entry.id,
            epoch,
            hash,
            resp.body,
            &entry.request,
            entry.summary.clone(),
        ) {
            SyncApply::Applied { .. } => stats.installed_full += 1,
            SyncApply::NoOp => stats.up_to_date += 1,
            SyncApply::NeedFull => stats.failed += 1,
        }
    }
}

/// One decoded `/v1/sync/manifest` entry. The embedded request keeps
/// its job kind (profiling or portfolio), so a replica's record is
/// indistinguishable from the primary's.
struct ManifestEntry {
    id: u64,
    epoch: u64,
    hash: u64,
    request: JobRequest,
    summary: JobSummary,
}

fn parse_manifest_entry(entry: &json::Value) -> Option<ManifestEntry> {
    let id = entry
        .get("job_id")
        .and_then(json::Value::as_str)
        .and_then(ProfilingRequest::parse_job_id)?;
    let epoch = entry.get("epoch").and_then(json::Value::as_u64)?;
    let hash = entry
        .get("hash")
        .and_then(json::Value::as_str)
        .and_then(|h| u64::from_str_radix(h, 16).ok())?;
    let request = api::parse_job_body(entry.get("request")?.encode().as_bytes()).ok()?;
    let summary = JobSummary::from_value(entry.get("summary")?)?;
    Some(ManifestEntry {
        id,
        epoch,
        hash,
        request,
        summary,
    })
}

/// Parses a strong profile ETag (`"<hash16>-<epoch>"`) into
/// `(hash, epoch)`.
fn parse_etag(tag: &str) -> Option<(u64, u64)> {
    let inner = tag.strip_prefix('"')?.strip_suffix('"')?;
    let (hash, epoch) = inner.split_once('-')?;
    Some((
        u64::from_str_radix(hash, 16).ok()?,
        epoch.parse::<u64>().ok()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn etag_parses_back_to_hash_and_epoch() {
        assert_eq!(
            parse_etag("\"00000000deadbeef-7\""),
            Some((0xdead_beef, 7))
        );
        assert_eq!(parse_etag("deadbeef-7"), None);
        assert_eq!(parse_etag("\"nothex-7\""), None);
    }
}
