//! The shard router: a non-blocking HTTP frontend that proxies the
//! `/v1/*` API onto the owning shard, so clients talk to a fleet
//! exactly as they talk to one server.
//!
//! ## Shape
//!
//! The frontend is the same `poll(2)` event loop the shards use
//! ([`reaper_serve::eventloop`]); a request's placement is decided on
//! the loop thread (pure hashing, no I/O) and the blocking shard
//! round-trip happens on a proxy worker pool, which completes the
//! response back into the loop:
//!
//! ```text
//! client ── event loop ── classify ──► BoundedQueue ──► proxy worker
//!             ▲                                             │
//!             └────────────── complete(conn, resp) ◄────────┘
//!                                 (ConnectionPool per shard)
//! ```
//!
//! Watch subscriptions are long-lived chunked streams, so they bypass
//! the queue: the loop hands the client socket to a relay thread that
//! streams the shard's chunked response through verbatim.
//!
//! ## Failover
//!
//! A shard round-trip that fails (connect refused, mid-response drop)
//! answers `503` with a `retry-after` hint and counts one failover; the
//! router itself stays up. When the shard restarts — typically on a
//! fresh ephemeral port — [`ShardDirectory::update_addr`] retargets its
//! connection pool and the same requests succeed again. Placement is
//! keyed by shard *name* ([`crate::hrw`]), so a restart never moves the
//! partition.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

use reaper_core::ProfilingRequest;
use reaper_exec::pool::{BoundedQueue, PushError, WorkerPool};
use reaper_exec::sync::lock;
use reaper_serve::eventloop::{ConnToken, EventLoop, EventLoopHandle, Handled, Handler};
use reaper_serve::http::{self, ClientResponse, Request, Response};
use reaper_serve::metrics::{render_fleet, FleetIdentity, FleetMetrics};
use reaper_serve::{api, json, ConnectionPool, ServiceMetrics};

use crate::hrw;

/// Live shard membership: name → (placement seed, connection pool).
///
/// Shared between the router (placement + proxying) and the
/// replication agents (peer pulls), so one [`update_addr`] after a
/// shard restart repoints both.
///
/// [`update_addr`]: ShardDirectory::update_addr
pub struct ShardDirectory {
    /// `BTreeMap` so every iteration (placement scans, peer pulls,
    /// metrics) sees shards in one deterministic order.
    state: Mutex<BTreeMap<String, ShardEntry>>,
    pool_idle: usize,
}

struct ShardEntry {
    seed: u64,
    pool: Arc<ConnectionPool>,
}

impl ShardDirectory {
    /// Builds a directory from `(name, address)` pairs, keeping at most
    /// `pool_idle` warm connections per shard.
    pub fn new(shards: &[(String, SocketAddr)], pool_idle: usize) -> Self {
        let mut state = BTreeMap::new();
        for (name, addr) in shards {
            state.insert(
                name.clone(),
                ShardEntry {
                    seed: hrw::shard_seed(name),
                    pool: Arc::new(ConnectionPool::new(*addr, pool_idle)),
                },
            );
        }
        Self {
            state: Mutex::new(state),
            pool_idle,
        }
    }

    /// Registers a shard or repoints an existing one (a restart on a
    /// fresh ephemeral port), dropping its pooled connections.
    pub fn update_addr(&self, name: &str, addr: SocketAddr) {
        let mut state = lock(&self.state);
        match state.get(name) {
            Some(entry) => entry.pool.retarget(addr),
            None => {
                state.insert(
                    name.to_string(),
                    ShardEntry {
                        seed: hrw::shard_seed(name),
                        pool: Arc::new(ConnectionPool::new(addr, self.pool_idle)),
                    },
                );
            }
        }
    }

    /// The owning shard for `job_id`, per rendezvous placement.
    pub fn place(&self, job_id: u64) -> Option<(String, Arc<ConnectionPool>)> {
        let state = lock(&self.state);
        let shards: Vec<(String, u64)> = state
            .iter()
            .map(|(name, entry)| (name.clone(), entry.seed))
            .collect();
        let winner = hrw::place(job_id, &shards)?;
        state
            .get(winner)
            .map(|entry| (winner.to_string(), Arc::clone(&entry.pool)))
    }

    /// Every shard's `(name, pool)`, in name order.
    pub fn pools(&self) -> Vec<(String, Arc<ConnectionPool>)> {
        lock(&self.state)
            .iter()
            .map(|(name, entry)| (name.clone(), Arc::clone(&entry.pool)))
            .collect()
    }

    /// Number of registered shards.
    pub fn len(&self) -> usize {
        lock(&self.state).len()
    }

    /// True when no shard is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Router configuration; `Default` suits tests (ephemeral port).
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Blocking proxy workers (each drives one shard round-trip at a
    /// time).
    pub proxy_workers: usize,
    /// Proxy queue bound; requests beyond it are shed with `503`.
    pub proxy_queue: usize,
    /// Event-loop registered-socket cap.
    pub max_connections: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            proxy_workers: 4,
            proxy_queue: 256,
            max_connections: reaper_serve::server::DEFAULT_MAX_CONNECTIONS,
        }
    }
}

/// One queued proxy round-trip, owned by a proxy worker until it
/// completes the response back into the event loop.
struct ProxyTicket {
    method: String,
    target: String,
    /// Forwarded request headers (the conditional-GET subset).
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    job_id: u64,
    conn: ConnToken,
}

struct RouterShared {
    shutdown: AtomicBool,
    directory: Arc<ShardDirectory>,
    queue: BoundedQueue<ProxyTicket>,
    handle: EventLoopHandle,
    identity: FleetIdentity,
    fleet: FleetMetrics,
}

/// A running shard router; shut it down explicitly like a [`Server`].
///
/// [`Server`]: reaper_serve::Server
pub struct Router {
    shared: Arc<RouterShared>,
    local_addr: SocketAddr,
    loop_thread: Option<JoinHandle<()>>,
    workers: Option<WorkerPool>,
}

impl Router {
    /// Binds the frontend, spawns the proxy workers and the event loop.
    ///
    /// # Errors
    /// Propagates socket bind failures.
    pub fn start(config: RouterConfig, directory: Arc<ShardDirectory>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let event_loop = EventLoop::new(listener, config.max_connections)?;
        let shared = Arc::new(RouterShared {
            shutdown: AtomicBool::new(false),
            directory,
            queue: BoundedQueue::new(config.proxy_queue.max(1)),
            handle: event_loop.handle(),
            identity: FleetIdentity {
                role: "router",
                shard_id: None,
            },
            fleet: FleetMetrics::new(),
        });

        let workers = {
            let shared = Arc::clone(&shared);
            WorkerPool::spawn(
                "reaper-fleet-proxy",
                config.proxy_workers.max(1),
                move |_i| proxy_loop(&shared),
            )
        };

        let loop_thread = {
            let handler = Arc::new(RouterHandler {
                shared: Arc::clone(&shared),
            });
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("reaper-fleet-router".to_string())
                .spawn(move || event_loop.run(&handler, &shared.shutdown))?
        };

        Ok(Self {
            shared,
            local_addr,
            loop_thread: Some(loop_thread),
            workers: Some(workers),
        })
    }

    /// The bound frontend address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stop the loop, close the queue, join workers.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        if let Some(h) = self.loop_thread.take() {
            let _ = h.join();
        }
        if let Some(pool) = self.workers.take() {
            pool.join();
        }
    }
}

/// Classifies a request on the loop thread (no I/O).
struct RouterHandler {
    shared: Arc<RouterShared>,
}

impl Handler for RouterHandler {
    fn handle(&self, request: Request, conn: ConnToken) -> Handled {
        match classify(&request) {
            Classified::Health => Handled::Respond(healthz(&self.shared)),
            Classified::Metrics => Handled::Respond(metrics_page(&self.shared)),
            Classified::Bad(response) => Handled::Respond(response),
            Classified::Proxy(job_id) => {
                let ticket = ProxyTicket {
                    method: request.method.clone(),
                    target: request.target.clone(),
                    headers: forwarded_headers(&request),
                    body: request.body,
                    job_id,
                    conn,
                };
                match self.shared.queue.try_push(ticket) {
                    Ok(()) => Handled::Deferred,
                    Err(PushError::Full) => Handled::Respond(shed("router queue is full; retry")),
                    Err(PushError::Closed) => {
                        Handled::Respond(shed("router is shutting down"))
                    }
                }
            }
            Classified::WatchRelay(job_id) => {
                let shared = Arc::clone(&self.shared);
                let method = request.method.clone();
                let target = request.target.clone();
                Handled::TakeOver(Box::new(move |client, _residual| {
                    relay_watch(&shared, job_id, &method, &target, client);
                }))
            }
        }
    }
}

enum Classified {
    Health,
    Metrics,
    Proxy(u64),
    WatchRelay(u64),
    Bad(Response),
}

/// Maps a request to its disposition. Job-addressed endpoints route by
/// the ID in the path; submissions route by the content-addressed ID of
/// the parsed body — the same hash the shard will compute, which is
/// what makes fleet results bit-identical to single-node ones.
fn classify(request: &Request) -> Classified {
    let path = request.path();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => Classified::Health,
        ("GET", "/metrics") => Classified::Metrics,
        ("POST", "/v1/jobs") => match api::parse_job_body(&request.body) {
            Ok(parsed) => Classified::Proxy(parsed.job_id()),
            Err(message) => Classified::Bad(Response::json(400, api::error_body(&message))),
        },
        _ => {
            let id_text = path
                .strip_prefix("/v1/jobs/")
                .or_else(|| {
                    path.strip_prefix("/v1/profiles/")
                        .map(|rest| rest.split_once('/').map_or(rest, |(id, _)| id))
                });
            match id_text.and_then(ProfilingRequest::parse_job_id) {
                Some(id) if path.ends_with("/watch") => Classified::WatchRelay(id),
                Some(id) => Classified::Proxy(id),
                None => Classified::Bad(Response::json(
                    404,
                    api::error_body("no such resource (fleet routes by job ID)"),
                )),
            }
        }
    }
}

/// The request headers the router forwards to the shard: the
/// conditional-GET family, so ETag revalidation works through the
/// proxy.
fn forwarded_headers(request: &Request) -> Vec<(String, String)> {
    request
        .headers
        .iter()
        .filter(|(name, _)| name == "if-none-match")
        .cloned()
        .collect()
}

/// A `503` with an explicit retry hint.
fn shed(reason: &str) -> Response {
    Response::json(503, api::error_body(reason)).with_header("retry-after", "1".to_string())
}

fn healthz(shared: &Arc<RouterShared>) -> Response {
    let body = json::obj([
        ("ok", json::Value::Bool(true)),
        ("role", json::str(shared.identity.role)),
        (
            "shards",
            json::uint(reaper_exec::num::to_u64(shared.directory.len())),
        ),
    ]);
    Response::json(200, body.encode())
}

fn metrics_page(shared: &Arc<RouterShared>) -> Response {
    let mut text = String::new();
    // The router holds no store; its epoch gauge is identically zero.
    render_fleet(&shared.identity, 0, &shared.fleet, &mut text);
    Response::text(200, text)
}

/// One proxy worker: drain tickets, round-trip each to its shard, and
/// complete the response into the event loop.
fn proxy_loop(shared: &Arc<RouterShared>) {
    while let Some(ticket) = shared.queue.pop() {
        let response = proxy_one(shared, &ticket);
        shared.handle.complete(ticket.conn, response);
    }
}

fn proxy_one(shared: &Arc<RouterShared>, ticket: &ProxyTicket) -> Response {
    let Some((_name, pool)) = shared.directory.place(ticket.job_id) else {
        return shed("no shards registered");
    };
    ServiceMetrics::inc(&shared.fleet.proxied_requests);
    let headers: Vec<(&str, &str)> = ticket
        .headers
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_str()))
        .collect();
    match pool.request(&ticket.method, &ticket.target, &headers, &ticket.body) {
        Ok(resp) => downstream_response(&resp),
        Err(_) => {
            ServiceMetrics::inc(&shared.fleet.failovers);
            shed("shard unavailable; retry")
        }
    }
}

/// Re-frames a shard's response for the client, preserving the headers
/// the API contract depends on (`etag`, `x-reaper-epoch`,
/// `x-reaper-delta`) and the content type.
fn downstream_response(resp: &ClientResponse) -> Response {
    let content_type = match resp.header("content-type") {
        Some(v) if v.starts_with("application/json") => "application/json",
        Some(v) if v.starts_with("text/plain") => "text/plain; version=0.0.4",
        _ => "application/octet-stream",
    };
    let mut out = Response {
        status: resp.status,
        content_type,
        extra_headers: Vec::new(),
        body: resp.body.clone(),
    };
    for name in ["etag", "x-reaper-epoch", "x-reaper-delta"] {
        if let Some(value) = resp.header(name) {
            out.extra_headers.push((name, value.to_string()));
        }
    }
    out
}

/// Relays a watch subscription on its own thread: forwards the request
/// to the owning shard over a fresh connection (watch streams are
/// long-lived, so they never come from the pool) and copies the chunked
/// response through byte-for-byte until the shard closes it.
fn relay_watch(
    shared: &Arc<RouterShared>,
    job_id: u64,
    method: &str,
    target: &str,
    mut client: TcpStream,
) {
    let Some((_name, pool)) = shared.directory.place(job_id) else {
        let _ = http::write_response(&mut client, &shed("no shards registered"), false);
        return;
    };
    ServiceMetrics::inc(&shared.fleet.proxied_requests);
    let upstream = TcpStream::connect(pool.addr());
    let Ok(mut upstream) = upstream else {
        ServiceMetrics::inc(&shared.fleet.failovers);
        let _ = http::write_response(&mut client, &shed("shard unavailable; retry"), false);
        return;
    };
    let _ = upstream.set_nodelay(true);
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: reaper-fleet\r\ncontent-length: 0\r\n\
         connection: close\r\n\r\n"
    );
    if upstream.write_all(head.as_bytes()).is_err() {
        ServiceMetrics::inc(&shared.fleet.failovers);
        let _ = http::write_response(&mut client, &shed("shard unavailable; retry"), false);
        return;
    }
    // Verbatim relay: the shard speaks `connection: close`, so EOF is
    // the end of the stream for the client too.
    let mut buf = [0u8; 8 * 1024];
    loop {
        match upstream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                let Some(chunk) = buf.get(..n) else { break };
                if client.write_all(chunk).is_err() {
                    break;
                }
            }
        }
    }
}
