//! Fleet topology: N shard servers + one router, managed as a unit.
//!
//! [`Fleet`] owns the in-process shard [`Server`] instances, the shared
//! [`ShardDirectory`], and the [`Router`]. It exposes the operations
//! the failover conformance test and the load generator script:
//! killing a shard, restarting it on a fresh ephemeral port (the
//! directory retargets; placement is name-keyed so the partition does
//! not move), and running one replication tick across all live shards.

use std::net::SocketAddr;
use std::sync::Arc;

use reaper_serve::{Server, ServerConfig, SyncHandle};

use crate::replication::{ReplicationAgent, ReplicationStats};
use crate::router::{Router, RouterConfig, ShardDirectory};

/// Warm connections the router keeps per shard.
const POOL_IDLE_PER_SHARD: usize = 8;

/// Fleet configuration: how many shards, their common server template,
/// and the router frontend.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Shard count (minimum 1).
    pub shards: usize,
    /// Template for every shard's [`ServerConfig`]; `addr` is replaced
    /// with an ephemeral bind and `shard_id` with the shard index.
    pub shard_template: ServerConfig,
    /// Router frontend configuration.
    pub router: RouterConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            shard_template: ServerConfig::default(),
            router: RouterConfig::default(),
        }
    }
}

struct ShardInstance {
    name: String,
    template: ServerConfig,
    server: Option<Server>,
    sync: Option<SyncHandle>,
}

/// A running fleet. Shut down explicitly; dropping it leaks the
/// listener threads like a dropped [`Server`] does.
pub struct Fleet {
    shards: Vec<ShardInstance>,
    directory: Arc<ShardDirectory>,
    router: Option<Router>,
}

impl Fleet {
    /// Starts `config.shards` shard servers on ephemeral ports, wires
    /// the directory, and starts the router in front of them.
    ///
    /// # Errors
    /// Propagates bind/spawn failures from any component.
    pub fn start(config: FleetConfig) -> std::io::Result<Self> {
        let mut shards = Vec::new();
        let mut addrs = Vec::new();
        for i in 0..config.shards.max(1) {
            let name = format!("shard-{i}");
            let mut template = config.shard_template.clone();
            template.addr = "127.0.0.1:0".to_string();
            template.shard_id = Some(reaper_exec::num::to_u64(i));
            let server = Server::start(template.clone())?;
            addrs.push((name.clone(), server.local_addr()));
            shards.push(ShardInstance {
                name,
                template,
                sync: Some(server.sync_handle()),
                server: Some(server),
            });
        }
        let directory = Arc::new(ShardDirectory::new(&addrs, POOL_IDLE_PER_SHARD));
        let router = Router::start(config.router, Arc::clone(&directory))?;
        Ok(Self {
            shards,
            directory,
            router: Some(router),
        })
    }

    /// The router frontend address clients talk to.
    pub fn router_addr(&self) -> Option<SocketAddr> {
        self.router.as_ref().map(Router::local_addr)
    }

    /// The shared shard directory (placement + pools).
    pub fn directory(&self) -> &Arc<ShardDirectory> {
        &self.directory
    }

    /// Number of shards (live or killed).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard's current address, `None` while killed.
    pub fn shard_addr(&self, index: usize) -> Option<SocketAddr> {
        self.shards
            .get(index)?
            .server
            .as_ref()
            .map(Server::local_addr)
    }

    /// The index of the shard that owns `job_id`, per the directory's
    /// current placement.
    pub fn owner_of(&self, job_id: u64) -> Option<usize> {
        let (name, _pool) = self.directory.place(job_id)?;
        self.shards.iter().position(|s| s.name == name)
    }

    /// Stops one shard (its sockets close; router round-trips to it
    /// start failing over). Returns false for an unknown or already
    /// killed shard.
    pub fn kill_shard(&mut self, index: usize) -> bool {
        let Some(instance) = self.shards.get_mut(index) else {
            return false;
        };
        instance.sync = None;
        match instance.server.take() {
            Some(server) => {
                server.shutdown();
                true
            }
            None => false,
        }
    }

    /// Restarts a killed shard on a fresh ephemeral port and retargets
    /// the directory. The new instance starts with an empty store; a
    /// replication tick re-fills it from its peers at the original
    /// epochs.
    ///
    /// # Errors
    /// Propagates bind/spawn failures.
    pub fn restart_shard(&mut self, index: usize) -> std::io::Result<Option<SocketAddr>> {
        let Some(instance) = self.shards.get_mut(index) else {
            return Ok(None);
        };
        if instance.server.is_some() {
            return Ok(instance.server.as_ref().map(Server::local_addr));
        }
        let server = Server::start(instance.template.clone())?;
        let addr = server.local_addr();
        instance.sync = Some(server.sync_handle());
        instance.server = Some(server);
        self.directory.update_addr(&instance.name, addr);
        Ok(Some(addr))
    }

    /// One replication tick on every live shard, in shard order.
    pub fn replicate_once(&self) -> ReplicationStats {
        let mut total = ReplicationStats::default();
        for instance in &self.shards {
            let Some(sync) = instance.sync.clone() else {
                continue;
            };
            let agent = ReplicationAgent::new(
                instance.name.clone(),
                sync,
                Arc::clone(&self.directory),
            );
            total.absorb(agent.run_once());
        }
        total
    }

    /// Graceful shutdown of the router and every live shard.
    pub fn shutdown(mut self) {
        if let Some(router) = self.router.take() {
            router.shutdown();
        }
        for instance in &mut self.shards {
            if let Some(server) = instance.server.take() {
                server.shutdown();
            }
        }
    }
}
