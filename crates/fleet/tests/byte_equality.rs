//! Fleet byte-equality conformance: a fleet of any shard count must
//! serve profile bytes bit-identical to a direct library execution of
//! the same requests — submissions, reads, ETags, epoch pushes, and
//! delta chains all flow through the router unchanged.
//!
//! One `#[test]` (the fleet spins many servers; serial execution keeps
//! the socket/thread footprint bounded).

#![cfg(unix)]
// Test code may panic on failure.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::indexing_slicing)]

use std::time::Duration;

use reaper_core::{FailureProfile, ProfilingRequest};
use reaper_fleet::{Fleet, FleetConfig};
use reaper_portfolio::PortfolioRequest;
use reaper_serve::{Client, DeltaFetch, ProfileFetch};

/// A job small enough to execute in well under a second on one core.
fn quick_request(seed: u64) -> ProfilingRequest {
    let mut r = ProfilingRequest::example(seed);
    r.capacity_den = 64;
    r.rounds = 2;
    r.target_interval_ms = 512.0;
    r.reach_delta_ms = 128.0;
    r
}

/// Adds one fresh cell to an encoded profile (a re-profiling snapshot).
fn grow_profile(bytes: &[u8]) -> Vec<u8> {
    let profile = FailureProfile::from_bytes(bytes).expect("decode profile");
    let mut cells: Vec<u64> = profile.iter().collect();
    let fresh = cells.iter().max().copied().unwrap_or(0) + 1;
    cells.push(fresh);
    FailureProfile::from_cells(cells).to_bytes()
}

#[test]
fn fleet_bytes_match_direct_execution_at_any_shard_count() {
    const SEEDS: [u64; 6] = [11, 22, 33, 44, 55, 66];

    // Ground truth: direct library execution, no service in the path.
    let mut direct = Vec::new();
    for seed in SEEDS {
        let outcome = quick_request(seed).execute().expect("direct execution");
        direct.push(outcome.run.profile.to_bytes());
    }
    // A portfolio race routes by the same content-addressed ID scheme.
    let race_request = PortfolioRequest::example(77);
    let direct_race = race_request
        .execute()
        .expect("direct race")
        .1
        .run
        .profile
        .to_bytes();

    let mut etags_by_fleet: Vec<Vec<String>> = Vec::new();
    let mut delta_by_fleet: Vec<Vec<u8>> = Vec::new();
    for shards in [1usize, 4] {
        let mut config = FleetConfig {
            shards,
            ..FleetConfig::default()
        };
        config.shard_template.workers = 1;
        let fleet = Fleet::start(config).expect("start fleet");
        let addr = fleet.router_addr().expect("router address");
        let mut client = Client::new(addr);

        let mut job_ids = Vec::new();
        for seed in SEEDS {
            let receipt = client.submit(&quick_request(seed)).expect("submit via router");
            job_ids.push(receipt.job_id);
        }

        let mut etags = Vec::new();
        for (i, job_id) in job_ids.iter().enumerate() {
            let bytes = client
                .wait_for_profile(job_id, Duration::from_millis(10), 1_000)
                .expect("profile via router");
            assert_eq!(
                bytes, direct[i],
                "shards={shards} seed={} served bytes differ from direct execution",
                SEEDS[i]
            );
            match client
                .profile_conditional(job_id, None)
                .expect("conditional fetch")
            {
                ProfileFetch::Fresh { etag, .. } => etags.push(etag),
                other => panic!("expected fresh profile, got {other:?}"),
            }
        }

        // The portfolio job kind is fleet-routable too, with the same
        // byte-identity guarantee.
        let race_receipt = client
            .submit_portfolio(&race_request)
            .expect("submit race via router");
        let race_bytes = client
            .wait_for_profile(&race_receipt.job_id, Duration::from_millis(10), 1_000)
            .expect("race profile via router");
        assert_eq!(
            race_bytes, direct_race,
            "shards={shards} race bytes differ from direct execution"
        );

        // Push one epoch through the router and read the delta chain
        // back; the wire bytes must not depend on the shard count.
        let pushed = grow_profile(&direct[0]);
        let receipt = client
            .push_epoch(&job_ids[0], &pushed)
            .expect("push epoch via router");
        assert_eq!(receipt.epoch, 1);
        assert!(receipt.changed);
        match client.delta_since(&job_ids[0], 0).expect("delta via router") {
            DeltaFetch::Chain { bytes, epoch, .. } => {
                assert_eq!(epoch, 1);
                delta_by_fleet.push(bytes);
            }
            other => panic!("expected delta chain, got {other:?}"),
        }

        etags_by_fleet.push(etags);
        fleet.shutdown();
    }

    // ETags and delta wire bytes are fleet-size invariant too.
    assert_eq!(
        etags_by_fleet[0], etags_by_fleet[1],
        "ETags must be identical at 1 and 4 shards"
    );
    assert_eq!(
        delta_by_fleet[0], delta_by_fleet[1],
        "delta chains must be identical at 1 and 4 shards"
    );
}
