//! Failover conformance: kill the shard that owns a profile mid-run,
//! observe the router shed with `503` + `retry-after`, restart the
//! shard on a fresh port, replicate, and verify the profile comes back
//! under its **original ETag** — a client holding it revalidates to
//! `304` and the restarted shard recomputes nothing.
//!
//! One `#[test]`: the scenario is a strict sequence (seed → replicate →
//! kill → shed → restart → replicate → revalidate).

#![cfg(unix)]
// Test code may panic on failure.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::indexing_slicing)]

use std::time::Duration;

use reaper_core::ProfilingRequest;
use reaper_fleet::{Fleet, FleetConfig};
use reaper_serve::{Client, ClientError, ProfileFetch};

/// A job small enough to execute in well under a second on one core.
fn quick_request(seed: u64) -> ProfilingRequest {
    let mut r = ProfilingRequest::example(seed);
    r.capacity_den = 64;
    r.rounds = 2;
    r.target_interval_ms = 512.0;
    r.reach_delta_ms = 128.0;
    r
}

#[test]
fn killed_shard_sheds_then_recovers_with_original_etags() {
    let mut config = FleetConfig {
        shards: 4,
        ..FleetConfig::default()
    };
    config.shard_template.workers = 1;
    let mut fleet = Fleet::start(config).expect("start fleet");
    let router_addr = fleet.router_addr().expect("router address");
    let mut client = Client::new(router_addr);

    // Seed the fleet with completed jobs spread across shards.
    let seeds: Vec<u64> = (100..112).collect();
    let mut jobs = Vec::new();
    for seed in &seeds {
        let request = quick_request(*seed);
        let id = request.job_id();
        let receipt = client.submit(&request).expect("submit");
        jobs.push((id, receipt.job_id));
    }
    let mut baseline = Vec::new();
    for (_, job_id) in &jobs {
        let bytes = client
            .wait_for_profile(job_id, Duration::from_millis(10), 1_000)
            .expect("profile");
        let fetch = client
            .profile_conditional(job_id, None)
            .expect("conditional fetch");
        let ProfileFetch::Fresh { etag, .. } = fetch else {
            panic!("expected fresh fetch, got {fetch:?}");
        };
        baseline.push((bytes, etag));
    }

    // Replicate so every shard mirrors every profile.
    let stats = fleet.replicate_once();
    assert!(
        stats.installed_full > 0,
        "first replication tick must copy profiles between shards: {stats:?}"
    );
    let settle = fleet.replicate_once();
    assert_eq!(settle.installed_full, 0, "second tick must be a no-op: {settle:?}");
    assert_eq!(settle.applied_chains, 0, "second tick must be a no-op: {settle:?}");

    // Kill the shard that owns the first job.
    let (victim_id, victim_job) = (&jobs[0].0, jobs[0].1.clone());
    let victim = fleet.owner_of(*victim_id).expect("owner exists");
    assert!(fleet.kill_shard(victim), "victim shard was live");

    // The router sheds requests for that partition with a retryable 503.
    let shed = client.profile_bytes(&victim_job);
    match shed {
        Err(ClientError::Status(503, body)) => {
            assert!(body.contains("retry"), "503 body should invite a retry: {body}");
        }
        other => panic!("expected 503 while the owner is down, got {other:?}"),
    }

    // Restart on a fresh ephemeral port; the store starts empty, and
    // one replication tick restores the partition from the peers.
    let new_addr = fleet
        .restart_shard(victim)
        .expect("restart")
        .expect("shard index valid");
    let stats = fleet.replicate_once();
    assert!(
        stats.installed_full > 0,
        "restarted shard must re-pull its profiles: {stats:?}"
    );

    // The client's original ETag revalidates straight to 304 — through
    // the router, against the restarted shard, with zero recompute.
    for ((_, job_id), (bytes, etag)) in jobs.iter().zip(&baseline) {
        let fetch = client
            .profile_conditional(job_id, Some(etag))
            .expect("revalidate");
        match fetch {
            ProfileFetch::NotModified { etag: back } => assert_eq!(&back, etag),
            ProfileFetch::Fresh { bytes: fresh, etag: back } => {
                // A non-victim shard may serve fresh bytes; they must
                // still match the original ETag and bytes.
                assert_eq!(&back, etag, "ETag changed across failover");
                assert_eq!(&fresh, bytes, "bytes changed across failover");
            }
            other => panic!("unexpected fetch after failover: {other:?}"),
        }
    }

    // Zero recompute: the restarted shard completed no jobs.
    let mut direct = Client::new(new_addr);
    let metrics = direct.metrics_text().expect("shard metrics");
    assert!(
        metrics.contains("reaper_jobs_completed_total 0"),
        "restarted shard must not recompute profiles:\n{metrics}"
    );
    assert!(
        metrics.contains("reaper_fleet_replication_pulls_total"),
        "shard metrics must expose fleet counters:\n{metrics}"
    );

    // Router metrics recorded the failover.
    let mut router_client = Client::new(router_addr);
    let router_metrics = router_client.metrics_text().expect("router metrics");
    assert!(
        router_metrics.contains("reaper_fleet_info{role=\"router\"} 1"),
        "router identity missing:\n{router_metrics}"
    );
    let failovers = router_metrics
        .lines()
        .find_map(|l| l.strip_prefix("reaper_fleet_failovers_total "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .expect("failover counter present");
    assert!(failovers >= 1, "router must count the shed as a failover");

    fleet.shutdown();
}
