//! Property tests for rendezvous placement: the router must place a
//! job ID on the same shard regardless of process, registration order,
//! or repetition — and growing the fleet must move only the keys the
//! new shard wins (≈ `1/(n+1)` of them), never reshuffle the rest.

use proptest::prelude::*;
use reaper_fleet::hrw;

/// Builds the `(name, seed)` shard set `shard-0 .. shard-{n-1}`.
fn shard_set(n: usize) -> Vec<(String, u64)> {
    (0..n)
        .map(|i| {
            let name = format!("shard-{i}");
            let seed = hrw::shard_seed(&name);
            (name, seed)
        })
        .collect()
}

proptest! {
    #[test]
    fn placement_is_stable_across_orderings_and_repetition(
        job_ids in proptest::collection::vec(any::<u64>(), 1..64),
        shards in 1usize..9,
        rotation in any::<usize>(),
    ) {
        let forward = shard_set(shards);
        // An arbitrary rotation exercises order independence without
        // needing a shuffle primitive.
        let mut rotated = forward.clone();
        rotated.rotate_left(rotation % shards);
        for id in &job_ids {
            let a = hrw::place(*id, &forward).map(str::to_string);
            let b = hrw::place(*id, &forward).map(str::to_string);
            let c = hrw::place(*id, &rotated).map(str::to_string);
            prop_assert_eq!(&a, &b, "same input, same process: placement must repeat");
            prop_assert_eq!(&a, &c, "registration order must not matter");
            prop_assert!(a.is_some(), "non-empty shard set always places");
        }
    }

    #[test]
    fn adding_a_shard_moves_only_keys_it_wins(
        base in any::<u64>(),
        shards in 1usize..9,
    ) {
        let before = shard_set(shards);
        let mut after = before.clone();
        let newcomer = format!("shard-{shards}");
        after.push((newcomer.clone(), hrw::shard_seed(&newcomer)));

        const SAMPLE: u64 = 512;
        let mut moved = 0u64;
        for k in 0..SAMPLE {
            let id = base.wrapping_add(k).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let old = hrw::place(id, &before).expect("non-empty");
            let new = hrw::place(id, &after).expect("non-empty");
            if old != new {
                // HRW guarantee, exact: a key only moves TO the added
                // shard (the newcomer outscored the old winner; the
                // relative order of the old shards is untouched).
                prop_assert_eq!(new, newcomer.as_str());
                moved += 1;
            }
        }
        // Expectation is SAMPLE/(n+1); allow generous slack (3x) since
        // this is a statistical bound, but the exact-destination check
        // above is what rules out reshuffles.
        let n_plus_1 = (shards as u64) + 1;
        prop_assert!(
            moved <= 3 * SAMPLE / n_plus_1,
            "moved {moved} of {SAMPLE} keys with {n_plus_1} shards — far above ~1/(n+1)"
        );
    }
}
