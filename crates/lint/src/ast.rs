//! A lightweight Rust AST — just enough structure for the concurrency
//! rules (L1–L4) to track guard lifetimes, call sites, and control flow.
//!
//! This is deliberately *not* a faithful grammar: patterns collapse to
//! "a single binding or something else", binary operators flatten into
//! unordered pairs (the rules never evaluate anything), macro bodies are
//! opaque, and any construct the parser does not model becomes
//! [`ExprKind::Other`] with its children preserved. What *is* faithful:
//! block scoping, `let` bindings, method-call chains, call argument
//! lists, and the loop/branch structure — the skeleton the dataflow pass
//! in [`crate::dataflow`] walks.

/// One parsed source file.
#[derive(Debug, Clone, Default)]
pub struct File {
    pub items: Vec<Item>,
}

/// A top-level or nested item.
#[derive(Debug, Clone)]
pub enum Item {
    Fn(FnItem),
    Impl(ImplItem),
    Struct(StructItem),
    Mod(ModItem),
    Trait(TraitItem),
    /// `use`, `const`, `enum`, `macro_rules!`, … — skipped structurally.
    Skipped,
}

/// A function or method, free or inside an `impl`/`trait`.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    pub params: Vec<Param>,
    /// Token texts of the return type (empty when none).
    pub ret: Vec<String>,
    /// `None` for trait-method signatures without a default body.
    pub body: Option<Block>,
    /// True when the item (or an enclosing item) carries `#[cfg(test)]`.
    pub cfg_test: bool,
    pub line: u32,
    pub col: u32,
}

/// One function parameter: binding name (or `self`, or `_` for complex
/// patterns) plus the raw token texts of its type.
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub ty: Vec<String>,
}

/// An `impl` block; `type_name` is the implementing type (after `for`
/// when present), generics stripped.
#[derive(Debug, Clone)]
pub struct ImplItem {
    pub type_name: String,
    pub items: Vec<Item>,
}

/// A `struct` definition with named fields (tuple/unit structs keep an
/// empty field list).
#[derive(Debug, Clone)]
pub struct StructItem {
    pub name: String,
    pub fields: Vec<FieldDef>,
    pub cfg_test: bool,
}

/// One named struct field; `ty` holds the raw token texts of its type.
#[derive(Debug, Clone)]
pub struct FieldDef {
    pub name: String,
    pub ty: Vec<String>,
    pub line: u32,
    pub col: u32,
}

/// An inline `mod name { … }`.
#[derive(Debug, Clone)]
pub struct ModItem {
    pub name: String,
    pub items: Vec<Item>,
    pub cfg_test: bool,
}

/// A `trait` definition (only its method items are kept).
#[derive(Debug, Clone)]
pub struct TraitItem {
    pub name: String,
    pub items: Vec<Item>,
}

/// A `{ … }` block.
#[derive(Debug, Clone, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    Let {
        pat: Pat,
        init: Option<Expr>,
        /// The diverging block of a `let … else { … }`.
        else_block: Option<Block>,
        line: u32,
    },
    Expr(Expr),
    Item(Item),
}

/// A pattern, collapsed to what guard tracking needs.
#[derive(Debug, Clone)]
pub enum Pat {
    /// A single binding (`x`, `mut x`, `ref x`).
    Ident(String),
    /// Anything else (tuples, destructuring, literals, `_`).
    Other,
}

/// An expression with its source position.
#[derive(Debug, Clone)]
pub struct Expr {
    pub line: u32,
    pub col: u32,
    pub kind: ExprKind,
}

/// What an expression is. Children are always walkable.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// `a::b::c` (turbofish segments dropped).
    Path(Vec<String>),
    /// `base.name` — `name` may be a numeric tuple index or `await`.
    Field { base: Box<Expr>, name: String },
    /// `callee(args…)`.
    Call { callee: Box<Expr>, args: Vec<Expr> },
    /// `recv.method(args…)`.
    MethodCall {
        recv: Box<Expr>,
        method: String,
        args: Vec<Expr>,
    },
    /// `path!(…)` — body opaque.
    MacroCall(Vec<String>),
    /// `&expr` / `&mut expr`.
    Ref(Box<Expr>),
    /// `*expr`, `!expr`, `-expr`.
    Unary(Box<Expr>),
    /// `lhs OP rhs`, flattened left-associatively, precedence ignored.
    Binary { lhs: Box<Expr>, rhs: Box<Expr> },
    /// `target = value` (also compound assignments).
    Assign { target: Box<Expr>, value: Box<Expr> },
    If {
        cond: Box<Expr>,
        then: Block,
        els: Option<Box<Expr>>,
    },
    While { cond: Box<Expr>, body: Block },
    Loop { body: Block },
    For { iter: Box<Expr>, body: Block },
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<Expr>,
    },
    BlockExpr(Block),
    Return(Option<Box<Expr>>),
    Break,
    Continue,
    /// `|args| body` / `move |args| body` — body analyzed separately.
    Closure { body: Box<Expr> },
    /// `Path { field: expr, … }` — `(field name, value)` pairs; the
    /// spread base (`..base`) appears with an empty field name.
    StructLit {
        path: String,
        fields: Vec<(String, Expr)>,
    },
    /// Literals (numbers, strings, chars, bools by way of paths).
    Lit,
    /// Anything else; children preserved for walking.
    Other(Vec<Expr>),
}

impl Expr {
    /// Convenience constructor.
    pub fn new(line: u32, col: u32, kind: ExprKind) -> Self {
        Self { line, col, kind }
    }

    /// The single path segment when this is a bare identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Path(segs) if segs.len() == 1 => segs.first().map(String::as_str),
            _ => None,
        }
    }
}
