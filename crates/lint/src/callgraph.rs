//! Workspace model for the concurrency rules: struct-field types, a
//! name + receiver-type call graph over first-party crates, and the
//! resolution from syntactic reference chains ([`Chain`]) to workspace
//! lock identities (`Type.field`).
//!
//! Resolution is deliberately conservative. A method call links to a
//! workspace function only when the receiver's type actually resolves
//! (via `self`, a parameter type, or struct-field chains — unwrapping
//! `&`/`Arc`/`Rc`/`Box`); a receiver that types to a non-workspace
//! container (`Vec`, `BTreeMap`, …) or stays unknown produces *no*
//! edge, because a guessed edge on a common name like `push` would
//! fabricate transitive blocking for every local `Vec` in the
//! workspace. False negatives here cost coverage; false edges would
//! cost the live-clean guarantee.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{File as AstFile, Item};
use crate::dataflow::{analyze_file, CallEvent, Chain, FnFacts};
use crate::lexer::lex;
use crate::parser::parse;

/// A struct definition's typed fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    /// `(field name, type tokens)`.
    pub fields: Vec<(String, Vec<String>)>,
}

/// Everything extracted from one source file.
#[derive(Debug, Clone)]
pub struct FileFacts {
    /// Workspace-relative path.
    pub path: String,
    pub crate_name: String,
    /// Test code (integration tests, benches, examples).
    pub test_code: bool,
    pub fns: Vec<FnFacts>,
    pub structs: Vec<StructDef>,
}

impl FileFacts {
    /// Lexes, parses, and analyzes one source file.
    pub fn from_source(
        path: &str,
        crate_name: &str,
        test_code: bool,
        source: &str,
        lock_helpers: &[String],
    ) -> Self {
        let ast = parse(&lex(source).tokens);
        let mut structs = Vec::new();
        collect_structs(&ast.items, &mut structs);
        let fns = analyze_file(&ast, lock_helpers);
        FileFacts {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            test_code,
            fns,
            structs,
        }
    }
}

fn collect_structs(items: &[Item], out: &mut Vec<StructDef>) {
    for item in items {
        match item {
            Item::Struct(s) => out.push(StructDef {
                name: s.name.clone(),
                fields: s.fields.iter().map(|f| (f.name.clone(), f.ty.clone())).collect(),
            }),
            Item::Impl(i) => collect_structs(&i.items, out),
            Item::Mod(m) => collect_structs(&m.items, out),
            _ => {}
        }
    }
}

/// How a receiver chain typed out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeRes {
    /// A first-party type — method calls resolve against its impls.
    Workspace(String),
    /// A known non-workspace type (`Vec`, `TcpStream`, …).
    External(String),
    /// Could not be typed (locals, complex expressions).
    Unknown,
}

/// The whole-workspace model.
pub struct Workspace {
    pub files: Vec<FileFacts>,
    /// Global fn id → (file index, fn index within file).
    fn_locs: Vec<(usize, usize)>,
    by_name: BTreeMap<String, Vec<usize>>,
    /// Struct name → field name → type tokens.
    fields: BTreeMap<String, BTreeMap<String, Vec<String>>>,
    /// All first-party type names (structs + impl targets).
    types: BTreeSet<String>,
    /// Per fn, per call event: resolved workspace callee gids.
    call_targets: Vec<Vec<Vec<usize>>>,
}

impl Workspace {
    pub fn build(files: Vec<FileFacts>) -> Self {
        let mut fn_locs = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut fields: BTreeMap<String, BTreeMap<String, Vec<String>>> = BTreeMap::new();
        let mut types = BTreeSet::new();

        for (fi, file) in files.iter().enumerate() {
            for s in &file.structs {
                types.insert(s.name.clone());
                let entry = fields.entry(s.name.clone()).or_default();
                for (fname, ftoks) in &s.fields {
                    entry.insert(fname.clone(), ftoks.clone());
                }
            }
            for (ni, f) in file.fns.iter().enumerate() {
                let gid = fn_locs.len();
                fn_locs.push((fi, ni));
                if let Some(t) = &f.impl_type {
                    types.insert(t.clone());
                }
                if !f.is_closure {
                    by_name.entry(f.name.clone()).or_default().push(gid);
                }
            }
        }

        let mut ws = Workspace {
            files,
            fn_locs,
            by_name,
            fields,
            types,
            call_targets: Vec::new(),
        };
        ws.call_targets = (0..ws.fn_count())
            .map(|gid| {
                let f = ws.fn_facts(gid);
                f.calls.iter().map(|ev| ws.resolve_call(f, ev)).collect()
            })
            .collect();
        ws
    }

    pub fn fn_count(&self) -> usize {
        self.fn_locs.len()
    }

    pub fn fn_facts(&self, gid: usize) -> &FnFacts {
        let (fi, ni) = self.fn_locs[gid];
        &self.files[fi].fns[ni]
    }

    pub fn fn_file(&self, gid: usize) -> &FileFacts {
        &self.files[self.fn_locs[gid].0]
    }

    /// Resolved workspace callees for call event `ci` of fn `gid`.
    pub fn targets(&self, gid: usize, ci: usize) -> &[usize] {
        &self.call_targets[gid][ci]
    }

    pub fn is_workspace_type(&self, name: &str) -> bool {
        self.types.contains(name)
    }

    /// The type of a chain base inside `f`: `self` → impl type, a
    /// parameter → its unwrapped type, anything else → unknown.
    fn base_type(&self, f: &FnFacts, base: &str) -> Option<String> {
        if base == "self" {
            return f.impl_type.clone();
        }
        if base.contains("::") {
            return None;
        }
        f.params
            .iter()
            .find(|p| p.name == base)
            .and_then(|p| outer_ident(&p.ty))
    }

    /// Walks field accesses from a starting type.
    fn walk_fields(&self, start: String, flds: &[String]) -> TypeRes {
        let mut ty = start;
        for fld in flds {
            if !self.types.contains(&ty) {
                return TypeRes::External(ty);
            }
            match self
                .fields
                .get(&ty)
                .and_then(|m| m.get(fld))
                .and_then(|t| outer_ident(t))
            {
                Some(next) => ty = next,
                None => return TypeRes::Unknown,
            }
        }
        if self.types.contains(&ty) {
            TypeRes::Workspace(ty)
        } else {
            TypeRes::External(ty)
        }
    }

    /// Types a full reference chain inside `f`.
    pub fn chain_type(&self, f: &FnFacts, chain: &Chain) -> TypeRes {
        match self.base_type(f, &chain.base) {
            Some(start) => self.walk_fields(start, &chain.fields),
            None => TypeRes::Unknown,
        }
    }

    /// Resolves a lock chain to a workspace lock identity `Type.field`,
    /// or `None` when the chain cannot be tied to a named field.
    pub fn lock_id(&self, f: &FnFacts, chain: &Chain) -> Option<String> {
        if chain.is_unknown() || chain.fields.is_empty() {
            return None;
        }
        let (owner, field) = self.lock_owner_field(f, chain)?;
        Some(format!("{owner}.{field}"))
    }

    /// The `(owning type, field name)` of a lock chain.
    fn lock_owner_field(&self, f: &FnFacts, chain: &Chain) -> Option<(String, String)> {
        let mut ty = self.base_type(f, &chain.base)?;
        let (last, mid) = chain.fields.split_last()?;
        for fld in mid {
            ty = self
                .fields
                .get(&ty)
                .and_then(|m| m.get(fld))
                .and_then(|t| outer_ident(t))?;
        }
        // The field must actually exist on a known struct.
        self.fields.get(&ty)?.get(last)?;
        Some((ty, last.clone()))
    }

    /// The type inside `Mutex<…>` for a lock chain (types method calls
    /// made through a guard deref).
    fn mutex_inner(&self, f: &FnFacts, chain: &Chain) -> Option<String> {
        let (owner, field) = self.lock_owner_field(f, chain)?;
        let ftoks = self.fields.get(&owner)?.get(&field)?;
        let pos = ftoks
            .iter()
            .position(|t| t == "Mutex" || t == "RwLock")?;
        if ftoks.get(pos + 1).map(String::as_str) != Some("<") {
            return None;
        }
        outer_ident(&ftoks[pos + 2..])
    }

    /// Resolves one call event to workspace callee gids.
    fn resolve_call(&self, f: &FnFacts, ev: &CallEvent) -> Vec<usize> {
        let empty: Vec<usize> = Vec::new();
        let cands = self.by_name.get(&ev.name).unwrap_or(&empty);
        if cands.is_empty() {
            return Vec::new();
        }

        if !ev.path.is_empty() {
            // Free or `Type::method` call.
            if ev.path.len() >= 2 {
                let qual = &ev.path[ev.path.len() - 2];
                let qual = if qual == "Self" {
                    f.impl_type.clone().unwrap_or_else(|| qual.clone())
                } else {
                    qual.clone()
                };
                let typed: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&g| self.fn_facts(g).impl_type.as_deref() == Some(qual.as_str()))
                    .collect();
                if !typed.is_empty() {
                    return typed;
                }
            }
            // Bare / module-qualified name: free functions only.
            return cands
                .iter()
                .copied()
                .filter(|&g| self.fn_facts(g).impl_type.is_none())
                .collect();
        }

        // Method call: type the receiver.
        let recv_ty = if let Some(via) = &ev.recv_via_guard {
            match (self.mutex_inner(f, via), &ev.recv) {
                (Some(inner), Some(recv)) => self.walk_fields(inner, &recv.fields),
                (Some(inner), None) => self.walk_fields(inner, &[]),
                (None, _) => TypeRes::Unknown,
            }
        } else if let Some(recv) = &ev.recv {
            self.chain_type(f, recv)
        } else {
            TypeRes::Unknown
        };

        match recv_ty {
            TypeRes::Workspace(t) => cands
                .iter()
                .copied()
                .filter(|&g| self.fn_facts(g).impl_type.as_deref() == Some(t.as_str()))
                .collect(),
            // External or unknown receivers get no workspace edge; the
            // primitive blocking-name check applies instead.
            TypeRes::External(_) | TypeRes::Unknown => Vec::new(),
        }
    }
}

/// The principal identifier of a type token list, unwrapping references,
/// lifetimes, and the transparent wrappers `Arc`/`Rc`/`Box`.
pub fn outer_ident(tokens: &[String]) -> Option<String> {
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t == "&" || t == "mut" || t == "dyn" || t.starts_with('\'') {
            i += 1;
            continue;
        }
        if (t == "Arc" || t == "Rc" || t == "Box")
            && tokens.get(i + 1).map(String::as_str) == Some("<")
        {
            i += 2;
            continue;
        }
        if t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') {
            return Some(t.clone());
        }
        i += 1;
    }
    None
}

/// Collects struct definitions from an already-parsed AST (exposed for
/// callers that keep the AST around).
pub fn structs_of(ast: &AstFile) -> Vec<StructDef> {
    let mut out = Vec::new();
    collect_structs(&ast.items, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_of(src: &str) -> Workspace {
        let helpers = vec!["lock".to_string()];
        let file = FileFacts::from_source("crates/demo/src/lib.rs", "demo", false, src, &helpers);
        Workspace::build(vec![file])
    }

    fn gid_of(ws: &Workspace, name: &str) -> usize {
        (0..ws.fn_count())
            .find(|&g| ws.fn_facts(g).name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn lock_ids_resolve_through_params_and_self() {
        let src = "
            pub struct Shared { jobs: Mutex<u64>, store: Mutex<Store> }
            impl Server {
                fn a(&self, shared: &Arc<Shared>) {
                    let g = lock(&shared.jobs);
                    drop(g);
                }
            }";
        let ws = ws_of(src);
        let gid = gid_of(&ws, "a");
        let f = ws.fn_facts(gid);
        let acq = &f.acquires[0];
        assert_eq!(ws.lock_id(f, &acq.lock).as_deref(), Some("Shared.jobs"));
    }

    #[test]
    fn method_calls_resolve_by_receiver_type() {
        let src = "
            pub struct Shared { queue: BoundedQueue<Ticket> }
            pub struct BoundedQueue<T> { inner: T }
            impl BoundedQueue<T> {
                fn try_push(&self) {}
            }
            fn submit(shared: &Shared) {
                shared.queue.try_push();
            }";
        let ws = ws_of(src);
        let gid = gid_of(&ws, "submit");
        let targets = ws.targets(gid, 0);
        assert_eq!(targets.len(), 1);
        assert_eq!(ws.fn_facts(targets[0]).name, "try_push");
    }

    #[test]
    fn external_receivers_get_no_edge() {
        let src = "
            pub struct State { results: Vec<u64> }
            pub struct Q { x: u64 }
            impl Q {
                fn push(&self) {}
            }
            fn f(st: &State) {
                st.results.push(1);
            }";
        let ws = ws_of(src);
        let gid = gid_of(&ws, "f");
        // `Vec::push` must NOT link to `Q::push`.
        assert!(ws.targets(gid, 0).is_empty());
    }

    #[test]
    fn guard_deref_receivers_type_through_the_mutex() {
        let src = "
            pub struct FanOut { state: Mutex<FanState> }
            pub struct FanState { completed: u64 }
            impl FanState {
                fn bump(&mut self) {}
            }
            impl FanOut {
                fn participate(&self) {
                    let st = lock(&self.state);
                    st.bump();
                    drop(st);
                }
            }";
        let ws = ws_of(src);
        let gid = gid_of(&ws, "participate");
        let ev_idx = ws
            .fn_facts(gid)
            .calls
            .iter()
            .position(|c| c.name == "bump")
            .expect("bump call");
        let targets = ws.targets(gid, ev_idx);
        assert_eq!(targets.len(), 1);
        assert_eq!(ws.fn_facts(targets[0]).name, "bump");
    }

    #[test]
    fn type_qualified_calls_resolve_to_assoc_fns() {
        let src = "
            pub struct WorkerPool { n: u64 }
            impl WorkerPool {
                fn spawn() {}
            }
            fn boot() {
                WorkerPool::spawn();
            }";
        let ws = ws_of(src);
        let gid = gid_of(&ws, "boot");
        let targets = ws.targets(gid, 0);
        assert_eq!(targets.len(), 1);
        assert_eq!(
            ws.fn_facts(targets[0]).impl_type.as_deref(),
            Some("WorkerPool")
        );
    }
}
