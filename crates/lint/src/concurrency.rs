//! The workspace concurrency rules L1–L4.
//!
//! Inputs are the per-file facts from [`crate::dataflow`] stitched into
//! a [`Workspace`] call graph. The rules:
//!
//! * **L1 `lock-order`** — builds the lock-acquisition-order graph
//!   (edge `A → B` whenever `B` is acquired, directly or through a
//!   resolved callee, while `A` is held) and reports every cycle with
//!   one witness per edge, so an inversion diagnostic names *both*
//!   paths.
//! * **L2 `held-lock-blocking`** — flags guards live across blocking
//!   operations: condvar waits, thread joins, socket/file I/O and
//!   sleeps (by name when the receiver is not a workspace type), and
//!   calls to workspace functions that transitively block.
//! * **L3 `condvar-discipline`** — `Condvar::wait`/`wait_timeout` must
//!   sit in a predicate re-check loop; `wait_while` forms pass by
//!   construction.
//! * **L4 `guard-escape`** — a `MutexGuard` must not outlive its
//!   critical section by being returned or stored (the configured
//!   `lock-helpers` are the sanctioned exception).
//!
//! Scope: every first-party file is parsed so the call graph is
//! complete, but diagnostics are emitted only for crates listed under
//! `[rules.concurrency] crates` and never for test code (`#[cfg(test)]`
//! items or `tests/`/`benches/`/`examples/` files).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::{FileFacts, Workspace};
use crate::config::Config;
use crate::dataflow::{CallEvent, EscapeKind, FnFacts};
use crate::rules::Diagnostic;

/// One lock-order edge's provenance.
struct Edge {
    witness: String,
    file: String,
    line: u32,
    col: u32,
}

/// Runs L1–L4 over a set of analyzed files.
pub fn check_files(files: Vec<FileFacts>, cfg: &Config) -> Vec<Diagnostic> {
    let ws = Workspace::build(files);
    let n = ws.fn_count();

    let in_scope: Vec<bool> = (0..n)
        .map(|gid| {
            let file = ws.fn_file(gid);
            let f = ws.fn_facts(gid);
            !file.test_code && !f.cfg_test && cfg.concurrency_crates.contains(&file.crate_name)
        })
        .collect();

    let blocks = transitive_blocking(&ws, cfg);
    let acquires = transitive_acquires(&ws);

    let mut out = Vec::new();
    rule_lock_order(&ws, cfg, &in_scope, &acquires, &mut out);
    for (gid, &scoped) in in_scope.iter().enumerate() {
        if !scoped {
            continue;
        }
        rule_held_blocking(&ws, cfg, gid, &blocks, &mut out);
        rule_condvar_discipline(&ws, gid, &mut out);
        rule_guard_escape(&ws, cfg, gid, &mut out);
    }
    out.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule_id).cmp(&(&b.file, b.line, b.col, b.rule_id))
    });
    out
}

fn fn_label(f: &FnFacts) -> String {
    match &f.impl_type {
        Some(t) if !f.is_closure => format!("{t}::{}", f.name),
        _ => f.name.clone(),
    }
}

/// Why each function blocks the calling thread, or `None`. Base cases
/// are by-name primitives on unresolved receivers; blocking then
/// propagates caller-ward over resolved call edges.
fn transitive_blocking(ws: &Workspace, cfg: &Config) -> Vec<Option<String>> {
    let n = ws.fn_count();
    let mut reason: Vec<Option<String>> = vec![None; n];
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut queue = VecDeque::new();

    for (gid, slot) in reason.iter_mut().enumerate() {
        let f = ws.fn_facts(gid);
        for (ci, ev) in f.calls.iter().enumerate() {
            let targets = ws.targets(gid, ci);
            if targets.is_empty() {
                if slot.is_none() {
                    if let Some(what) = primitive_blocking(cfg, ev) {
                        *slot = Some(format!(
                            "{what} at {}:{}",
                            ws.fn_file(gid).path,
                            ev.line
                        ));
                        queue.push_back(gid);
                    }
                }
            } else {
                for &t in targets {
                    callers[t].push(gid);
                }
            }
        }
    }

    while let Some(gid) = queue.pop_front() {
        for &caller in &callers[gid] {
            if reason[caller].is_none() {
                reason[caller] = Some(format!(
                    "calls `{}`, which blocks",
                    fn_label(ws.fn_facts(gid))
                ));
                queue.push_back(caller);
            }
        }
    }
    reason
}

/// The blocking primitive a call event names, if any — only consulted
/// when the call resolved to no workspace function.
fn primitive_blocking(cfg: &Config, ev: &CallEvent) -> Option<String> {
    if ev.path.is_empty() {
        if cfg.blocking_methods.iter().any(|m| m == &ev.name) {
            return Some(format!("blocking call `.{}(…)`", ev.name));
        }
        return None;
    }
    let joined = ev.path.join("::");
    cfg.blocking_paths
        .iter()
        .any(|p| joined == *p || joined.ends_with(&format!("::{p}")))
        .then(|| format!("blocking call `{joined}`"))
}

/// Per function: every workspace lock it may acquire (directly or via
/// resolved callees), with the original acquisition site as witness.
fn transitive_acquires(ws: &Workspace) -> Vec<BTreeMap<String, String>> {
    let n = ws.fn_count();
    let mut acq: Vec<BTreeMap<String, String>> = vec![BTreeMap::new(); n];
    for (gid, slot) in acq.iter_mut().enumerate() {
        let f = ws.fn_facts(gid);
        for ev in &f.acquires {
            if let Some(id) = ws.lock_id(f, &ev.lock) {
                slot.entry(id.clone()).or_insert_with(|| {
                    format!(
                        "`{id}` acquired in `{}` at {}:{}",
                        fn_label(f),
                        ws.fn_file(gid).path,
                        ev.line
                    )
                });
            }
        }
    }
    // Fixpoint: the workspace graph is small; quadratic sweeps suffice.
    loop {
        let mut changed = false;
        for gid in 0..n {
            let f = ws.fn_facts(gid);
            for ci in 0..f.calls.len() {
                for &t in ws.targets(gid, ci) {
                    if t == gid {
                        continue;
                    }
                    let theirs: Vec<(String, String)> = acq[t]
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    for (lock, w) in theirs {
                        if let std::collections::btree_map::Entry::Vacant(e) =
                            acq[gid].entry(lock)
                        {
                            e.insert(w);
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    acq
}

/// L1: build the lock-order graph and report every cycle.
fn rule_lock_order(
    ws: &Workspace,
    _cfg: &Config,
    in_scope: &[bool],
    acquires: &[BTreeMap<String, String>],
    out: &mut Vec<Diagnostic>,
) {
    // Edge (held → acquired), first witness wins (files are scanned in
    // sorted order, so this is deterministic).
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for (gid, &scoped) in in_scope.iter().enumerate() {
        if !scoped {
            continue;
        }
        let f = ws.fn_facts(gid);
        let file = &ws.fn_file(gid).path;
        for ev in &f.acquires {
            let Some(to) = ws.lock_id(f, &ev.lock) else { continue };
            for h in &ev.held {
                let Some(from) = ws.lock_id(f, &h.lock) else { continue };
                edges.entry((from.clone(), to.clone())).or_insert_with(|| Edge {
                    witness: format!(
                        "`{}` acquires `{to}` while holding `{from}` (held since line {})",
                        fn_label(f),
                        h.acquired_line
                    ),
                    file: file.clone(),
                    line: ev.line,
                    col: ev.col,
                });
            }
        }
        for (ci, ev) in f.calls.iter().enumerate() {
            if ev.held.is_empty() {
                continue;
            }
            for &t in ws.targets(gid, ci) {
                for (lock, w) in &acquires[t] {
                    for h in &ev.held {
                        let Some(from) = ws.lock_id(f, &h.lock) else { continue };
                        edges
                            .entry((from.clone(), lock.clone()))
                            .or_insert_with(|| Edge {
                                witness: format!(
                                    "`{}` holds `{from}` across the call to `{}`; {w}",
                                    fn_label(f),
                                    fn_label(ws.fn_facts(t)),
                                ),
                                file: file.clone(),
                                line: ev.line,
                                col: ev.col,
                            });
                    }
                }
            }
        }
    }

    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
    }

    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for ((from, to), anchor) in &edges {
        // A cycle through this edge exists iff `from` is reachable back
        // from `to`.
        let Some(path) = bfs_path(&adj, to, from) else { continue };
        let mut cycle: Vec<String> = Vec::with_capacity(path.len() + 1);
        cycle.push(from.clone());
        cycle.extend(path.into_iter().filter(|n| n != from));
        let cycle = normalize_rotation(cycle);
        if !reported.insert(cycle.clone()) {
            continue;
        }
        let mut notes = Vec::new();
        for i in 0..cycle.len() {
            let a = &cycle[i];
            let b = &cycle[(i + 1) % cycle.len()];
            if let Some(e) = edges.get(&(a.clone(), b.clone())) {
                notes.push(format!("{}:{}: {}", e.file, e.line, e.witness));
            }
        }
        let ring = cycle.join("` → `");
        let message = if cycle.len() == 1 {
            format!(
                "lock-order cycle: `{}` may be re-acquired while already held \
                 (std mutexes are not reentrant)",
                cycle[0]
            )
        } else {
            format!("lock-order cycle across threads: `{ring}` → `{}`", cycle[0])
        };
        out.push(Diagnostic {
            rule_id: "L1",
            rule_name: "lock-order",
            file: anchor.file.clone(),
            line: anchor.line,
            col: anchor.col,
            message,
            help: "pick one global acquisition order for these locks and \
                   restructure the losing path to acquire in that order \
                   (or merge the critical sections)"
                .to_string(),
            notes,
        });
    }
}

/// Shortest edge path `start → … → goal` (both inclusive); `[start]`
/// when they are the same node.
fn bfs_path(adj: &BTreeMap<&str, Vec<&str>>, start: &str, goal: &str) -> Option<Vec<String>> {
    if start == goal {
        return Some(vec![start.to_string()]);
    }
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = VecDeque::from([start]);
    while let Some(node) = queue.pop_front() {
        for &next in adj.get(node).map(Vec::as_slice).unwrap_or_default() {
            if next == start || prev.contains_key(next) {
                continue;
            }
            prev.insert(next, node);
            if next == goal {
                // Walk predecessors back to `start` (which has no
                // `prev` entry, so the loop stops there).
                let mut path = vec![goal.to_string()];
                let mut cur = goal;
                while let Some(&p) = prev.get(cur) {
                    path.push(p.to_string());
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(next);
        }
    }
    None
}

/// Rotates a cycle's node list so the lexicographically smallest lock
/// leads — the canonical form used for deduplication.
fn normalize_rotation(cycle: Vec<String>) -> Vec<String> {
    let Some(min_at) = cycle
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.cmp(b.1))
        .map(|(i, _)| i)
    else {
        return cycle;
    };
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[min_at..]);
    out.extend_from_slice(&cycle[..min_at]);
    out
}

/// L2: guards live across blocking operations.
fn rule_held_blocking(
    ws: &Workspace,
    cfg: &Config,
    gid: usize,
    blocks: &[Option<String>],
    out: &mut Vec<Diagnostic>,
) {
    let f = ws.fn_facts(gid);
    let file = &ws.fn_file(gid).path;
    for (ci, ev) in f.calls.iter().enumerate() {
        if ev.held.is_empty() {
            continue;
        }
        let targets = ws.targets(gid, ci);
        let what = if targets.is_empty() {
            primitive_blocking(cfg, ev)
        } else {
            targets.iter().find_map(|&t| {
                blocks[t].as_ref().map(|r| {
                    format!("call to `{}`, which blocks: {r}", fn_label(ws.fn_facts(t)))
                })
            })
        };
        let Some(what) = what else { continue };
        // Prefer the resolved workspace identity (`Shared.jobs`) over
        // the syntactic chain (`shared.jobs`) when it resolves.
        let lock_name = |h: &crate::dataflow::HeldInfo| {
            ws.lock_id(f, &h.lock).unwrap_or_else(|| h.lock.to_string())
        };
        let held_list = ev
            .held
            .iter()
            .map(|h| format!("`{}`", lock_name(h)))
            .collect::<Vec<_>>()
            .join(", ");
        let notes = ev
            .held
            .iter()
            .map(|h| format!("guard on `{}` acquired at line {}", lock_name(h), h.acquired_line))
            .collect();
        out.push(Diagnostic {
            rule_id: "L2",
            rule_name: "held-lock-blocking",
            file: file.clone(),
            line: ev.line,
            col: ev.col,
            message: format!(
                "{held_list} held across {what} in `{}`",
                fn_label(f)
            ),
            help: "drop the guard (or narrow its scope) before the blocking \
                   operation; compute under the lock, block outside it"
                .to_string(),
            notes,
        });
    }
}

/// L3: condvar waits must re-check their predicate in a loop.
fn rule_condvar_discipline(ws: &Workspace, gid: usize, out: &mut Vec<Diagnostic>) {
    let f = ws.fn_facts(gid);
    let file = &ws.fn_file(gid).path;
    for w in &f.waits {
        if w.while_form || w.in_loop {
            continue;
        }
        out.push(Diagnostic {
            rule_id: "L3",
            rule_name: "condvar-discipline",
            file: file.clone(),
            line: w.line,
            col: w.col,
            message: format!(
                "`Condvar::{}` outside a predicate loop in `{}` — spurious \
                 wakeups will observe a stale condition",
                w.method,
                fn_label(f)
            ),
            help: format!(
                "re-check the predicate in a `while` loop around `.{}(…)`, or \
                 use the `wait_while` form",
                w.method
            ),
            notes: Vec::new(),
        });
    }
}

/// L4: guards must not escape their critical section.
fn rule_guard_escape(ws: &Workspace, cfg: &Config, gid: usize, out: &mut Vec<Diagnostic>) {
    let f = ws.fn_facts(gid);
    if cfg.lock_helpers.iter().any(|h| h == &f.name) {
        return;
    }
    let file = &ws.fn_file(gid).path;
    let returns_guard = f.ret.iter().any(|t| t == "MutexGuard" || t == "RwLockReadGuard" || t == "RwLockWriteGuard");
    if returns_guard {
        out.push(Diagnostic {
            rule_id: "L4",
            rule_name: "guard-escape",
            file: file.clone(),
            line: f.line,
            col: f.col,
            message: format!(
                "`{}` returns a lock guard — the critical section escapes \
                 the acquiring function",
                fn_label(f)
            ),
            help: "return the protected data (clone or move it out) and keep \
                   the guard's lifetime inside this function, or register the \
                   function under `[rules.concurrency] lock-helpers`"
                .to_string(),
            notes: Vec::new(),
        });
    }
    for esc in &f.escapes {
        // Returned escapes are implied by (and anchored better at) the
        // signature diagnostic when the return type already says guard.
        if esc.kind == EscapeKind::Returned && returns_guard {
            continue;
        }
        let (verb, help) = match esc.kind {
            EscapeKind::Returned => (
                "returned from",
                "return the protected data instead of the guard",
            ),
            EscapeKind::Stored => (
                "stored beyond",
                "keep guards on the stack; store the protected data or an \
                 `Arc` of the mutex instead",
            ),
        };
        out.push(Diagnostic {
            rule_id: "L4",
            rule_name: "guard-escape",
            file: file.clone(),
            line: esc.line,
            col: esc.col,
            message: format!(
                "lock guard {verb} its critical section in `{}`",
                fn_label(f)
            ),
            help: help.to_string(),
            notes: Vec::new(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            concurrency_crates: vec!["demo".into()],
            ..Config::default()
        }
    }

    fn findings(src: &str) -> Vec<Diagnostic> {
        let files = vec![FileFacts::from_source(
            "crates/demo/src/lib.rs",
            "demo",
            false,
            src,
            &["lock".to_string()],
        )];
        check_files(files, &cfg())
    }

    fn ids(src: &str) -> Vec<&'static str> {
        findings(src).into_iter().map(|d| d.rule_id).collect()
    }

    #[test]
    fn two_lock_inversion_is_a_cycle_with_both_witness_paths() {
        let src = "
            pub struct S { a: Mutex<u64>, b: Mutex<u64> }
            fn one(s: &S) {
                let ga = lock(&s.a);
                let gb = lock(&s.b);
                drop(gb);
                drop(ga);
            }
            fn two(s: &S) {
                let gb = lock(&s.b);
                let ga = lock(&s.a);
                drop(ga);
                drop(gb);
            }";
        let out = findings(src);
        let l1: Vec<_> = out.iter().filter(|d| d.rule_id == "L1").collect();
        assert_eq!(l1.len(), 1, "one cycle, one diagnostic: {out:?}");
        let d = l1[0];
        assert!(d.message.contains("S.a") && d.message.contains("S.b"), "{}", d.message);
        assert_eq!(d.notes.len(), 2, "both directions witnessed: {:?}", d.notes);
        assert!(d.notes.iter().any(|n| n.contains("`one`")), "{:?}", d.notes);
        assert!(d.notes.iter().any(|n| n.contains("`two`")), "{:?}", d.notes);
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "
            pub struct S { a: Mutex<u64>, b: Mutex<u64> }
            fn one(s: &S) {
                let ga = lock(&s.a);
                let gb = lock(&s.b);
                drop(gb);
                drop(ga);
            }
            fn two(s: &S) {
                let ga = lock(&s.a);
                let gb = lock(&s.b);
                drop(gb);
                drop(ga);
            }";
        assert!(ids(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn inversion_through_a_callee_is_still_found() {
        let src = "
            pub struct S { a: Mutex<u64>, b: Mutex<u64> }
            fn takes_b(s: &S) {
                let gb = lock(&s.b);
                drop(gb);
            }
            fn one(s: &S) {
                let ga = lock(&s.a);
                takes_b(s);
                drop(ga);
            }
            fn two(s: &S) {
                let gb = lock(&s.b);
                let ga = lock(&s.a);
                drop(ga);
                drop(gb);
            }";
        let out = findings(src);
        assert!(out.iter().any(|d| d.rule_id == "L1"), "{out:?}");
    }

    #[test]
    fn held_guard_across_io_and_sleep_is_flagged() {
        let src = "
            pub struct S { a: Mutex<u64> }
            fn f(s: &S, sock: &mut TcpStream) {
                let ga = lock(&s.a);
                sock.write_all(b\"x\");
                drop(ga);
            }
            fn g(s: &S) {
                let ga = lock(&s.a);
                thread::sleep(D);
                drop(ga);
            }";
        let out = findings(src);
        let l2: Vec<_> = out.iter().filter(|d| d.rule_id == "L2").collect();
        assert_eq!(l2.len(), 2, "{out:?}");
        assert!(l2[0].message.contains("write_all"));
        assert!(l2[1].message.contains("thread::sleep"));
    }

    #[test]
    fn transitive_blocking_through_a_workspace_callee() {
        let src = "
            pub struct Q { x: u64 }
            impl Q {
                fn pop_blocking(&self, cv: &Condvar, g: MutexGuard<u64>) {
                    let mut g = g;
                    while *g == 0 {
                        g = cv.wait(g).unwrap();
                    }
                }
            }
            pub struct S { a: Mutex<u64>, q: Q }
            fn f(s: &S, cv: &Condvar, g2: MutexGuard<u64>) {
                let ga = lock(&s.a);
                s.q.pop_blocking(cv, g2);
                drop(ga);
            }";
        let out = findings(src);
        assert!(
            out.iter().any(|d| d.rule_id == "L2" && d.message.contains("pop_blocking")),
            "{out:?}"
        );
    }

    #[test]
    fn wait_in_if_is_flagged_but_loop_forms_pass() {
        let src = "
            fn bad(cv: &Condvar, g: MutexGuard<u64>) {
                let mut g = g;
                if *g == 0 {
                    g = cv.wait(g).unwrap();
                }
            }
            fn good(cv: &Condvar, g: MutexGuard<u64>) {
                let mut g = g;
                while *g == 0 {
                    g = cv.wait(g).unwrap();
                }
            }
            fn also_good(cv: &Condvar, g: MutexGuard<u64>) {
                let _g = cv.wait_while(g, |v| *v == 0).unwrap();
            }";
        let out = findings(src);
        let l3: Vec<_> = out.iter().filter(|d| d.rule_id == "L3").collect();
        assert_eq!(l3.len(), 1, "{out:?}");
        assert!(l3[0].message.contains("wait"));
    }

    #[test]
    fn returned_and_stored_guards_are_escapes() {
        let src = "
            pub struct S { a: Mutex<u64> }
            fn leak(s: &S) -> MutexGuard<'_, u64> {
                lock(&s.a)
            }
            fn lock(m: &Mutex<u64>) -> MutexGuard<'_, u64> {
                m.lock().unwrap()
            }";
        let out = findings(src);
        let l4: Vec<_> = out.iter().filter(|d| d.rule_id == "L4").collect();
        assert_eq!(l4.len(), 1, "lock helper exempt, leak flagged: {out:?}");
        assert!(l4[0].message.contains("`leak`"));
    }

    #[test]
    fn test_code_is_out_of_scope() {
        let src = "
            pub struct S { a: Mutex<u64>, b: Mutex<u64> }
            #[cfg(test)]
            mod tests {
                fn one(s: &S) {
                    let ga = lock(&s.a);
                    let gb = lock(&s.b);
                    drop(gb);
                    drop(ga);
                }
                fn two(s: &S) {
                    let gb = lock(&s.b);
                    let ga = lock(&s.a);
                    drop(ga);
                    drop(gb);
                }
            }";
        assert!(ids(src).is_empty());
    }
}
