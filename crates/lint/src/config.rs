//! `lint.toml` loading.
//!
//! Only the TOML subset the config actually uses is parsed: `[table]`
//! headers, `key = "string"`, `key = ["a", "b"]`, and `#` comments.
//! Anything else is a hard error — the config is repo-controlled, and a
//! silently ignored key would silently disable a rule.

use std::collections::BTreeMap;

/// Parsed configuration for all rules.
#[derive(Debug, Clone)]
pub struct Config {
    /// D1: crates whose outputs feed golden tables; hash containers are
    /// banned there.
    pub hash_order_crates: Vec<String>,
    /// D2: bare identifiers banned everywhere (e.g. `SystemTime`).
    pub wall_clock_banned: Vec<String>,
    /// D2: `::`-joined paths banned everywhere (e.g. `Instant::now`).
    pub wall_clock_banned_paths: Vec<String>,
    /// D2: workspace-relative files exempt from the wall-clock rule
    /// (timing/CLI code that may legitimately read the clock).
    pub wall_clock_allow_files: Vec<String>,
    /// P1: `.expect("...")` is accepted when the message starts with this
    /// prefix — the repo's documented-invariant convention.
    pub panic_expect_prefix: String,
    /// P1: crates where slice-indexing expressions are also flagged.
    pub panic_index_crates: Vec<String>,
    /// C1: crates where bare `as` integer casts are flagged.
    pub lossy_cast_crates: Vec<String>,
    /// L1–L4: crates the concurrency analyzer emits findings for. All
    /// first-party crates are still *parsed* (call-graph edges need the
    /// whole workspace) — this list only gates diagnostics.
    pub concurrency_crates: Vec<String>,
    /// L1–L4: free functions treated as `Mutex::lock` wrappers. These
    /// return guards by design, so L4 exempts them.
    pub lock_helpers: Vec<String>,
    /// L2: method names that block the calling thread when the receiver
    /// does not resolve to a first-party type (I/O, joins, channels).
    pub blocking_methods: Vec<String>,
    /// L2: `::`-joined free-call paths that block (e.g. `thread::sleep`).
    pub blocking_paths: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            hash_order_crates: Vec::new(),
            wall_clock_banned: vec!["SystemTime".into(), "thread_rng".into()],
            wall_clock_banned_paths: vec!["Instant::now".into()],
            wall_clock_allow_files: Vec::new(),
            panic_expect_prefix: "invariant: ".into(),
            panic_index_crates: Vec::new(),
            lossy_cast_crates: Vec::new(),
            concurrency_crates: Vec::new(),
            lock_helpers: vec!["lock".into()],
            blocking_methods: [
                "wait",
                "wait_timeout",
                "wait_while",
                "wait_timeout_while",
                "join",
                "read",
                "read_exact",
                "read_to_end",
                "read_to_string",
                "write",
                "write_all",
                "flush",
                "recv",
                "recv_timeout",
                "send",
                "accept",
            ]
            .map(String::from)
            .to_vec(),
            blocking_paths: vec!["thread::sleep".into(), "std::thread::sleep".into()],
        }
    }
}

/// A value in the parsed subset.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Str(String),
    List(Vec<String>),
}

/// Parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses the `lint.toml` text.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let tables = parse_tables(text)?;
        let defaults = Config::default();

        let get_list = |table: &str, key: &str| -> Vec<String> {
            match tables.get(table).and_then(|t| t.get(key)) {
                Some(Value::List(v)) => v.clone(),
                Some(Value::Str(s)) => vec![s.clone()],
                None => Vec::new(),
            }
        };
        let get_str = |table: &str, key: &str, default: &str| -> String {
            match tables.get(table).and_then(|t| t.get(key)) {
                Some(Value::Str(s)) => s.clone(),
                _ => default.to_string(),
            }
        };

        let or_default = |v: Vec<String>, d: Vec<String>| if v.is_empty() { d } else { v };
        Ok(Config {
            hash_order_crates: get_list("rules.hash-order", "crates"),
            wall_clock_banned: or_default(
                get_list("rules.wall-clock", "banned"),
                defaults.wall_clock_banned,
            ),
            wall_clock_banned_paths: or_default(
                get_list("rules.wall-clock", "banned-paths"),
                defaults.wall_clock_banned_paths,
            ),
            wall_clock_allow_files: get_list("rules.wall-clock", "allow-files"),
            panic_expect_prefix: get_str(
                "rules.panic",
                "expect-prefix",
                &defaults.panic_expect_prefix,
            ),
            panic_index_crates: get_list("rules.panic", "index-crates"),
            lossy_cast_crates: get_list("rules.lossy-cast", "crates"),
            concurrency_crates: get_list("rules.concurrency", "crates"),
            lock_helpers: or_default(
                get_list("rules.concurrency", "lock-helpers"),
                defaults.lock_helpers,
            ),
            blocking_methods: or_default(
                get_list("rules.concurrency", "blocking-methods"),
                defaults.blocking_methods,
            ),
            blocking_paths: or_default(
                get_list("rules.concurrency", "blocking-paths"),
                defaults.blocking_paths,
            ),
        })
    }
}

type Tables = BTreeMap<String, BTreeMap<String, Value>>;

fn parse_tables(text: &str) -> Result<Tables, ConfigError> {
    let mut tables: Tables = BTreeMap::new();
    let mut current = String::new();
    let err = |line: usize, message: &str| ConfigError {
        line: line as u32 + 1,
        message: message.to_string(),
    };

    for (i, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let Some(name) = header.strip_suffix(']') else {
                return Err(err(i, "unterminated table header"));
            };
            current = name.trim().to_string();
            tables.entry(current.clone()).or_default();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(i, "expected `key = value`"));
        };
        let key = key.trim().to_string();
        let value = parse_value(value.trim()).ok_or_else(|| {
            err(i, "expected a \"string\" or [\"a\", \"b\"] list")
        })?;
        tables.entry(current.clone()).or_default().insert(key, value);
    }
    Ok(tables)
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a quoted string does not start a comment.
    let mut in_str = false;
    for (idx, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str) -> Option<Value> {
    if let Some(s) = parse_str(v) {
        return Some(Value::Str(s));
    }
    let inner = v.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Value::List(Vec::new()));
    }
    let mut items = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        items.push(parse_str(part)?);
    }
    Some(Value::List(items))
}

fn parse_str(v: &str) -> Option<String> {
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    if inner.contains('"') {
        return None;
    }
    Some(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shipped_shape() {
        let cfg = Config::parse(
            r#"
# comment
[rules.hash-order]
crates = ["retention", "core"]

[rules.wall-clock]
banned = ["SystemTime", "thread_rng"]
banned-paths = ["Instant::now"]
allow-files = ["crates/conformance/src/bin/experiments.rs"]

[rules.panic]
expect-prefix = "invariant: "   # documented-invariant convention
index-crates = ["exec"]

[rules.lossy-cast]
crates = ["exec", "retention", "core"]
"#,
        )
        .expect("valid config");
        assert_eq!(cfg.hash_order_crates, vec!["retention", "core"]);
        assert_eq!(cfg.wall_clock_banned_paths, vec!["Instant::now"]);
        assert_eq!(cfg.panic_expect_prefix, "invariant: ");
        assert_eq!(cfg.panic_index_crates, vec!["exec"]);
        assert_eq!(cfg.lossy_cast_crates.len(), 3);
    }

    #[test]
    fn defaults_survive_an_empty_file() {
        let cfg = Config::parse("").expect("empty config is valid");
        assert!(cfg.hash_order_crates.is_empty());
        assert_eq!(cfg.panic_expect_prefix, "invariant: ");
        assert!(cfg.wall_clock_banned.contains(&"SystemTime".to_string()));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Config::parse("[rules.hash-order\ncrates = []").is_err());
        assert!(Config::parse("key value").is_err());
        assert!(Config::parse("key = [1, 2]").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse(
            "[rules.wall-clock]\nallow-files = [\"a#b.rs\"]\n",
        )
        .expect("valid");
        assert_eq!(cfg.wall_clock_allow_files, vec!["a#b.rs"]);
    }
}
