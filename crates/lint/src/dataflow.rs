//! Intraprocedural dataflow over the AST: tracks `MutexGuard` lifetimes
//! from acquisition (the `lock(&x)` helper, `.lock()` method chains,
//! condvar `wait*` passthrough) to death (`drop(g)`, move into a condvar
//! wait, scope end), and records the events the concurrency rules need:
//!
//! * acquisitions with the set of locks already held (L1 edges),
//! * every call with the set of guards live across it (L2),
//! * condvar waits and whether they sit inside a loop (L3),
//! * guards escaping via `return` or struct storage (L4).
//!
//! Everything here is *syntactic*: locks are identified by reference
//! chains (`shared.store`, `self.jobs`) whose resolution to workspace
//! lock identities happens in [`crate::callgraph`]. Closures are
//! analyzed as separate anonymous functions with a fresh guard state —
//! a closure may run on another thread (`thread::spawn`), so assuming
//! the spawner's guards are held inside it would fabricate deadlock
//! edges that cannot occur.

use crate::ast::{Block, Expr, ExprKind, File, FnItem, Item, Param, Pat, Stmt};

/// A syntactic reference chain: `base.f1.f2` (`base` may be `self`, a
/// local, a parameter, or a `::`-joined path).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Chain {
    pub base: String,
    pub fields: Vec<String>,
}

impl Chain {
    fn unknown() -> Self {
        Chain { base: "<unknown>".to_string(), fields: Vec::new() }
    }

    /// True when the chain could not be expressed syntactically.
    pub fn is_unknown(&self) -> bool {
        self.base == "<unknown>"
    }
}

impl std::fmt::Display for Chain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.base)?;
        for fld in &self.fields {
            write!(f, ".{fld}")?;
        }
        Ok(())
    }
}

/// A guard live across some event, with where it was acquired.
#[derive(Debug, Clone)]
pub struct HeldInfo {
    pub lock: Chain,
    pub acquired_line: u32,
}

/// One lock acquisition and the locks already held at that point.
#[derive(Debug, Clone)]
pub struct AcquireEvent {
    pub lock: Chain,
    pub held: Vec<HeldInfo>,
    pub line: u32,
    pub col: u32,
}

/// One call (free or method) and the guards live across it.
#[derive(Debug, Clone)]
pub struct CallEvent {
    /// Method name or last path segment.
    pub name: String,
    /// Full path segments for free-function calls (empty for methods).
    pub path: Vec<String>,
    /// Receiver chain for method calls, when expressible.
    pub recv: Option<Chain>,
    /// When the receiver chain roots at a live guard binding: the lock
    /// that guard protects (lets the callgraph type through the deref).
    pub recv_via_guard: Option<Chain>,
    pub held: Vec<HeldInfo>,
    pub line: u32,
    pub col: u32,
}

/// One condvar wait site.
#[derive(Debug, Clone)]
pub struct WaitEvent {
    pub method: String,
    pub in_loop: bool,
    /// `wait_while` / `wait_timeout_while` re-check internally.
    pub while_form: bool,
    pub line: u32,
    pub col: u32,
}

/// How a guard escaped its critical section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EscapeKind {
    Returned,
    Stored,
}

/// A guard escaping via `return` or struct storage (L4).
#[derive(Debug, Clone)]
pub struct GuardEscape {
    pub kind: EscapeKind,
    pub line: u32,
    pub col: u32,
}

/// Everything the concurrency rules need to know about one function.
#[derive(Debug, Clone)]
pub struct FnFacts {
    pub name: String,
    /// Implementing type for methods (`impl Server { … }` → `Server`).
    pub impl_type: Option<String>,
    pub params: Vec<Param>,
    pub ret: Vec<String>,
    pub cfg_test: bool,
    pub is_closure: bool,
    pub line: u32,
    pub col: u32,
    pub acquires: Vec<AcquireEvent>,
    pub calls: Vec<CallEvent>,
    pub waits: Vec<WaitEvent>,
    pub escapes: Vec<GuardEscape>,
}

const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

/// Guard-result passthrough methods: `m.lock().unwrap()` and the
/// poison-recovering `unwrap_or_else` keep the same guard alive.
const PASSTHROUGH_METHODS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

const DIVERGING_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Analyzes every function in a parsed file.
pub fn analyze_file(file: &File, lock_helpers: &[String]) -> Vec<FnFacts> {
    let mut out = Vec::new();
    collect_items(&file.items, None, lock_helpers, &mut out);
    out
}

fn collect_items(
    items: &[Item],
    impl_type: Option<&str>,
    lock_helpers: &[String],
    out: &mut Vec<FnFacts>,
) {
    for item in items {
        match item {
            Item::Fn(f) => analyze_fn(f, impl_type, lock_helpers, out),
            Item::Impl(i) => collect_items(&i.items, Some(&i.type_name), lock_helpers, out),
            Item::Mod(m) => collect_items(&m.items, None, lock_helpers, out),
            Item::Trait(t) => collect_items(&t.items, Some(&t.name), lock_helpers, out),
            Item::Struct(_) | Item::Skipped => {}
        }
    }
}

fn analyze_fn(f: &FnItem, impl_type: Option<&str>, lock_helpers: &[String], out: &mut Vec<FnFacts>) {
    let facts = FnFacts {
        name: f.name.clone(),
        impl_type: impl_type.map(str::to_string),
        params: f.params.clone(),
        ret: f.ret.clone(),
        cfg_test: f.cfg_test,
        is_closure: false,
        line: f.line,
        col: f.col,
        acquires: Vec::new(),
        calls: Vec::new(),
        waits: Vec::new(),
        escapes: Vec::new(),
    };
    let mut w = Walker {
        lock_helpers,
        facts,
        extra: Vec::new(),
        guards: Vec::new(),
        next_id: 0,
        depth: 0,
        loop_depth: 0,
        diverged: false,
        closure_count: 0,
    };
    if let Some(body) = &f.body {
        w.walk_block_scoped(body);
    }
    out.append(&mut w.extra);
    out.push(w.facts);
}

/// One live guard.
#[derive(Debug, Clone)]
struct Guard {
    id: u32,
    binding: Option<String>,
    lock: Chain,
    /// Scope depth of the binding (guards die when their scope closes).
    depth: usize,
    /// Unbound guards die at the end of the enclosing statement.
    temp: bool,
    acquired_line: u32,
}

struct Walker<'a> {
    lock_helpers: &'a [String],
    facts: FnFacts,
    extra: Vec<FnFacts>,
    guards: Vec<Guard>,
    next_id: u32,
    depth: usize,
    loop_depth: usize,
    diverged: bool,
    closure_count: usize,
}

/// Extracts a syntactic reference chain from an expression, when the
/// expression is just `base.f1.f2` behind any refs/derefs.
fn chain_of(e: &Expr) -> Option<Chain> {
    match &e.kind {
        ExprKind::Path(segs) => Some(Chain { base: segs.join("::"), fields: Vec::new() }),
        ExprKind::Field { base, name } => {
            let mut c = chain_of(base)?;
            c.fields.push(name.clone());
            Some(c)
        }
        ExprKind::Ref(inner) | ExprKind::Unary(inner) => chain_of(inner),
        _ => None,
    }
}

impl<'a> Walker<'a> {
    fn new_guard(&mut self, lock: Chain, line: u32) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.guards.push(Guard {
            id,
            binding: None,
            lock,
            depth: self.depth,
            temp: true,
            acquired_line: line,
        });
        id
    }

    fn guard_pos(&self, id: u32) -> Option<usize> {
        self.guards.iter().position(|g| g.id == id)
    }

    fn guard_id_by_name(&self, name: &str) -> Option<u32> {
        // Latest binding wins (rebinding shadows).
        self.guards
            .iter()
            .rev()
            .find(|g| g.binding.as_deref() == Some(name))
            .map(|g| g.id)
    }

    fn remove_guard(&mut self, id: u32) -> Option<Guard> {
        self.guard_pos(id).map(|i| self.guards.remove(i))
    }

    fn held_info(&self) -> Vec<HeldInfo> {
        self.guards
            .iter()
            .map(|g| HeldInfo { lock: g.lock.clone(), acquired_line: g.acquired_line })
            .collect()
    }

    /// Kills temporaries at the end of a statement.
    fn end_statement(&mut self) {
        self.guards.retain(|g| !g.temp);
    }

    /// Kills temporaries created after `mark` (condition scopes).
    fn kill_temps_since(&mut self, mark: &[u32]) {
        self.guards.retain(|g| !g.temp || mark.contains(&g.id));
    }

    fn guard_ids(&self) -> Vec<u32> {
        self.guards.iter().map(|g| g.id).collect()
    }

    // ------------------------------------------------------------------
    // Blocks and statements
    // ------------------------------------------------------------------

    fn walk_block_scoped(&mut self, block: &Block) {
        self.depth += 1;
        let depth = self.depth;
        for stmt in &block.stmts {
            self.walk_stmt(stmt);
        }
        self.guards.retain(|g| g.depth < depth);
        self.depth -= 1;
    }

    fn walk_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Let { pat, init, else_block, .. } => {
                let produced = init.as_ref().and_then(|e| self.walk_expr(e));
                if let Some(else_b) = else_block {
                    // The else block diverges by definition; analyze it
                    // for events on a throwaway state.
                    let saved = self.guards.clone();
                    let dv = self.diverged;
                    self.walk_block_scoped(else_b);
                    self.guards = saved;
                    self.diverged = dv;
                }
                match (pat, produced) {
                    (Pat::Ident(n), Some(id)) if n == "_" => {
                        // `let _ = …` drops immediately.
                        self.remove_guard(id);
                    }
                    (Pat::Ident(n), Some(id)) => {
                        if let Some(i) = self.guard_pos(id) {
                            self.guards[i].binding = Some(n.clone());
                            self.guards[i].temp = false;
                            self.guards[i].depth = self.depth;
                        }
                    }
                    (Pat::Other, Some(id)) => {
                        // Destructured guard (`let (g, timed) = …`): keep
                        // it alive to scope end, unnameable.
                        if let Some(i) = self.guard_pos(id) {
                            self.guards[i].temp = false;
                            self.guards[i].depth = self.depth;
                        }
                    }
                    _ => {}
                }
                self.end_statement();
            }
            Stmt::Expr(e) => {
                self.walk_expr(e);
                self.end_statement();
            }
            Stmt::Item(Item::Fn(f)) => {
                // Nested function: fresh analysis, no shared state.
                let mut nested = Vec::new();
                analyze_fn(f, self.facts.impl_type.as_deref(), self.lock_helpers, &mut nested);
                self.extra.append(&mut nested);
            }
            Stmt::Item(_) => {}
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Walks an expression; returns the id of the guard it produces, if
    /// any (acquisition or passthrough).
    fn walk_expr(&mut self, e: &Expr) -> Option<u32> {
        match &e.kind {
            ExprKind::Lit | ExprKind::Path(_) => None,
            ExprKind::Field { base, name } => {
                let b = self.walk_expr(base);
                // `cv.wait_timeout(g, d).….0` — tuple passthrough.
                if name == "0" {
                    return b;
                }
                None
            }
            ExprKind::Ref(inner) | ExprKind::Unary(inner) => self.walk_expr(inner),
            ExprKind::Binary { lhs, rhs } => {
                self.walk_expr(lhs);
                self.walk_expr(rhs);
                None
            }
            ExprKind::Assign { target, value } => {
                self.assign_expr(target, value);
                None
            }
            ExprKind::Call { callee, args } => self.call_expr(e, callee, args),
            ExprKind::MethodCall { recv, method, args } => {
                self.method_expr(e, recv, method, args)
            }
            ExprKind::MacroCall(segs) => {
                if segs
                    .first()
                    .is_some_and(|s| DIVERGING_MACROS.contains(&s.as_str()))
                {
                    self.diverged = true;
                }
                None
            }
            ExprKind::If { cond, then, els } => {
                self.if_expr(cond, then, els.as_deref());
                None
            }
            ExprKind::While { cond, body } => {
                let mark = self.guard_ids();
                self.walk_expr(cond);
                self.kill_temps_since(&mark);
                self.loop_body(body);
                None
            }
            ExprKind::Loop { body } | ExprKind::For { body, iter: _, .. } => {
                if let ExprKind::For { iter, .. } = &e.kind {
                    let mark = self.guard_ids();
                    self.walk_expr(iter);
                    self.kill_temps_since(&mark);
                }
                self.loop_body(body);
                None
            }
            ExprKind::Match { scrutinee, arms } => {
                self.walk_expr(scrutinee);
                let base = self.guards.clone();
                let dv = self.diverged;
                let mut merged: Option<Vec<Guard>> = None;
                let mut any_live = false;
                for arm in arms {
                    self.guards = base.clone();
                    self.diverged = false;
                    self.walk_expr(arm);
                    if !self.diverged {
                        any_live = true;
                        merged = Some(match merged.take() {
                            None => self.guards.clone(),
                            Some(m) => intersect(&m, &self.guards),
                        });
                    }
                }
                self.guards = merged.unwrap_or(base);
                self.diverged = dv || (!arms.is_empty() && !any_live);
                None
            }
            ExprKind::BlockExpr(b) => {
                self.walk_block_scoped(b);
                None
            }
            ExprKind::Return(value) => {
                if let Some(v) = value {
                    let escaped = v
                        .as_ident()
                        .and_then(|n| self.guard_id_by_name(n))
                        .or_else(|| self.walk_expr(v));
                    if escaped.is_some() {
                        self.facts.escapes.push(GuardEscape {
                            kind: EscapeKind::Returned,
                            line: e.line,
                            col: e.col,
                        });
                    }
                }
                self.diverged = true;
                None
            }
            ExprKind::Break | ExprKind::Continue => {
                self.diverged = true;
                None
            }
            ExprKind::Closure { body } => {
                self.analyze_closure(body);
                None
            }
            ExprKind::StructLit { fields, .. } => {
                for (_, value) in fields {
                    let escaped = value
                        .as_ident()
                        .and_then(|n| self.guard_id_by_name(n))
                        .or_else(|| self.walk_expr(value));
                    if let Some(id) = escaped {
                        self.facts.escapes.push(GuardEscape {
                            kind: EscapeKind::Stored,
                            line: value.line,
                            col: value.col,
                        });
                        // The guard moved into the struct; it is no
                        // longer a tracked local.
                        self.remove_guard(id);
                    }
                }
                None
            }
            ExprKind::Other(children) => {
                for c in children {
                    self.walk_expr(c);
                }
                None
            }
        }
    }

    fn assign_expr(&mut self, target: &Expr, value: &Expr) {
        let produced = value
            .as_ident()
            .and_then(|n| self.guard_id_by_name(n))
            .or_else(|| self.walk_expr(value));
        if let Some(name) = target.as_ident() {
            let old = self.guard_id_by_name(name);
            if let Some(id) = produced {
                // Rebinding: `seq = cv.wait_timeout(seq, t)….0` — the old
                // guard (if any) was moved or overwritten.
                let depth = old
                    .and_then(|o| self.guard_pos(o))
                    .map(|i| self.guards[i].depth);
                if let Some(o) = old {
                    if o != id {
                        self.remove_guard(o);
                    }
                }
                if let Some(i) = self.guard_pos(id) {
                    self.guards[i].binding = Some(name.to_string());
                    self.guards[i].temp = false;
                    self.guards[i].depth = depth.unwrap_or(self.depth);
                }
            } else if old.is_some() {
                // Guard variable overwritten by a non-guard value.
                if let Some(o) = old {
                    self.remove_guard(o);
                }
            }
            return;
        }
        // Storing a guard through a place expression (`self.g = guard`).
        if let Some(id) = produced {
            if chain_of(target).is_some() {
                self.facts.escapes.push(GuardEscape {
                    kind: EscapeKind::Stored,
                    line: target.line,
                    col: target.col,
                });
                self.remove_guard(id);
            }
        }
        self.walk_expr(target);
    }

    /// Walks call arguments; returns ids of live guard bindings moved
    /// into the call by value.
    fn walk_args(&mut self, args: &[Expr]) -> Vec<u32> {
        let mut moved = Vec::new();
        for a in args {
            if let Some(id) = a.as_ident().and_then(|n| self.guard_id_by_name(n)) {
                moved.push(id);
                continue;
            }
            self.walk_expr(a);
        }
        moved
    }

    fn call_expr(&mut self, e: &Expr, callee: &Expr, args: &[Expr]) -> Option<u32> {
        let path: Option<Vec<String>> = match &callee.kind {
            ExprKind::Path(segs) => Some(segs.clone()),
            _ => {
                self.walk_expr(callee);
                None
            }
        };
        let moved = self.walk_args(args);
        let last = path.as_ref().and_then(|p| p.last()).cloned();

        // `drop(g)` ends the guard's critical section.
        if last.as_deref() == Some("drop") && moved.len() == 1 {
            if let Some(&id) = moved.first() {
                self.remove_guard(id);
            }
            return None;
        }

        // The configured lock helpers acquire and return a guard.
        if let Some(name) = &last {
            if self.lock_helpers.iter().any(|h| h == name) {
                let lock = args.first().and_then(chain_of).unwrap_or_else(Chain::unknown);
                self.facts.acquires.push(AcquireEvent {
                    lock: lock.clone(),
                    held: self.held_info(),
                    line: e.line,
                    col: e.col,
                });
                return Some(self.new_guard(lock, e.line));
            }
        }

        if let (Some(name), Some(p)) = (last, path) {
            self.facts.calls.push(CallEvent {
                name,
                path: p,
                recv: None,
                recv_via_guard: None,
                held: self.held_info(),
                line: e.line,
                col: e.col,
            });
        }
        // Guards moved into an arbitrary call are consumed by it.
        for id in moved {
            self.remove_guard(id);
        }
        None
    }

    fn method_expr(&mut self, e: &Expr, recv: &Expr, method: &str, args: &[Expr]) -> Option<u32> {
        let recv_chain = chain_of(recv);
        let recv_guard_id = recv_chain
            .as_ref()
            .and_then(|c| self.guard_id_by_name(&c.base));
        let recv_produced = if recv_chain.is_none() { self.walk_expr(recv) } else { None };

        // Condvar waits: the guard passed in is *consumed*, not held
        // across the wait; the call returns a fresh guard on the same
        // lock.
        if WAIT_METHODS.contains(&method) {
            if args.is_empty() {
                // A wait-named method without a guard argument is not a
                // condvar wait (`JoinHandle`-style waits have no guard);
                // treat it as a plain method call.
                self.record_method_call(e, method, recv_chain, recv_guard_id, recv_produced);
                return None;
            }
            // The guard argument may be untracked (e.g. passed in as a
            // parameter) — the wait still happens, so always record the
            // event; fall back to the argument's own chain as the lock
            // identity when nothing was consumed.
            let arg_chain = chain_of(&args[0]);
            let moved = self.walk_args(args);
            let lock = moved
                .first()
                .and_then(|&consumed| self.remove_guard(consumed))
                .map(|g| g.lock)
                .or(arg_chain)
                .unwrap_or_else(Chain::unknown);
            self.facts.waits.push(WaitEvent {
                method: method.to_string(),
                in_loop: self.loop_depth > 0,
                while_form: method.ends_with("while"),
                line: e.line,
                col: e.col,
            });
            self.facts.calls.push(CallEvent {
                name: method.to_string(),
                path: Vec::new(),
                recv: recv_chain,
                recv_via_guard: None,
                held: self.held_info(),
                line: e.line,
                col: e.col,
            });
            return Some(self.new_guard(lock, e.line));
        }

        let moved = self.walk_args(args);

        // `.lock()` on a reference chain acquires.
        if method == "lock" && recv_guard_id.is_none() && recv_produced.is_none() {
            let lock = recv_chain.unwrap_or_else(Chain::unknown);
            self.facts.acquires.push(AcquireEvent {
                lock: lock.clone(),
                held: self.held_info(),
                line: e.line,
                col: e.col,
            });
            return Some(self.new_guard(lock, e.line));
        }

        // `m.lock().unwrap()` / `.unwrap_or_else(…)` passthrough.
        if PASSTHROUGH_METHODS.contains(&method) {
            if let Some(id) = recv_produced {
                return Some(id);
            }
        }

        self.record_method_call(e, method, recv_chain, recv_guard_id, recv_produced);
        for id in moved {
            self.remove_guard(id);
        }
        None
    }

    fn record_method_call(
        &mut self,
        e: &Expr,
        method: &str,
        recv_chain: Option<Chain>,
        recv_guard_id: Option<u32>,
        recv_produced: Option<u32>,
    ) {
        let via = recv_guard_id
            .or(recv_produced)
            .and_then(|id| self.guard_pos(id))
            .map(|i| self.guards[i].lock.clone());
        self.facts.calls.push(CallEvent {
            name: method.to_string(),
            path: Vec::new(),
            recv: recv_chain,
            recv_via_guard: via,
            held: self.held_info(),
            line: e.line,
            col: e.col,
        });
    }

    // ------------------------------------------------------------------
    // Control flow
    // ------------------------------------------------------------------

    fn if_expr(&mut self, cond: &Expr, then: &Block, els: Option<&Expr>) {
        let mark = self.guard_ids();
        self.walk_expr(cond);
        // Rust drops `if`-condition temporaries before entering the
        // block (`if !lock(&m).check() { … }` runs unlocked).
        self.kill_temps_since(&mark);

        let base = self.guards.clone();
        let dv = self.diverged;

        self.diverged = false;
        self.walk_block_scoped(then);
        let then_guards = self.guards.clone();
        let then_diverged = self.diverged;

        self.guards = base.clone();
        self.diverged = false;
        let (else_guards, else_diverged) = match els {
            Some(e) => {
                self.walk_expr(e);
                (self.guards.clone(), self.diverged)
            }
            None => (base.clone(), false),
        };

        let mut live: Vec<&Vec<Guard>> = Vec::new();
        if !then_diverged {
            live.push(&then_guards);
        }
        if !else_diverged {
            live.push(&else_guards);
        }
        match live.as_slice() {
            [] => {
                self.guards = base;
                self.diverged = true;
            }
            [one] => {
                self.guards = (*one).clone();
                self.diverged = dv;
            }
            [a, b, ..] => {
                self.guards = intersect(a, b);
                self.diverged = dv;
            }
        }
    }

    fn loop_body(&mut self, body: &Block) {
        let base = self.guards.clone();
        let dv = self.diverged;
        self.loop_depth += 1;
        self.diverged = false;
        self.walk_block_scoped(body);
        self.loop_depth -= 1;
        // The loop may run zero times (or exit early): keep only guards
        // that survive both paths.
        if self.diverged {
            self.guards = base;
        } else {
            self.guards = intersect(&base, &self.guards);
        }
        self.diverged = dv;
    }

    fn analyze_closure(&mut self, body: &Expr) {
        let name = format!("{}::{{closure#{}}}", self.facts.name, self.closure_count);
        self.closure_count += 1;
        let facts = FnFacts {
            name,
            impl_type: self.facts.impl_type.clone(),
            params: Vec::new(),
            ret: Vec::new(),
            cfg_test: self.facts.cfg_test,
            is_closure: true,
            line: body.line,
            col: body.col,
            acquires: Vec::new(),
            calls: Vec::new(),
            waits: Vec::new(),
            escapes: Vec::new(),
        };
        let mut sub = Walker {
            lock_helpers: self.lock_helpers,
            facts,
            extra: Vec::new(),
            guards: Vec::new(),
            next_id: 0,
            depth: 0,
            loop_depth: 0,
            diverged: false,
            closure_count: 0,
        };
        match &body.kind {
            ExprKind::BlockExpr(b) => sub.walk_block_scoped(b),
            _ => {
                sub.walk_expr(body);
                sub.end_statement();
            }
        }
        self.extra.append(&mut sub.extra);
        self.extra.push(sub.facts);
    }
}

/// Guards live in both states, identified by (binding, lock).
fn intersect(a: &[Guard], b: &[Guard]) -> Vec<Guard> {
    a.iter()
        .filter(|ga| {
            b.iter()
                .any(|gb| gb.binding == ga.binding && gb.lock == ga.lock)
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn facts_of(src: &str, name: &str) -> FnFacts {
        let file = parse(&lex(src).tokens);
        let helpers = vec!["lock".to_string()];
        analyze_file(&file, &helpers)
            .into_iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn nested_acquisition_records_held_locks() {
        let src = "
            impl Pair {
                fn forward(&self) {
                    let ga = lock(&self.a);
                    let gb = lock(&self.b);
                    drop(gb);
                    drop(ga);
                }
            }";
        let f = facts_of(src, "forward");
        assert_eq!(f.acquires.len(), 2);
        assert!(f.acquires[0].held.is_empty());
        assert_eq!(f.acquires[1].held.len(), 1);
        assert_eq!(f.acquires[1].held[0].lock.to_string(), "self.a");
        assert_eq!(f.acquires[1].lock.to_string(), "self.b");
    }

    #[test]
    fn temporaries_die_at_statement_end() {
        let src = "
            fn f(shared: &Shared) {
                lock(&shared.store).append(1);
                blocking_op();
            }";
        let f = facts_of(src, "f");
        let call = f.calls.iter().find(|c| c.name == "blocking_op").expect("call");
        assert!(call.held.is_empty(), "temp guard must not outlive its statement");
    }

    #[test]
    fn condvar_wait_consumes_the_guard_and_returns_a_new_one() {
        let src = "
            fn serve_watch(shared: &Shared) {
                let mut seq = lock(&shared.watch_seq);
                while *seq == observed {
                    if deadline_passed() {
                        drop(seq);
                        break;
                    }
                    seq = shared.watch_cv.wait_timeout(seq, TICK).unwrap_or_else(E::into_inner).0;
                }
                drop(seq);
            }";
        let f = facts_of(src, "serve_watch");
        assert_eq!(f.waits.len(), 1);
        assert!(f.waits[0].in_loop);
        assert!(!f.waits[0].while_form);
        // No *other* guard is held across the wait.
        let wait_call = f.calls.iter().find(|c| c.name == "wait_timeout").expect("wait");
        assert!(wait_call.held.is_empty());
    }

    #[test]
    fn guard_held_across_call_is_recorded() {
        let src = "
            fn f(shared: &Shared) {
                let jobs = lock(&shared.jobs);
                stream.write_all(buf);
                drop(jobs);
            }";
        let f = facts_of(src, "f");
        let call = f.calls.iter().find(|c| c.name == "write_all").expect("call");
        assert_eq!(call.held.len(), 1);
        assert_eq!(call.held[0].lock.to_string(), "shared.jobs");
    }

    #[test]
    fn diverging_branch_does_not_resurrect_dropped_guards() {
        let src = "
            fn f(m: &M) {
                let g = lock(&m.a);
                if cond() {
                    drop(g);
                    return;
                }
                after();
            }";
        let f = facts_of(src, "f");
        let call = f.calls.iter().find(|c| c.name == "after").expect("call");
        // The diverging branch dropped it, the fall-through still holds it.
        assert_eq!(call.held.len(), 1);
    }

    #[test]
    fn both_branches_dropping_clears_the_guard() {
        let src = "
            fn f(m: &M) {
                let g = lock(&m.a);
                if cond() { drop(g); } else { drop(g); }
                after();
            }";
        let f = facts_of(src, "f");
        let call = f.calls.iter().find(|c| c.name == "after").expect("call");
        assert!(call.held.is_empty());
    }

    #[test]
    fn returned_guard_is_an_escape() {
        let src = "
            fn grab(m: &M) -> G {
                let g = lock(&m.a);
                return g;
            }";
        let f = facts_of(src, "grab");
        assert_eq!(f.escapes.len(), 1);
        assert_eq!(f.escapes[0].kind, EscapeKind::Returned);
    }

    #[test]
    fn guard_stored_in_struct_literal_is_an_escape() {
        let src = "
            fn stash(m: &M) -> Holder {
                let g = lock(&m.a);
                Holder { guard: g }
            }";
        let f = facts_of(src, "stash");
        assert_eq!(f.escapes.len(), 1);
        assert_eq!(f.escapes[0].kind, EscapeKind::Stored);
    }

    #[test]
    fn scope_end_releases_block_guards() {
        let src = "
            fn f(m: &M) {
                {
                    let g = lock(&m.a);
                    inside();
                }
                outside();
            }";
        let f = facts_of(src, "f");
        let inside = f.calls.iter().find(|c| c.name == "inside").expect("inside");
        assert_eq!(inside.held.len(), 1);
        let outside = f.calls.iter().find(|c| c.name == "outside").expect("outside");
        assert!(outside.held.is_empty());
    }

    #[test]
    fn closures_run_with_fresh_guard_state() {
        let src = "
            fn f(pool: &Pool, shared: &Shared) {
                let g = lock(&pool.state);
                spawn(move || {
                    worker(shared);
                });
                drop(g);
            }";
        let file = parse(&lex(src).tokens);
        let helpers = vec!["lock".to_string()];
        let all = analyze_file(&file, &helpers);
        let closure = all.iter().find(|f| f.is_closure).expect("closure facts");
        let worker_call = closure.calls.iter().find(|c| c.name == "worker").expect("call");
        assert!(worker_call.held.is_empty(), "spawner's guard is not held on the new thread");
        // But the spawn call itself sees the held guard.
        let f = all.iter().find(|f| f.name == "f").expect("f");
        let spawn = f.calls.iter().find(|c| c.name == "spawn").expect("spawn");
        assert_eq!(spawn.held.len(), 1);
    }

    #[test]
    fn method_lock_with_unwrap_chain_is_one_acquisition() {
        let src = "
            fn f(m: &Holder) {
                let g = m.inner.lock().unwrap();
                use_it(&g);
                drop(g);
            }";
        let f = facts_of(src, "f");
        assert_eq!(f.acquires.len(), 1);
        assert_eq!(f.acquires[0].lock.to_string(), "m.inner");
        let call = f.calls.iter().find(|c| c.name == "use_it").expect("call");
        assert_eq!(call.held.len(), 1);
    }
}
