//! A small hand-rolled Rust lexer.
//!
//! `syn` is unavailable offline, and the lint rules only need a faithful
//! token stream: comments, strings (cooked, raw, byte, C), char literals
//! vs. lifetimes, numbers, identifiers, and single-character punctuation.
//! The lexer never fails — unexpected bytes become punctuation tokens —
//! so a syntactically broken file degrades to noisy tokens rather than a
//! lint crash.

/// What a token is. Only the distinctions the rules need are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, prefix stripped).
    Ident,
    /// Lifetime such as `'a` (includes the quote in `text`).
    Lifetime,
    /// Integer or float literal (suffix included).
    Number,
    /// String literal of any flavor; `text` holds the *contents* without
    /// quotes/hashes/prefix so rules can inspect messages.
    Str,
    /// Char or byte literal (`'x'`, `b'x'`).
    CharLit,
    /// One punctuation character (`text.len() == 1`).
    Punct,
}

/// One significant token with its source position (1-based line/col).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }
}

/// A `// lint: allow(<rule>) <reason>` marker found in a line comment.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// Rule name inside the parentheses (e.g. `hash-order`, `panic`).
    pub rule: String,
    /// Free-text justification following the closing parenthesis.
    pub reason: String,
    pub line: u32,
}

/// The result of lexing one file: significant tokens plus allow markers
/// harvested from comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub markers: Vec<AllowMarker>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into significant tokens and allow markers.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(b) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    text.push(cur.bump().unwrap_or(b'\n') as char);
                }
                if let Some(marker) = parse_marker(&text, line) {
                    out.markers.push(marker);
                }
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    if cur.starts_with("/*") {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    } else if cur.starts_with("*/") {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                    } else if cur.bump().is_none() {
                        break;
                    }
                }
            }
            b'"' => {
                let value = lex_cooked_string(&mut cur);
                out.tokens.push(Token { kind: TokenKind::Str, text: value, line, col });
            }
            b'\'' => lex_quote(&mut cur, &mut out, line, col),
            b'0'..=b'9' => {
                let text = lex_number(&mut cur);
                out.tokens.push(Token { kind: TokenKind::Number, text, line, col });
            }
            _ if is_ident_start(b) => {
                // Prefixed literals: r"", r#"", br"", b"", b'', c"", and raw
                // identifiers r#ident.
                if try_lex_prefixed(&mut cur, &mut out, line, col) {
                    continue;
                }
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(cur.bump().unwrap_or(b'_') as char);
                }
                out.tokens.push(Token { kind: TokenKind::Ident, text, line, col });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Lexes `'`-introduced tokens: lifetimes (`'a`) vs. char literals (`'a'`,
/// `'\n'`).
fn lex_quote(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    // Lifetime: `'` + ident-start where the char after the identifier run
    // is not another `'`.
    if cur.peek(1).is_some_and(is_ident_start) {
        let mut n = 2;
        while cur.peek(n).is_some_and(is_ident_continue) {
            n += 1;
        }
        if cur.peek(n) != Some(b'\'') {
            let mut text = String::new();
            for _ in 0..n {
                text.push(cur.bump().unwrap_or(b'\'') as char);
            }
            out.tokens.push(Token { kind: TokenKind::Lifetime, text, line, col });
            return;
        }
    }
    // Char literal: consume until the closing quote, honoring escapes.
    cur.bump();
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == b'\\' {
            cur.bump();
            cur.bump();
            continue;
        }
        if c == b'\'' {
            cur.bump();
            break;
        }
        text.push(cur.bump().unwrap_or(b'\'') as char);
    }
    out.tokens.push(Token { kind: TokenKind::CharLit, text, line, col });
}

/// Lexes a cooked (escaped) string literal, returning its contents.
fn lex_cooked_string(cur: &mut Cursor<'_>) -> String {
    cur.bump(); // opening quote
    let mut value = String::new();
    while let Some(c) = cur.peek(0) {
        match c {
            b'\\' => {
                cur.bump();
                if let Some(e) = cur.bump() {
                    // Keep simple escapes readable in the captured value;
                    // rules only prefix-match, so fidelity is not critical.
                    match e {
                        b'n' => value.push('\n'),
                        b't' => value.push('\t'),
                        b'"' => value.push('"'),
                        b'\\' => value.push('\\'),
                        _ => {}
                    }
                }
            }
            b'"' => {
                cur.bump();
                break;
            }
            _ => value.push(cur.bump().unwrap_or(b'"') as char),
        }
    }
    value
}

/// Lexes a raw string starting at `r`/`br`/`cr` (cursor on the prefix
/// letter(s)); assumes the caller verified the shape.
fn lex_raw_string(cur: &mut Cursor<'_>, prefix_len: usize) -> String {
    for _ in 0..prefix_len {
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    let closer: String = std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
    let mut value = String::new();
    while cur.peek(0).is_some() {
        if cur.starts_with(&closer) {
            for _ in 0..closer.len() {
                cur.bump();
            }
            break;
        }
        value.push(cur.bump().unwrap_or(b'"') as char);
    }
    value
}

/// Handles `r`/`b`/`c`-prefixed literals and raw identifiers. Returns true
/// if it consumed something.
fn try_lex_prefixed(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) -> bool {
    let b0 = cur.peek(0).unwrap_or(0);
    let b1 = cur.peek(1);

    // Raw identifier r#ident (but r#"..." is a raw string).
    if b0 == b'r' && b1 == Some(b'#') && cur.peek(2).is_some_and(is_ident_start) {
        cur.bump();
        cur.bump();
        let mut text = String::new();
        while let Some(c) = cur.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(cur.bump().unwrap_or(b'_') as char);
        }
        out.tokens.push(Token { kind: TokenKind::Ident, text, line, col });
        return true;
    }

    // Raw strings: r"..."/r#"..."#, br"...", cr"...".
    let raw_prefix = match (b0, b1) {
        (b'r', Some(b'"' | b'#')) => Some(1),
        (b'b' | b'c', Some(b'r'))
            if matches!(cur.peek(2), Some(b'"' | b'#')) =>
        {
            Some(2)
        }
        _ => None,
    };
    if let Some(plen) = raw_prefix {
        // Ensure the #-run actually ends in a quote (else `r#ident` style).
        let mut n = plen;
        while cur.peek(n) == Some(b'#') {
            n += 1;
        }
        if cur.peek(n) == Some(b'"') {
            let value = lex_raw_string(cur, plen);
            out.tokens.push(Token { kind: TokenKind::Str, text: value, line, col });
            return true;
        }
        return false;
    }

    // Cooked byte/C strings and byte chars: b"...", c"...", b'x'.
    if (b0 == b'b' || b0 == b'c') && b1 == Some(b'"') {
        cur.bump();
        let value = lex_cooked_string(cur);
        out.tokens.push(Token { kind: TokenKind::Str, text: value, line, col });
        return true;
    }
    if b0 == b'b' && b1 == Some(b'\'') {
        cur.bump();
        lex_quote(cur, out, line, col);
        return true;
    }
    false
}

/// Lexes a numeric literal (integers, floats, exponents, underscores,
/// suffixes). `1..n` range syntax is left as `1` + `..`.
fn lex_number(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    let digits = |cur: &mut Cursor<'_>, text: &mut String| {
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_alphanumeric() || c == b'_' {
                text.push(cur.bump().unwrap_or(b'0') as char);
            } else {
                break;
            }
        }
    };
    digits(cur, &mut text);
    // Fractional part only when followed by a digit (avoids ranges and
    // method calls on literals).
    if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        text.push(cur.bump().unwrap_or(b'.') as char);
        digits(cur, &mut text);
    }
    // Exponent sign, e.g. `1e-3` (the `e` was consumed by `digits`).
    if text.ends_with(['e', 'E'])
        && matches!(cur.peek(0), Some(b'+' | b'-'))
        && cur.peek(1).is_some_and(|c| c.is_ascii_digit())
    {
        text.push(cur.bump().unwrap_or(b'-') as char);
        digits(cur, &mut text);
    }
    text
}

/// Parses a `lint: allow(<rule>) <reason>` marker out of a line comment.
/// The directive must *start* the comment (after any extra `/`/`!` of a
/// doc comment and whitespace) — prose that merely mentions the syntax,
/// like this doc comment, is not a marker.
fn parse_marker(comment: &str, line: u32) -> Option<AllowMarker> {
    let head = comment.trim_start_matches(['/', '!']).trim_start();
    if !head.starts_with("lint: allow(") {
        return None;
    }
    let rest = &head["lint: allow(".len()..];
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..].trim().to_string();
    if rule.is_empty() {
        return None;
    }
    Some(AllowMarker { rule, reason, line })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r###"
            // HashMap in a comment
            /* HashMap in a block /* nested HashMap */ */
            let a = "HashMap in a string";
            let b = r#"HashMap in a raw string"#;
            let c = 'H';
            real_ident
        "###;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::CharLit).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "x");
    }

    #[test]
    fn string_contents_are_captured() {
        let toks = lex(r#"x.expect("invariant: cells is nonempty")"#).tokens;
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).expect("string token");
        assert!(s.text.starts_with("invariant: "));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = lex("for i in 0..10 { (1.5e-3).max(2.0_f64); }").tokens;
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3", "2.0_f64"]);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  bc").tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!(toks[1].text, "bc");
    }

    #[test]
    fn markers_are_harvested() {
        let lexed = lex(
            "let x = m.get(k); // lint: allow(hash-order) membership only, never iterated\n",
        );
        assert_eq!(lexed.markers.len(), 1);
        assert_eq!(lexed.markers[0].rule, "hash-order");
        assert!(lexed.markers[0].reason.contains("membership"));
        assert_eq!(lexed.markers[0].line, 1);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let ids = idents("let r#type = r#\"raw\"#;");
        assert!(ids.contains(&"type".to_string()));
    }
}
