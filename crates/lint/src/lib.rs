//! `reaper-lint` — workspace-specific determinism and panic-safety lints.
//!
//! The REAPER reproduction's scientific claim rests on bit-identical
//! trials ([`reaper-exec`]'s contract) pinned by golden tables
//! (`reaper-conformance`). Those are *dynamic* guarantees: nothing stops a
//! future change from reintroducing hash-order iteration feeding an
//! output, a wall-clock read inside a trial, or a panic deep in a library
//! crate. This crate closes that gap statically with four rules clippy
//! cannot express (see [`rules`] and `DESIGN.md` §"Static analysis &
//! determinism invariants"):
//!
//! * **D1 `hash-order`** — no `HashMap`/`HashSet` in output-affecting
//!   crates,
//! * **D2 `wall-clock`** — no `SystemTime`/`Instant::now`/`thread_rng`
//!   outside sanctioned timing code,
//! * **P1 `panic`** — no undocumented `unwrap`/`expect`/`panic!`/indexing
//!   in library code,
//! * **C1 `lossy-cast`** — no bare `as` integer casts in hot-path crates.
//!
//! Rule scopes live in `lint.toml` at the workspace root; per-site
//! escapes are `// lint: allow(<rule>) <reason>` comments, which the
//! binary cross-checks so a stale allowlist cannot accumulate.

// Deny-wall escapes (DESIGN.md §"Static analysis & determinism
// invariants"): `reaper-lint` enforces the finer-grained forms of these
// lints — P1 requires `invariant: `-prefixed expect messages and audits
// indexing in the hot-path crates, C1 bans bare casts there — with
// per-site `// lint: allow` markers. Clippy's blanket versions are
// allowed at the crate root so `-D warnings` stays green without
// annotating every audited site twice.
#![allow(clippy::indexing_slicing, clippy::cast_possible_truncation)]

pub mod ast;
pub mod callgraph;
pub mod concurrency;
pub mod config;
pub mod dataflow;
pub mod lexer;
pub mod output;
pub mod parser;
pub mod rules;

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

pub use config::Config;
pub use rules::{check_file, Diagnostic, FileClass, FileKind};

/// Directories under the workspace root that are scanned for `.rs` files.
/// `vendor/` is deliberately excluded: those crates are offline stand-ins
/// emulating external APIs, not part of the reproduction's claim surface.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// A scan failure (I/O or config).
#[derive(Debug)]
pub struct ScanError(pub String);

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "reaper-lint: {}", self.0)
    }
}

impl std::error::Error for ScanError {}

/// The outcome of linting the whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, ordered by (file, line, col).
    pub diagnostics: Vec<Diagnostic>,
    /// Files inspected.
    pub files_checked: usize,
    /// `// lint: allow(...)` markers that carry no reason text — these are
    /// findings too: an unexplained escape defeats the audit trail.
    pub bare_markers: Vec<Diagnostic>,
}

impl Report {
    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.bare_markers.is_empty()
    }
}

/// Walks upward from `start` to the directory containing `lint.toml`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Classifies one workspace-relative path, or `None` if it is out of
/// scope (fixtures, non-Rust files).
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") || rel.contains("/tests/fixtures/") {
        return None;
    }
    let mut parts = rel.split('/');
    let (crate_name, rest): (String, Vec<&str>) = match parts.next()? {
        "crates" => (parts.next()?.to_string(), parts.collect()),
        // Root façade package: `src/`, `tests/`, `examples/` at the top.
        top => (
            "reaper".to_string(),
            std::iter::once(top).chain(parts).collect(),
        ),
    };
    let kind = match rest.first().copied()? {
        "src" => {
            if rest.get(1).copied() == Some("bin") || rest.last().copied() == Some("main.rs") {
                FileKind::BinSrc
            } else {
                FileKind::LibSrc
            }
        }
        "tests" | "benches" | "examples" => FileKind::TestCode,
        _ => return None,
    };
    Some(FileClass { crate_name, kind })
}

/// Per-file state the workspace runner keeps for marker accounting.
struct ScannedFile {
    rel: String,
    markers: Vec<lexer::AllowMarker>,
    /// Source lines that fall inside `#[cfg(test)]` items.
    test_lines: BTreeSet<u32>,
    test_code: bool,
}

/// Lints every in-scope `.rs` file under `root`: the per-file rules
/// (D1/D2/P1/C1), the workspace-wide concurrency rules (L1–L4), and the
/// marker cross-checks (M0 bare, M1 stale). Suppression happens here,
/// centrally, so every `// lint: allow` marker's usage is accounted for
/// — a marker that no longer suppresses anything is itself a finding.
pub fn run_workspace(root: &Path) -> Result<Report, ScanError> {
    let cfg_path = root.join("lint.toml");
    let cfg_text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| ScanError(format!("cannot read {}: {e}", cfg_path.display())))?;
    let cfg = Config::parse(&cfg_text).map_err(|e| ScanError(e.to_string()))?;

    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        collect_rs_files(&root.join(scan), &mut files);
    }
    files.sort();

    let mut report = Report::default();
    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut scanned: Vec<ScannedFile> = Vec::new();
    let mut facts: Vec<callgraph::FileFacts> = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(class) = classify(&rel) else { continue };
        let source = std::fs::read_to_string(&path)
            .map_err(|e| ScanError(format!("cannot read {rel}: {e}")))?;
        report.files_checked += 1;
        raw.extend(rules::check_file_raw(&rel, &source, &class, &cfg));

        let lexed = lexer::lex(&source);
        let mask = rules::test_region_mask(&lexed.tokens);
        let test_lines: BTreeSet<u32> = lexed
            .tokens
            .iter()
            .zip(&mask)
            .filter(|&(_, &masked)| masked)
            .map(|(t, _)| t.line)
            .collect();
        let test_code = class.kind == FileKind::TestCode;
        facts.push(callgraph::FileFacts::from_source(
            &rel,
            &class.crate_name,
            test_code,
            &source,
            &cfg.lock_helpers,
        ));
        scanned.push(ScannedFile {
            rel,
            markers: lexed.markers,
            test_lines,
            test_code,
        });
    }
    raw.extend(concurrency::check_files(facts, &cfg));

    // Central suppression with usage accounting. Every covering marker
    // counts as used, even when several cover the same finding.
    let by_rel: BTreeMap<&str, usize> = scanned
        .iter()
        .enumerate()
        .map(|(i, s)| (s.rel.as_str(), i))
        .collect();
    let mut used: BTreeSet<(usize, usize)> = BTreeSet::new();
    raw.retain(|d| {
        let Some(&fi) = by_rel.get(d.file.as_str()) else { return true };
        let mut suppressed = false;
        for (mi, m) in scanned[fi].markers.iter().enumerate() {
            if rules::marker_covers(m, d.rule_name, d.line) {
                used.insert((fi, mi));
                suppressed = true;
            }
        }
        !suppressed
    });
    report.diagnostics = raw;

    // Cross-check the escape hatch itself.
    for (fi, s) in scanned.iter().enumerate() {
        for (mi, m) in s.markers.iter().enumerate() {
            // M0: every marker needs a reason.
            if m.reason.is_empty() {
                report.bare_markers.push(Diagnostic {
                    rule_id: "M0",
                    rule_name: "bare-marker",
                    file: s.rel.clone(),
                    line: m.line,
                    col: 1,
                    message: format!("`lint: allow({})` without a reason", m.rule),
                    help: "append a justification after the closing parenthesis"
                        .to_string(),
                    notes: Vec::new(),
                });
                continue;
            }
            // M1: a reasoned marker that suppresses nothing is stale —
            // the code it excused is gone. Test code is exempt (rules
            // do not run there, so its markers are never "used").
            let in_test_region = s.test_lines.contains(&m.line)
                || s.test_lines.contains(&(m.line + 1));
            if used.contains(&(fi, mi)) || s.test_code || in_test_region {
                continue;
            }
            report.diagnostics.push(Diagnostic {
                rule_id: "M1",
                rule_name: "stale-allowance",
                file: s.rel.clone(),
                line: m.line,
                col: 1,
                message: format!(
                    "stale `lint: allow({})` — it no longer suppresses anything",
                    m.rule
                ),
                help: "delete the marker (or move it back next to the finding \
                       it excuses)"
                    .to_string(),
                notes: Vec::new(),
            });
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule_id).cmp(&(&b.file, b.line, b.col, b.rule_id)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_workspace_layout() {
        let lib = classify("crates/retention/src/chip.rs").expect("in scope");
        assert_eq!(lib.crate_name, "retention");
        assert_eq!(lib.kind, FileKind::LibSrc);

        let bin = classify("crates/conformance/src/bin/experiments.rs").expect("in scope");
        assert_eq!(bin.kind, FileKind::BinSrc);

        let bench = classify("crates/bench/benches/figures.rs").expect("in scope");
        assert_eq!(bench.kind, FileKind::TestCode);

        let root = classify("src/lib.rs").expect("in scope");
        assert_eq!(root.crate_name, "reaper");
        assert_eq!(root.kind, FileKind::LibSrc);

        let root_test = classify("tests/determinism.rs").expect("in scope");
        assert_eq!(root_test.kind, FileKind::TestCode);

        assert!(classify("crates/lint/tests/fixtures/p1_unwrap.rs").is_none());
        assert!(classify("goldens/eq1.tsv").is_none());
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn workspace_root_is_discoverable_from_here() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("lint.toml above crates/lint");
        assert!(root.join("Cargo.toml").is_file());
    }
}
