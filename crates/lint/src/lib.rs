//! `reaper-lint` — workspace-specific determinism and panic-safety lints.
//!
//! The REAPER reproduction's scientific claim rests on bit-identical
//! trials ([`reaper-exec`]'s contract) pinned by golden tables
//! (`reaper-conformance`). Those are *dynamic* guarantees: nothing stops a
//! future change from reintroducing hash-order iteration feeding an
//! output, a wall-clock read inside a trial, or a panic deep in a library
//! crate. This crate closes that gap statically with four rules clippy
//! cannot express (see [`rules`] and `DESIGN.md` §"Static analysis &
//! determinism invariants"):
//!
//! * **D1 `hash-order`** — no `HashMap`/`HashSet` in output-affecting
//!   crates,
//! * **D2 `wall-clock`** — no `SystemTime`/`Instant::now`/`thread_rng`
//!   outside sanctioned timing code,
//! * **P1 `panic`** — no undocumented `unwrap`/`expect`/`panic!`/indexing
//!   in library code,
//! * **C1 `lossy-cast`** — no bare `as` integer casts in hot-path crates.
//!
//! Rule scopes live in `lint.toml` at the workspace root; per-site
//! escapes are `// lint: allow(<rule>) <reason>` comments, which the
//! binary cross-checks so a stale allowlist cannot accumulate.

// Deny-wall escapes (DESIGN.md §"Static analysis & determinism
// invariants"): `reaper-lint` enforces the finer-grained forms of these
// lints — P1 requires `invariant: `-prefixed expect messages and audits
// indexing in the hot-path crates, C1 bans bare casts there — with
// per-site `// lint: allow` markers. Clippy's blanket versions are
// allowed at the crate root so `-D warnings` stays green without
// annotating every audited site twice.
#![allow(clippy::indexing_slicing, clippy::cast_possible_truncation)]

pub mod config;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use config::Config;
pub use rules::{check_file, Diagnostic, FileClass, FileKind};

/// Directories under the workspace root that are scanned for `.rs` files.
/// `vendor/` is deliberately excluded: those crates are offline stand-ins
/// emulating external APIs, not part of the reproduction's claim surface.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// A scan failure (I/O or config).
#[derive(Debug)]
pub struct ScanError(pub String);

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "reaper-lint: {}", self.0)
    }
}

impl std::error::Error for ScanError {}

/// The outcome of linting the whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, ordered by (file, line, col).
    pub diagnostics: Vec<Diagnostic>,
    /// Files inspected.
    pub files_checked: usize,
    /// `// lint: allow(...)` markers that carry no reason text — these are
    /// findings too: an unexplained escape defeats the audit trail.
    pub bare_markers: Vec<Diagnostic>,
}

impl Report {
    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.bare_markers.is_empty()
    }
}

/// Walks upward from `start` to the directory containing `lint.toml`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Classifies one workspace-relative path, or `None` if it is out of
/// scope (fixtures, non-Rust files).
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") || rel.contains("/tests/fixtures/") {
        return None;
    }
    let mut parts = rel.split('/');
    let (crate_name, rest): (String, Vec<&str>) = match parts.next()? {
        "crates" => (parts.next()?.to_string(), parts.collect()),
        // Root façade package: `src/`, `tests/`, `examples/` at the top.
        top => (
            "reaper".to_string(),
            std::iter::once(top).chain(parts).collect(),
        ),
    };
    let kind = match rest.first().copied()? {
        "src" => {
            if rest.get(1).copied() == Some("bin") || rest.last().copied() == Some("main.rs") {
                FileKind::BinSrc
            } else {
                FileKind::LibSrc
            }
        }
        "tests" | "benches" | "examples" => FileKind::TestCode,
        _ => return None,
    };
    Some(FileClass { crate_name, kind })
}

/// Lints every in-scope `.rs` file under `root`.
pub fn run_workspace(root: &Path) -> Result<Report, ScanError> {
    let cfg_path = root.join("lint.toml");
    let cfg_text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| ScanError(format!("cannot read {}: {e}", cfg_path.display())))?;
    let cfg = Config::parse(&cfg_text).map_err(|e| ScanError(e.to_string()))?;

    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        collect_rs_files(&root.join(scan), &mut files);
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(class) = classify(&rel) else { continue };
        let source = std::fs::read_to_string(&path)
            .map_err(|e| ScanError(format!("cannot read {rel}: {e}")))?;
        report.files_checked += 1;
        report
            .diagnostics
            .extend(rules::check_file(&rel, &source, &class, &cfg));
        // Cross-check the escape hatch itself: every marker needs a reason.
        for marker in lexer::lex(&source).markers {
            if marker.reason.is_empty() {
                report.bare_markers.push(Diagnostic {
                    rule_id: "M0",
                    rule_name: "bare-marker",
                    file: rel.clone(),
                    line: marker.line,
                    col: 1,
                    message: format!(
                        "`lint: allow({})` without a reason",
                        marker.rule
                    ),
                    help: "append a justification after the closing parenthesis"
                        .to_string(),
                });
            }
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_workspace_layout() {
        let lib = classify("crates/retention/src/chip.rs").expect("in scope");
        assert_eq!(lib.crate_name, "retention");
        assert_eq!(lib.kind, FileKind::LibSrc);

        let bin = classify("crates/conformance/src/bin/experiments.rs").expect("in scope");
        assert_eq!(bin.kind, FileKind::BinSrc);

        let bench = classify("crates/bench/benches/figures.rs").expect("in scope");
        assert_eq!(bench.kind, FileKind::TestCode);

        let root = classify("src/lib.rs").expect("in scope");
        assert_eq!(root.crate_name, "reaper");
        assert_eq!(root.kind, FileKind::LibSrc);

        let root_test = classify("tests/determinism.rs").expect("in scope");
        assert_eq!(root_test.kind, FileKind::TestCode);

        assert!(classify("crates/lint/tests/fixtures/p1_unwrap.rs").is_none());
        assert!(classify("goldens/eq1.tsv").is_none());
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn workspace_root_is_discoverable_from_here() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("lint.toml above crates/lint");
        assert!(root.join("Cargo.toml").is_file());
    }
}
