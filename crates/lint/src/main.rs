//! `reaper-lint` binary: lints the workspace and exits nonzero on any
//! finding. Run from anywhere inside the repo:
//!
//! ```text
//! cargo run -p reaper-lint                 # human-readable diagnostics
//! cargo run -p reaper-lint -- --json       # machine-readable, to stdout
//! cargo run -p reaper-lint -- --json=PATH  # machine-readable, to a file
//! cargo run -p reaper-lint -- --github     # per-line CI annotations
//! ```
//!
//! The JSON output is deterministic: findings arrive sorted by
//! `(file, line, col, rule)`, keys are emitted in a fixed order, and no
//! timestamps or absolute paths appear — two runs over the same tree
//! produce byte-identical documents.

// The terminal is this binary's output surface: diagnostics go to stdout,
// usage errors to stderr.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::path::PathBuf;
use std::process::ExitCode;

use reaper_lint::output::{render_github, render_json};

struct Options {
    start: PathBuf,
    /// `Some(None)` = JSON to stdout, `Some(Some(path))` = to a file.
    json: Option<Option<PathBuf>>,
    github: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        start: std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")),
        json: None,
        github: false,
    };
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            opts.json = Some(None);
        } else if let Some(path) = arg.strip_prefix("--json=") {
            opts.json = Some(Some(PathBuf::from(path)));
        } else if arg == "--github" {
            opts.github = true;
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag `{arg}`"));
        } else {
            opts.start = PathBuf::from(arg);
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("reaper-lint: {e}");
            eprintln!("usage: reaper-lint [--json[=PATH]] [--github] [DIR]");
            return ExitCode::FAILURE;
        }
    };
    let Some(root) = reaper_lint::find_workspace_root(&opts.start) else {
        eprintln!(
            "reaper-lint: no lint.toml found above {} — run from inside the workspace",
            opts.start.display()
        );
        return ExitCode::FAILURE;
    };

    let report = match reaper_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let total = report.diagnostics.len() + report.bare_markers.len();

    match &opts.json {
        Some(None) => print!("{}", render_json(&report)),
        Some(Some(path)) => {
            if let Err(e) = std::fs::write(path, render_json(&report)) {
                eprintln!("reaper-lint: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        None => {}
    }
    if opts.github {
        print!("{}", render_github(&report));
    }
    if opts.json.is_none() && !opts.github {
        for d in report.diagnostics.iter().chain(&report.bare_markers) {
            println!("{d}\n");
        }
    }

    if total > 0 {
        if opts.json != Some(None) {
            println!(
                "reaper-lint: {total} finding(s) across {} file(s)",
                report.files_checked
            );
        }
        ExitCode::FAILURE
    } else {
        if opts.json != Some(None) {
            println!(
                "reaper-lint: clean — {} file(s), rules D1/D2/P1/C1 + L1–L4 + M0/M1",
                report.files_checked
            );
        }
        ExitCode::SUCCESS
    }
}
