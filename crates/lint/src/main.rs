//! `reaper-lint` binary: lints the workspace and exits nonzero on any
//! finding. Run from anywhere inside the repo:
//!
//! ```text
//! cargo run -p reaper-lint
//! ```

// The terminal is this binary's output surface: diagnostics go to stdout,
// usage errors to stderr.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let start = std::env::args().nth(1).map_or_else(
        || std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")),
        PathBuf::from,
    );
    let Some(root) = reaper_lint::find_workspace_root(&start) else {
        eprintln!(
            "reaper-lint: no lint.toml found above {} — run from inside the workspace",
            start.display()
        );
        return ExitCode::FAILURE;
    };

    let report = match reaper_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    for d in report.diagnostics.iter().chain(&report.bare_markers) {
        println!("{d}\n");
    }
    let total = report.diagnostics.len() + report.bare_markers.len();
    if total > 0 {
        println!(
            "reaper-lint: {total} finding(s) across {} file(s)",
            report.files_checked
        );
        ExitCode::FAILURE
    } else {
        println!(
            "reaper-lint: clean — {} file(s), rules D1/D2/P1/C1",
            report.files_checked
        );
        ExitCode::SUCCESS
    }
}
