//! Machine-readable report renderers: deterministic JSON and GitHub
//! Actions per-line annotations.
//!
//! Determinism contract (relied on by CI artifact diffing): findings
//! arrive pre-sorted by `(file, line, col, rule)` from
//! [`crate::run_workspace`], keys are emitted in a fixed order, and the
//! document contains no timestamps, hostnames, or absolute paths — two
//! runs over the same tree are byte-identical.

use crate::rules::Diagnostic;
use crate::Report;

/// Escapes a string for a JSON document.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the report as a deterministic JSON document.
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files_checked\": {},\n", report.files_checked));
    out.push_str(&format!(
        "  \"finding_count\": {},\n",
        report.diagnostics.len() + report.bare_markers.len()
    ));
    out.push_str("  \"findings\": [");
    let all: Vec<&Diagnostic> = report
        .diagnostics
        .iter()
        .chain(&report.bare_markers)
        .collect();
    for (i, d) in all.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule_id\": {}, ", json_str(d.rule_id)));
        out.push_str(&format!("\"rule_name\": {}, ", json_str(d.rule_name)));
        out.push_str(&format!("\"file\": {}, ", json_str(&d.file)));
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"col\": {}, ", d.col));
        out.push_str(&format!("\"message\": {}, ", json_str(&d.message)));
        out.push_str(&format!("\"help\": {}, ", json_str(&d.help)));
        out.push_str("\"notes\": [");
        for (j, n) in d.notes.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(n));
        }
        out.push_str("]}");
    }
    if !all.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escapes annotation *message* text per the workflow-command rules.
fn github_escape(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// One `::error` workflow command per finding — GitHub turns these into
/// per-line annotations on the PR diff.
pub fn render_github(report: &Report) -> String {
    let mut out = String::new();
    for d in report.diagnostics.iter().chain(&report.bare_markers) {
        let mut message = d.message.clone();
        for n in &d.notes {
            message.push_str("\nnote: ");
            message.push_str(n);
        }
        message.push_str("\nhelp: ");
        message.push_str(&d.help);
        out.push_str(&format!(
            "::error file={},line={},col={},title=reaper-lint {}/{}::{}\n",
            d.file,
            d.line,
            d.col,
            d.rule_id,
            d.rule_name,
            github_escape(&message)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            diagnostics: vec![Diagnostic {
                rule_id: "L1",
                rule_name: "lock-order",
                file: "crates/serve/src/server.rs".to_string(),
                line: 12,
                col: 5,
                message: "cycle: `A` → `B` → `A` with \"quotes\"\nand a newline".to_string(),
                help: "reorder".to_string(),
                notes: vec!["path one".to_string(), "path two".to_string()],
            }],
            files_checked: 3,
            bare_markers: Vec::new(),
        }
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let a = render_json(&sample());
        let b = render_json(&sample());
        assert_eq!(a, b, "byte-identical across runs");
        assert!(a.contains(r#""rule_id": "L1""#), "{a}");
        assert!(a.contains(r#"\"quotes\""#), "quotes escaped: {a}");
        assert!(a.contains(r"\nand a newline"), "newline escaped: {a}");
        assert!(a.contains(r#""notes": ["path one", "path two"]"#), "{a}");
        assert!(a.ends_with("}\n"), "document is newline-terminated");
    }

    #[test]
    fn empty_report_renders_an_empty_findings_list() {
        let report = Report::default();
        let doc = render_json(&report);
        assert!(doc.contains("\"findings\": []"), "{doc}");
        assert!(doc.contains("\"finding_count\": 0"), "{doc}");
    }

    #[test]
    fn github_annotations_are_one_line_per_finding() {
        let doc = render_github(&sample());
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 1, "{doc}");
        assert!(
            lines[0].starts_with(
                "::error file=crates/serve/src/server.rs,line=12,col=5,title=reaper-lint L1/lock-order::"
            ),
            "{doc}"
        );
        assert!(lines[0].contains("%0A"), "newlines percent-encoded: {doc}");
        assert!(lines[0].contains("note: path one"), "{doc}");
    }
}
