//! Recursive-descent parser from the lexer's token stream into the
//! lightweight AST in [`crate::ast`].
//!
//! The parser never fails: any construct it does not model is consumed
//! balanced (so positions stay meaningful) and surfaces as
//! [`ExprKind::Other`] or [`Item::Skipped`]. Macros are opaque —
//! `macro_rules!` bodies and invocation bodies are skipped, mirroring
//! how the token rules treat `#[cfg(test)]` regions. Operator
//! precedence is deliberately ignored (binary chains flatten
//! left-associatively): the concurrency rules only care about which
//! calls happen and in which block/branch, never about evaluated
//! values.
//!
//! Multi-character operators (`::`, `->`, `=>`, `&&`, `..`) arrive from
//! the lexer as adjacent single-character `Punct` tokens and are
//! re-joined here via line/column adjacency.

use crate::ast::{
    Block, Expr, ExprKind, FieldDef, File, FnItem, ImplItem, Item, ModItem, Param, Pat, Stmt,
    StructItem, TraitItem,
};
use crate::lexer::{Token, TokenKind};

/// Parses a lexed token stream into a [`File`]. Never fails.
pub fn parse(tokens: &[Token]) -> File {
    let mut p = Parser { toks: tokens, pos: 0 };
    File { items: p.items_until(false, false) }
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self, n: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + n)
    }

    fn cur(&self) -> Option<&'a Token> {
        self.peek(0)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn at_punct(&self, c: char) -> bool {
        self.cur().is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.cur().is_some_and(|t| t.is_ident(s))
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// True when the token at `pos + n` and the one after it touch
    /// (multi-char operator halves are adjacent single-char puncts).
    fn joint(&self, n: usize) -> bool {
        match (self.peek(n), self.peek(n + 1)) {
            (Some(a), Some(b)) => a.line == b.line && b.col == a.col + 1,
            _ => false,
        }
    }

    /// True when the next tokens spell the punctuation sequence `op`
    /// with every pair adjacent (`::`, `->`, `=>`, `..=`, …).
    fn at_op(&self, op: &str) -> bool {
        for (i, c) in op.chars().enumerate() {
            if !self.peek(i).is_some_and(|t| t.is_punct(c)) {
                return false;
            }
            if i + 1 < op.chars().count() && !self.joint(i) {
                return false;
            }
        }
        true
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if self.at_op(op) {
            for _ in op.chars() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn pos_of_cur(&self) -> (u32, u32) {
        self.cur().map_or((0, 0), |t| (t.line, t.col))
    }

    // ------------------------------------------------------------------
    // Balanced skipping
    // ------------------------------------------------------------------

    /// Consumes a balanced `open … close` group, cursor on `open`.
    fn skip_balanced(&mut self, open: char, close: char) {
        if !self.eat_punct(open) {
            return;
        }
        let mut depth = 1u32;
        while depth > 0 && !self.at_end() {
            if self.at_punct(open) {
                depth += 1;
            } else if self.at_punct(close) {
                depth -= 1;
            }
            self.bump();
        }
    }

    /// Consumes a balanced generic group `< … >`, cursor on `<`.
    /// `->` arrows inside (`Fn() -> T`) do not close the group.
    fn skip_generics(&mut self) {
        if !self.eat_punct('<') {
            return;
        }
        let mut depth = 1u32;
        while depth > 0 && !self.at_end() {
            if self.at_op("->") {
                self.bump();
                self.bump();
                continue;
            }
            if self.at_punct('<') {
                depth += 1;
            } else if self.at_punct('>') {
                depth -= 1;
            }
            self.bump();
        }
    }

    /// Collects token texts until a depth-0 stop punct, tracking
    /// `()[]{}<>` nesting (arrow-aware). Used for types.
    fn type_tokens_until(&mut self, stops: &[char], stop_where: bool) -> Vec<String> {
        let mut out = Vec::new();
        let (mut par, mut brk, mut brc, mut ang) = (0i32, 0i32, 0i32, 0i32);
        while let Some(t) = self.cur() {
            let depth0 = par == 0 && brk == 0 && brc == 0 && ang == 0;
            if depth0 {
                if t.kind == TokenKind::Punct
                    && stops.contains(&t.text.chars().next().unwrap_or(' '))
                {
                    break;
                }
                if stop_where && t.is_ident("where") {
                    break;
                }
            }
            if self.at_op("->") {
                out.push("->".to_string());
                self.bump();
                self.bump();
                continue;
            }
            match punct_text(t) {
                "(" => par += 1,
                ")" => {
                    if depth0 {
                        break;
                    }
                    par -= 1;
                }
                "[" => brk += 1,
                "]" => brk -= 1,
                "{" => brc += 1,
                "}" => {
                    if depth0 {
                        break;
                    }
                    brc -= 1;
                }
                "<" => ang += 1,
                ">" => ang -= 1,
                _ => {}
            }
            out.push(t.text.clone());
            self.bump();
        }
        out
    }

    // ------------------------------------------------------------------
    // Attributes, visibility, items
    // ------------------------------------------------------------------

    /// Consumes any run of `#[…]` / `#![…]` attributes; returns true if
    /// one of them mentions `test` (covers `#[test]` and `#[cfg(test)]`).
    fn attrs(&mut self) -> bool {
        let mut test = false;
        while self.at_punct('#') {
            self.bump();
            self.eat_punct('!');
            let start = self.pos;
            self.skip_balanced('[', ']');
            for t in &self.toks[start..self.pos] {
                if t.is_ident("test") {
                    test = true;
                }
            }
        }
        test
    }

    fn visibility(&mut self) {
        if self.eat_ident("pub") && self.at_punct('(') {
            self.skip_balanced('(', ')');
        }
    }

    /// True when the cursor sits on the start of an item (used both at
    /// module level and for items nested in blocks).
    fn at_item_start(&self) -> bool {
        let Some(t) = self.cur() else { return false };
        if t.kind != TokenKind::Ident {
            return self.at_punct('#') && self.peek(1).is_some_and(|n| n.is_punct('['));
        }
        match t.text.as_str() {
            "fn" | "struct" | "enum" | "impl" | "mod" | "trait" | "use" | "static" | "union"
            | "macro_rules" | "pub" | "extern" | "type" => true,
            "unsafe" => self
                .peek(1)
                .is_some_and(|n| n.is_ident("fn") || n.is_ident("impl") || n.is_ident("trait")),
            "const" => self
                .peek(1)
                .is_some_and(|n| n.kind == TokenKind::Ident && !n.is_ident("{")),
            "async" => self.peek(1).is_some_and(|n| n.is_ident("fn")),
            _ => false,
        }
    }

    /// Parses items until end-of-input or, when `in_braces`, a closing
    /// `}` (consumed).
    fn items_until(&mut self, inherited_test: bool, in_braces: bool) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            if self.at_end() {
                break;
            }
            if in_braces && self.at_punct('}') {
                self.bump();
                break;
            }
            let before = self.pos;
            items.push(self.item(inherited_test));
            if self.pos == before {
                self.bump();
            }
        }
        items
    }

    /// Parses one item (or skips one unmodeled construct).
    fn item(&mut self, inherited_test: bool) -> Item {
        let cfg_test = self.attrs() || inherited_test;
        self.visibility();
        // Modifier run before `fn`: `const unsafe extern "C" fn …`.
        while self.at_ident("default")
            || self.at_ident("async")
            || (self.at_ident("unsafe") && !self.peek(1).is_some_and(|n| n.is_punct('{')))
            || (self.at_ident("const") && self.peek(1).is_some_and(|n| n.is_ident("fn")))
            || (self.at_ident("extern")
                && self.peek(1).is_some_and(|n| {
                    n.kind == TokenKind::Str || n.is_ident("fn")
                }))
        {
            let extern_str = self.at_ident("extern");
            self.bump();
            if extern_str && self.cur().is_some_and(|t| t.kind == TokenKind::Str) {
                self.bump();
            }
        }
        let Some(t) = self.cur() else { return Item::Skipped };
        match t.text.as_str() {
            "fn" => Item::Fn(self.fn_item(cfg_test)),
            "impl" => self.impl_item(cfg_test),
            "struct" => self.struct_item(cfg_test),
            "mod" => self.mod_item(cfg_test),
            "trait" => self.trait_item(cfg_test),
            "enum" | "union" => {
                // name, generics, optional where, then `{ … }` body.
                self.bump();
                self.bump(); // name
                if self.at_punct('<') {
                    self.skip_generics();
                }
                while !self.at_end() && !self.at_punct('{') && !self.at_punct(';') {
                    if self.at_punct('<') {
                        self.skip_generics();
                    } else {
                        self.bump();
                    }
                }
                if self.at_punct('{') {
                    self.skip_balanced('{', '}');
                } else {
                    self.eat_punct(';');
                }
                Item::Skipped
            }
            "macro_rules" => {
                self.bump();
                self.eat_punct('!');
                self.bump(); // macro name
                self.skip_balanced('{', '}');
                Item::Skipped
            }
            "use" | "static" | "type" | "const" | "extern" => {
                self.skip_until_semi();
                Item::Skipped
            }
            _ => {
                // Item-level macro invocation (`thread_local! { … }`) or
                // something unmodeled: consume one balanced chunk.
                if t.kind == TokenKind::Ident {
                    self.bump();
                    while self.eat_op("::") {
                        self.bump();
                    }
                    if self.eat_punct('!') {
                        match self.cur().map(|t| t.text.as_str()) {
                            Some("{") => self.skip_balanced('{', '}'),
                            Some("(") => {
                                self.skip_balanced('(', ')');
                                self.eat_punct(';');
                            }
                            Some("[") => {
                                self.skip_balanced('[', ']');
                                self.eat_punct(';');
                            }
                            _ => {}
                        }
                        return Item::Skipped;
                    }
                    return Item::Skipped;
                }
                self.bump();
                Item::Skipped
            }
        }
    }

    /// Consumes to a depth-0 `;` (brace/paren/bracket aware), eating it.
    fn skip_until_semi(&mut self) {
        let (mut par, mut brk, mut brc) = (0i32, 0i32, 0i32);
        while let Some(t) = self.cur() {
            match punct_text(t) {
                "(" => par += 1,
                ")" => par -= 1,
                "[" => brk += 1,
                "]" => brk -= 1,
                "{" => brc += 1,
                "}" => {
                    if brc == 0 {
                        return; // stray close belongs to the caller
                    }
                    brc -= 1;
                }
                ";" if par == 0 && brk == 0 && brc == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    fn fn_item(&mut self, cfg_test: bool) -> FnItem {
        let (line, col) = self.pos_of_cur();
        self.bump(); // `fn`
        let name = match self.cur() {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => String::new(),
        };
        if self.at_punct('<') {
            self.skip_generics();
        }
        let params = self.fn_params();
        let ret = if self.eat_op("->") {
            self.type_tokens_until(&['{', ';'], true)
        } else {
            Vec::new()
        };
        if self.at_ident("where") {
            while !self.at_end() && !self.at_punct('{') && !self.at_punct(';') {
                if self.at_punct('<') {
                    self.skip_generics();
                } else {
                    self.bump();
                }
            }
        }
        let body = if self.at_punct('{') {
            Some(self.block())
        } else {
            self.eat_punct(';');
            None
        };
        FnItem { name, params, ret, body, cfg_test, line, col }
    }

    fn fn_params(&mut self) -> Vec<Param> {
        let mut params = Vec::new();
        if !self.eat_punct('(') {
            return params;
        }
        while !self.at_end() && !self.at_punct(')') {
            self.attrs();
            let toks = self.type_tokens_until(&[','], false);
            if !toks.is_empty() {
                params.push(split_param(&toks));
            }
            self.eat_punct(',');
        }
        self.eat_punct(')');
        params
    }

    fn impl_item(&mut self, cfg_test: bool) -> Item {
        self.bump(); // `impl`
        if self.at_punct('<') {
            self.skip_generics();
        }
        // `impl Type { … }` or `impl Trait for Type { … }`: the
        // implementing type is the last depth-0 ident, restarting the
        // scan after a depth-0 `for`.
        let mut type_name = String::new();
        let mut ang = 0i32;
        while let Some(t) = self.cur() {
            if ang == 0 && (t.is_punct('{') || t.is_ident("where")) {
                break;
            }
            if self.at_op("->") {
                self.bump();
                self.bump();
                continue;
            }
            if t.is_punct('<') {
                ang += 1;
            } else if t.is_punct('>') {
                ang -= 1;
            } else if ang == 0 && t.kind == TokenKind::Ident {
                if t.text == "for" {
                    type_name.clear();
                } else if t.text != "dyn" && t.text != "mut" {
                    type_name = t.text.clone();
                }
            }
            self.bump();
        }
        if self.at_ident("where") {
            while !self.at_end() && !self.at_punct('{') {
                if self.at_punct('<') {
                    self.skip_generics();
                } else {
                    self.bump();
                }
            }
        }
        if !self.eat_punct('{') {
            return Item::Skipped;
        }
        let items = self.items_until(cfg_test, true);
        Item::Impl(ImplItem { type_name, items })
    }

    fn struct_item(&mut self, cfg_test: bool) -> Item {
        self.bump(); // `struct`
        let name = match self.cur() {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => return Item::Skipped,
        };
        if self.at_punct('<') {
            self.skip_generics();
        }
        if self.at_ident("where") {
            while !self.at_end() && !self.at_punct('{') && !self.at_punct(';') {
                if self.at_punct('<') {
                    self.skip_generics();
                } else {
                    self.bump();
                }
            }
        }
        let mut fields = Vec::new();
        if self.at_punct('(') {
            // Tuple struct: field types are anonymous; skip.
            self.skip_balanced('(', ')');
            self.eat_punct(';');
        } else if self.eat_punct('{') {
            while !self.at_end() && !self.at_punct('}') {
                self.attrs();
                self.visibility();
                let (line, col) = self.pos_of_cur();
                let fname = match self.cur() {
                    Some(t) if t.kind == TokenKind::Ident => {
                        let n = t.text.clone();
                        self.bump();
                        n
                    }
                    _ => {
                        self.bump();
                        continue;
                    }
                };
                if !self.eat_punct(':') {
                    continue;
                }
                let ty = self.type_tokens_until(&[','], false);
                fields.push(FieldDef { name: fname, ty, line, col });
                self.eat_punct(',');
            }
            self.eat_punct('}');
        } else {
            self.eat_punct(';');
        }
        Item::Struct(StructItem { name, fields, cfg_test })
    }

    fn mod_item(&mut self, cfg_test: bool) -> Item {
        self.bump(); // `mod`
        let name = match self.cur() {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => return Item::Skipped,
        };
        if self.eat_punct(';') {
            return Item::Skipped;
        }
        if !self.eat_punct('{') {
            return Item::Skipped;
        }
        let items = self.items_until(cfg_test, true);
        Item::Mod(ModItem { name, items, cfg_test })
    }

    fn trait_item(&mut self, cfg_test: bool) -> Item {
        self.bump(); // `trait`
        let name = match self.cur() {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => return Item::Skipped,
        };
        while !self.at_end() && !self.at_punct('{') {
            if self.at_punct('<') {
                self.skip_generics();
            } else {
                self.bump();
            }
        }
        if !self.eat_punct('{') {
            return Item::Skipped;
        }
        let items = self.items_until(cfg_test, true);
        Item::Trait(TraitItem { name, items })
    }

    // ------------------------------------------------------------------
    // Blocks and statements
    // ------------------------------------------------------------------

    /// Parses a `{ … }` block, cursor on `{`.
    fn block(&mut self) -> Block {
        let mut stmts = Vec::new();
        if !self.eat_punct('{') {
            return Block { stmts };
        }
        while !self.at_end() && !self.at_punct('}') {
            let before = self.pos;
            if self.eat_punct(';') {
                continue;
            }
            if self.at_ident("let") {
                stmts.push(self.let_stmt());
            } else if self.at_item_start() {
                stmts.push(Stmt::Item(self.item(false)));
            } else {
                let e = self.expr(false);
                self.eat_punct(';');
                stmts.push(Stmt::Expr(e));
            }
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_punct('}');
        Block { stmts }
    }

    fn let_stmt(&mut self) -> Stmt {
        let (line, _) = self.pos_of_cur();
        self.bump(); // `let`
        let pat = self.let_pattern();
        if self.eat_punct(':') {
            self.type_tokens_until(&['=', ';'], false);
        }
        let init = if self.at_punct('=') && !self.at_op("==") {
            self.bump();
            Some(self.expr(false))
        } else {
            None
        };
        let else_block = if self.eat_ident("else") {
            Some(self.block())
        } else {
            None
        };
        self.eat_punct(';');
        Stmt::Let { pat, init, else_block, line }
    }

    /// Parses a `let` pattern: a single binding stays identifiable,
    /// anything else collapses to [`Pat::Other`].
    fn let_pattern(&mut self) -> Pat {
        while self.at_ident("mut") || self.at_ident("ref") {
            self.bump();
        }
        if let Some(t) = self.cur() {
            let double_colon = self.peek(1).is_some_and(|n| n.is_punct(':'))
                && self.peek(2).is_some_and(|n| n.is_punct(':'));
            if t.kind == TokenKind::Ident
                && !double_colon
                && self.peek(1).is_some_and(|n| {
                    n.is_punct(':') || n.is_punct('=') || n.is_punct(';') || n.is_ident("else")
                })
            {
                let name = t.text.clone();
                self.bump();
                return Pat::Ident(name);
            }
        }
        // Destructuring or other pattern: skip to `:`, `=`, or `;`.
        let (mut par, mut brk, mut brc) = (0i32, 0i32, 0i32);
        while let Some(t) = self.cur() {
            if par == 0
                && brk == 0
                && brc == 0
                && ((t.is_punct(':') && !self.at_op("::"))
                    || (t.is_punct('=') && !self.at_op("=="))
                    || t.is_punct(';'))
            {
                break;
            }
            match punct_text(t) {
                "(" => par += 1,
                ")" => par -= 1,
                "[" => brk += 1,
                "]" => brk -= 1,
                "{" => brc += 1,
                "}" => brc -= 1,
                ":" if self.at_op("::") => {
                    self.bump();
                }
                _ => {}
            }
            self.bump();
        }
        Pat::Other
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Parses one expression. `no_struct` suppresses struct-literal
    /// parsing so `if cond { … }` does not read `cond {` as a literal.
    fn expr(&mut self, no_struct: bool) -> Expr {
        let lhs = self.unary(no_struct);
        self.binary_tail(lhs, no_struct)
    }

    /// Folds a run of binary operators / assignments onto `lhs`.
    fn binary_tail(&mut self, mut lhs: Expr, no_struct: bool) -> Expr {
        loop {
            let (line, col) = (lhs.line, lhs.col);
            // Assignment (plain or compound).
            let compound = ['+', '-', '*', '/', '%', '^', '&', '|']
                .iter()
                .find(|&&c| self.at_punct(c) && self.joint(0) && self.peek(1).is_some_and(|n| n.is_punct('=')))
                .copied();
            if self.at_punct('=') && !self.at_op("==") && !self.at_op("=>") {
                self.bump();
                let value = self.expr(no_struct);
                lhs = Expr::new(
                    line,
                    col,
                    ExprKind::Assign { target: Box::new(lhs), value: Box::new(value) },
                );
                continue;
            }
            if let Some(_c) = compound {
                // `x += e` — but `&&`/`||` lookalikes were excluded by
                // requiring the *next* token to be `=`.
                self.bump();
                self.bump();
                let value = self.expr(no_struct);
                lhs = Expr::new(
                    line,
                    col,
                    ExprKind::Assign { target: Box::new(lhs), value: Box::new(value) },
                );
                continue;
            }
            // Range: rhs is optional (`start..`).
            if self.at_op("..") {
                if !self.eat_op("..=") {
                    self.eat_op("..");
                }
                if self.expr_can_start(no_struct) {
                    let rhs = self.unary(no_struct);
                    let rhs = self.postfix_only(rhs);
                    lhs = Expr::new(
                        line,
                        col,
                        ExprKind::Binary { lhs: Box::new(lhs), rhs: Box::new(rhs) },
                    );
                } else {
                    lhs = Expr::new(
                        line,
                        col,
                        ExprKind::Other(vec![lhs]),
                    );
                }
                continue;
            }
            // Two-char then one-char binary operators.
            let two = ["&&", "||", "==", "!=", "<=", ">=", "<<", ">>"]
                .iter()
                .find(|op| self.at_op(op))
                .copied();
            let one = ['+', '-', '*', '/', '%', '^', '&', '|', '<', '>'];
            if let Some(op) = two {
                self.eat_op(op);
            } else if one.iter().any(|&c| self.at_punct(c)) && !self.at_op("=>") {
                self.bump();
            } else {
                return lhs;
            }
            let rhs = self.unary(no_struct);
            let rhs = self.postfix_only(rhs);
            lhs = Expr::new(line, col, ExprKind::Binary { lhs: Box::new(lhs), rhs: Box::new(rhs) });
        }
    }

    /// Whether the current token can begin an expression (used for
    /// optional range ends and `return`/`break` values).
    fn expr_can_start(&self, _no_struct: bool) -> bool {
        match self.cur() {
            None => false,
            Some(t) => !(t.is_punct(';')
                || t.is_punct(',')
                || t.is_punct(')')
                || t.is_punct(']')
                || t.is_punct('}')
                || t.is_punct('{')
                || t.is_punct('=')),
        }
    }

    /// Prefix operators + a primary + its postfix chain.
    fn unary(&mut self, no_struct: bool) -> Expr {
        let (line, col) = self.pos_of_cur();
        if self.at_punct('&') && !self.at_op("&&") || self.at_op("&&") {
            // `&&x` in expression position is two nested refs.
            self.bump();
            self.eat_ident("mut");
            let inner = self.unary(no_struct);
            return Expr::new(line, col, ExprKind::Ref(Box::new(inner)));
        }
        if self.at_punct('*') || self.at_punct('!') || self.at_punct('-') {
            self.bump();
            let inner = self.unary(no_struct);
            return Expr::new(line, col, ExprKind::Unary(Box::new(inner)));
        }
        let prim = self.primary(no_struct);
        self.postfix_only(prim)
    }

    /// Applies the postfix chain (`.field`, `.method(…)`, `(…)`, `[…]`,
    /// `?`, `as T`) to an already-parsed expression.
    fn postfix_only(&mut self, mut e: Expr) -> Expr {
        loop {
            let (line, col) = (e.line, e.col);
            if self.at_punct('?') {
                self.bump();
                continue;
            }
            if self.at_ident("as") {
                self.bump();
                self.skip_type_path();
                continue;
            }
            if self.at_punct('.') && !self.at_op("..") {
                self.bump();
                let Some(t) = self.cur() else { return e };
                match t.kind {
                    TokenKind::Ident => {
                        let name = t.text.clone();
                        self.bump();
                        // Turbofish: `.collect::<Vec<_>>()`.
                        if self.at_op("::") {
                            self.eat_op("::");
                            if self.at_punct('<') {
                                self.skip_generics();
                            }
                        }
                        if self.at_punct('(') {
                            let args = self.call_args();
                            e = Expr::new(
                                line,
                                col,
                                ExprKind::MethodCall { recv: Box::new(e), method: name, args },
                            );
                        } else {
                            e = Expr::new(
                                line,
                                col,
                                ExprKind::Field { base: Box::new(e), name },
                            );
                        }
                    }
                    TokenKind::Number => {
                        let name = t.text.clone();
                        self.bump();
                        e = Expr::new(line, col, ExprKind::Field { base: Box::new(e), name });
                    }
                    _ => return e,
                }
                continue;
            }
            if self.at_punct('(') {
                let args = self.call_args();
                e = Expr::new(line, col, ExprKind::Call { callee: Box::new(e), args });
                continue;
            }
            if self.at_punct('[') {
                self.bump();
                let mut children = vec![e];
                while !self.at_end() && !self.at_punct(']') {
                    let before = self.pos;
                    children.push(self.expr(false));
                    self.eat_punct(',');
                    if self.pos == before {
                        self.bump();
                    }
                }
                self.eat_punct(']');
                e = Expr::new(line, col, ExprKind::Other(children));
                continue;
            }
            return e;
        }
    }

    /// Consumes a type after `as` (sigils + path + one generic group).
    fn skip_type_path(&mut self) {
        while self.at_punct('&')
            || self.at_punct('*')
            || self.at_ident("mut")
            || self.at_ident("const")
            || self.at_ident("dyn")
            || self.cur().is_some_and(|t| t.kind == TokenKind::Lifetime)
        {
            self.bump();
        }
        while self.cur().is_some_and(|t| t.kind == TokenKind::Ident) {
            self.bump();
            if self.at_op("::") {
                self.eat_op("::");
                continue;
            }
            break;
        }
        if self.at_punct('<') {
            self.skip_generics();
        }
    }

    /// Parses `( … )` call arguments, cursor on `(`.
    fn call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct('(') {
            return args;
        }
        while !self.at_end() && !self.at_punct(')') {
            let before = self.pos;
            args.push(self.expr(false));
            self.eat_punct(',');
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_punct(')');
        args
    }

    /// A primary expression: literal, path (maybe struct literal or
    /// macro call), group, block, control flow, closure.
    fn primary(&mut self, no_struct: bool) -> Expr {
        let (line, col) = self.pos_of_cur();
        let Some(t) = self.cur() else {
            return Expr::new(line, col, ExprKind::Lit);
        };
        match t.kind {
            TokenKind::Number | TokenKind::Str | TokenKind::CharLit => {
                self.bump();
                Expr::new(line, col, ExprKind::Lit)
            }
            TokenKind::Lifetime => {
                // Loop label `'x: loop { … }` — or a stray lifetime.
                self.bump();
                if self.eat_punct(':') {
                    return self.primary(no_struct);
                }
                Expr::new(line, col, ExprKind::Lit)
            }
            TokenKind::Ident => self.ident_primary(no_struct, line, col),
            TokenKind::Punct => match t.text.chars().next().unwrap_or(' ') {
                '(' => {
                    self.bump();
                    let mut elems = Vec::new();
                    let mut commas = 0usize;
                    while !self.at_end() && !self.at_punct(')') {
                        let before = self.pos;
                        elems.push(self.expr(false));
                        if self.eat_punct(',') {
                            commas += 1;
                        }
                        if self.pos == before {
                            self.bump();
                        }
                    }
                    self.eat_punct(')');
                    if elems.len() == 1 && commas == 0 {
                        elems.remove(0)
                    } else {
                        Expr::new(line, col, ExprKind::Other(elems))
                    }
                }
                '[' => {
                    self.bump();
                    let mut elems = Vec::new();
                    while !self.at_end() && !self.at_punct(']') {
                        let before = self.pos;
                        elems.push(self.expr(false));
                        if !self.eat_punct(',') {
                            self.eat_punct(';');
                        }
                        if self.pos == before {
                            self.bump();
                        }
                    }
                    self.eat_punct(']');
                    Expr::new(line, col, ExprKind::Other(elems))
                }
                '{' => Expr::new(line, col, ExprKind::BlockExpr(self.block())),
                '|' => self.closure(line, col),
                '.' if self.at_op("..") => {
                    // Prefix range `..end` / `..`.
                    if !self.eat_op("..=") {
                        self.eat_op("..");
                    }
                    if self.expr_can_start(no_struct) {
                        let inner = self.unary(no_struct);
                        Expr::new(line, col, ExprKind::Other(vec![inner]))
                    } else {
                        Expr::new(line, col, ExprKind::Lit)
                    }
                }
                _ => {
                    self.bump();
                    Expr::new(line, col, ExprKind::Other(Vec::new()))
                }
            },
        }
    }

    /// Primary starting with an identifier: keyword expression, path,
    /// macro call, or struct literal.
    fn ident_primary(&mut self, no_struct: bool, line: u32, col: u32) -> Expr {
        let text = self.cur().map(|t| t.text.clone()).unwrap_or_default();
        match text.as_str() {
            "if" => self.if_expr(line, col),
            "while" => {
                self.bump();
                self.let_header_if_any();
                let cond = self.expr(true);
                let body = self.block();
                Expr::new(line, col, ExprKind::While { cond: Box::new(cond), body })
            }
            "loop" => {
                self.bump();
                let body = self.block();
                Expr::new(line, col, ExprKind::Loop { body })
            }
            "for" => {
                self.bump();
                // Pattern until depth-0 `in`.
                let (mut par, mut brk) = (0i32, 0i32);
                while let Some(t) = self.cur() {
                    if par == 0 && brk == 0 && t.is_ident("in") {
                        break;
                    }
                    match punct_text(t) {
                        "(" => par += 1,
                        ")" => par -= 1,
                        "[" => brk += 1,
                        "]" => brk -= 1,
                        _ => {}
                    }
                    self.bump();
                }
                self.eat_ident("in");
                let iter = self.expr(true);
                let body = self.block();
                Expr::new(line, col, ExprKind::For { iter: Box::new(iter), body })
            }
            "match" => self.match_expr(line, col),
            "return" => {
                self.bump();
                let value = if self.expr_can_start(no_struct) {
                    Some(Box::new(self.expr(no_struct)))
                } else {
                    None
                };
                Expr::new(line, col, ExprKind::Return(value))
            }
            "break" => {
                self.bump();
                if self.cur().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                    self.bump();
                }
                if self.expr_can_start(no_struct) {
                    // Break-with-value: the value is consumed but its
                    // structure is not preserved (rare, never carries
                    // lock traffic in this workspace).
                    let _ = self.expr(no_struct);
                }
                Expr::new(line, col, ExprKind::Break)
            }
            "continue" => {
                self.bump();
                if self.cur().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                    self.bump();
                }
                Expr::new(line, col, ExprKind::Continue)
            }
            "unsafe" => {
                self.bump();
                Expr::new(line, col, ExprKind::BlockExpr(self.block()))
            }
            "move" => {
                self.bump();
                if self.at_punct('|') {
                    self.closure(line, col)
                } else {
                    // `move` without `|` (async blocks) — treat as block.
                    Expr::new(line, col, ExprKind::BlockExpr(self.block()))
                }
            }
            _ => {
                // Path, then macro call / struct literal / plain path.
                let mut segs = vec![text];
                self.bump();
                while self.at_op("::") {
                    self.eat_op("::");
                    if self.at_punct('<') {
                        self.skip_generics();
                        continue;
                    }
                    if let Some(t) = self.cur() {
                        if t.kind == TokenKind::Ident {
                            segs.push(t.text.clone());
                            self.bump();
                            continue;
                        }
                    }
                    break;
                }
                if self.at_punct('!') && !self.at_op("!=") {
                    self.bump();
                    match self.cur().map(|t| t.text.as_str()) {
                        Some("(") => self.skip_balanced('(', ')'),
                        Some("[") => self.skip_balanced('[', ']'),
                        Some("{") => self.skip_balanced('{', '}'),
                        _ => {}
                    }
                    return Expr::new(line, col, ExprKind::MacroCall(segs));
                }
                if !no_struct && self.at_punct('{') && !is_expr_keyword(segs.last()) {
                    return self.struct_lit(segs, line, col);
                }
                Expr::new(line, col, ExprKind::Path(segs))
            }
        }
    }

    /// Consumes `let <pattern> =` when present (`if let` / `while let`
    /// headers); the scrutinee is parsed by the caller.
    fn let_header_if_any(&mut self) {
        if !self.eat_ident("let") {
            return;
        }
        let (mut par, mut brk, mut brc) = (0i32, 0i32, 0i32);
        while let Some(t) = self.cur() {
            if par == 0 && brk == 0 && brc == 0 && t.is_punct('=') && !self.at_op("==") {
                self.bump();
                return;
            }
            match punct_text(t) {
                "(" => par += 1,
                ")" => par -= 1,
                "[" => brk += 1,
                "]" => brk -= 1,
                "{" => brc += 1,
                "}" => brc -= 1,
                _ => {}
            }
            self.bump();
        }
    }

    fn if_expr(&mut self, line: u32, col: u32) -> Expr {
        self.bump(); // `if`
        self.let_header_if_any();
        let cond = self.expr(true);
        let then = self.block();
        let els = if self.eat_ident("else") {
            let (eline, ecol) = self.pos_of_cur();
            if self.at_ident("if") {
                Some(Box::new(self.if_expr(eline, ecol)))
            } else {
                Some(Box::new(Expr::new(eline, ecol, ExprKind::BlockExpr(self.block()))))
            }
        } else {
            None
        };
        Expr::new(line, col, ExprKind::If { cond: Box::new(cond), then, els })
    }

    fn match_expr(&mut self, line: u32, col: u32) -> Expr {
        self.bump(); // `match`
        let scrutinee = self.expr(true);
        let mut arms = Vec::new();
        if self.eat_punct('{') {
            while !self.at_end() && !self.at_punct('}') {
                let before = self.pos;
                self.attrs();
                // Skip the arm pattern (and any guard) to the `=>`.
                let (mut par, mut brk, mut brc) = (0i32, 0i32, 0i32);
                while let Some(t) = self.cur() {
                    if par == 0 && brk == 0 && brc == 0 && self.at_op("=>") {
                        break;
                    }
                    match punct_text(t) {
                        "(" => par += 1,
                        ")" => par -= 1,
                        "[" => brk += 1,
                        "]" => brk -= 1,
                        "{" => brc += 1,
                        "}" => brc -= 1,
                        _ => {}
                    }
                    self.bump();
                    if par < 0 || brc < 0 {
                        break;
                    }
                }
                if self.eat_op("=>") {
                    arms.push(self.expr(false));
                    self.eat_punct(',');
                }
                if self.pos == before {
                    self.bump();
                }
            }
            self.eat_punct('}');
        }
        Expr::new(
            line,
            col,
            ExprKind::Match { scrutinee: Box::new(scrutinee), arms },
        )
    }

    fn struct_lit(&mut self, segs: Vec<String>, line: u32, col: u32) -> Expr {
        self.eat_punct('{');
        let mut fields = Vec::new();
        while !self.at_end() && !self.at_punct('}') {
            let before = self.pos;
            if self.at_op("..") {
                self.eat_op("..");
                let base = self.expr(false);
                fields.push((String::new(), base));
            } else if self.cur().is_some_and(|t| t.kind == TokenKind::Ident) {
                let (fline, fcol) = self.pos_of_cur();
                let name = self.cur().map(|t| t.text.clone()).unwrap_or_default();
                self.bump();
                if self.eat_punct(':') {
                    fields.push((name, self.expr(false)));
                } else {
                    // Shorthand `Foo { name }`.
                    let value = Expr::new(fline, fcol, ExprKind::Path(vec![name.clone()]));
                    fields.push((name, value));
                }
            }
            self.eat_punct(',');
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_punct('}');
        Expr::new(line, col, ExprKind::StructLit { path: segs.join("::"), fields })
    }

    /// Parses a closure, cursor on the first `|`.
    fn closure(&mut self, line: u32, col: u32) -> Expr {
        self.bump(); // first `|`
        if !self.eat_punct('|') {
            // Non-empty parameter list: skip to the closing `|`.
            let (mut par, mut brk, mut ang) = (0i32, 0i32, 0i32);
            while let Some(t) = self.cur() {
                if par == 0 && brk == 0 && ang == 0 && t.is_punct('|') {
                    self.bump();
                    break;
                }
                match punct_text(t) {
                    "(" => par += 1,
                    ")" => par -= 1,
                    "[" => brk += 1,
                    "]" => brk -= 1,
                    "<" => ang += 1,
                    ">" => ang -= 1,
                    _ => {}
                }
                self.bump();
            }
        }
        if self.eat_op("->") {
            self.type_tokens_until(&['{'], false);
        }
        let body = self.expr(false);
        Expr::new(line, col, ExprKind::Closure { body: Box::new(body) })
    }
}

/// Keywords that can be followed by `{` without being a struct literal.
fn is_expr_keyword(seg: Option<&String>) -> bool {
    matches!(
        seg.map(String::as_str),
        Some("in" | "else" | "await" | "yield" | "do")
    )
}

/// Splits one parameter's token texts into binding name and type.
fn split_param(toks: &[String]) -> Param {
    // Find the top-level `:` separating pattern from type (`::` never
    // appears at the top of a pattern here because `type_tokens_until`
    // keeps tokens flat — scan for a `:` not adjacent to another).
    let mut split = None;
    let mut i = 0;
    while i < toks.len() {
        if toks[i] == ":" {
            if toks.get(i + 1).is_some_and(|t| t == ":") {
                i += 2;
                continue;
            }
            split = Some(i);
            break;
        }
        i += 1;
    }
    match split {
        Some(i) => {
            let pat: Vec<&String> =
                toks[..i].iter().filter(|t| *t != "mut" && *t != "ref").collect();
            let name = if pat.len() == 1 && is_ident_text(pat[0]) {
                pat[0].clone()
            } else {
                "_".to_string()
            };
            Param { name, ty: toks[i + 1..].to_vec() }
        }
        None => {
            // Receiver (`self`, `&self`, `&mut self`, `&'a self`).
            let name = if toks.iter().any(|t| t == "self") {
                "self".to_string()
            } else {
                "_".to_string()
            };
            Param { name, ty: toks.to_vec() }
        }
    }
}

/// The punctuation text of a token, or `""` for non-punct tokens — so
/// depth-tracking loops never mistake a string literal `")"` for a
/// real bracket.
fn punct_text(t: &Token) -> &str {
    if t.kind == TokenKind::Punct {
        t.text.as_str()
    } else {
        ""
    }
}

fn is_ident_text(s: &str) -> bool {
    let mut chars = s.chars();
    chars.next().is_some_and(|c| c.is_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> File {
        parse(&lex(src).tokens)
    }

    fn first_fn(file: &File) -> &FnItem {
        fn find(items: &[Item]) -> Option<&FnItem> {
            for it in items {
                match it {
                    Item::Fn(f) => return Some(f),
                    Item::Impl(i) => {
                        if let Some(f) = find(&i.items) {
                            return Some(f);
                        }
                    }
                    Item::Mod(m) => {
                        if let Some(f) = find(&m.items) {
                            return Some(f);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        find(&file.items).expect("a function")
    }

    fn method_names(e: &Expr, out: &mut Vec<String>) {
        match &e.kind {
            ExprKind::MethodCall { recv, method, args } => {
                method_names(recv, out);
                out.push(method.clone());
                for a in args {
                    method_names(a, out);
                }
            }
            ExprKind::Call { callee, args } => {
                method_names(callee, out);
                for a in args {
                    method_names(a, out);
                }
            }
            ExprKind::Field { base, .. } => method_names(base, out),
            ExprKind::Ref(i) | ExprKind::Unary(i) => method_names(i, out),
            ExprKind::Binary { lhs, rhs } => {
                method_names(lhs, out);
                method_names(rhs, out);
            }
            ExprKind::Assign { target, value } => {
                method_names(target, out);
                method_names(value, out);
            }
            _ => {}
        }
    }

    fn stmt_methods(block: &Block) -> Vec<String> {
        let mut out = Vec::new();
        for s in &block.stmts {
            match s {
                Stmt::Expr(e) => method_names(e, &mut out),
                Stmt::Let { init: Some(e), .. } => method_names(e, &mut out),
                _ => {}
            }
        }
        out
    }

    #[test]
    fn turbofish_in_method_chains() {
        let f = parse_src("fn f(v: Vec<u32>) { v.iter().collect::<Vec<_>>().len(); }");
        let body = first_fn(&f).body.as_ref().expect("body");
        assert_eq!(stmt_methods(body), vec!["iter", "collect", "len"]);
    }

    #[test]
    fn raw_strings_with_fences_stay_literals() {
        let f = parse_src(r####"fn f() { let x = r##"quote " inside"##; x.len(); }"####);
        let body = first_fn(&f).body.as_ref().expect("body");
        assert_eq!(body.stmts.len(), 2);
        match &body.stmts[0] {
            Stmt::Let { pat: Pat::Ident(n), init: Some(e), .. } => {
                assert_eq!(n, "x");
                assert!(matches!(e.kind, ExprKind::Lit));
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn nested_block_comments_inside_expressions() {
        let f = parse_src("fn f(a: u32, b: u32) -> u32 { a + /* one /* two */ still */ b }");
        let body = first_fn(&f).body.as_ref().expect("body");
        match &body.stmts[0] {
            Stmt::Expr(e) => assert!(matches!(e.kind, ExprKind::Binary { .. })),
            other => panic!("expected binary expr, got {other:?}"),
        }
    }

    #[test]
    fn lifetime_vs_char_at_expression_position() {
        let f = parse_src(
            "fn f<'a>(s: &'a str) -> char { let c = 'a'; 's: loop { break 's; } c }",
        );
        let body = first_fn(&f).body.as_ref().expect("body");
        assert!(matches!(
            &body.stmts[0],
            Stmt::Let { pat: Pat::Ident(n), init: Some(e), .. }
                if n == "c" && matches!(e.kind, ExprKind::Lit)
        ));
        assert!(matches!(
            &body.stmts[1],
            Stmt::Expr(e) if matches!(e.kind, ExprKind::Loop { .. })
        ));
    }

    #[test]
    fn struct_literal_vs_control_flow_headers() {
        let f = parse_src(
            "fn f(x: bool) -> P { if x { return P { a: 1 }; } while x { } P { a: 2 } }",
        );
        let body = first_fn(&f).body.as_ref().expect("body");
        assert!(matches!(
            &body.stmts[0],
            Stmt::Expr(e) if matches!(e.kind, ExprKind::If { .. })
        ));
        assert!(matches!(
            &body.stmts[2],
            Stmt::Expr(e) if matches!(e.kind, ExprKind::StructLit { .. })
        ));
    }

    #[test]
    fn guard_chain_with_tuple_field_assignment() {
        let f = parse_src(
            "fn f() { seq = cv.wait_timeout(seq, TICK).unwrap_or_else(E::into_inner).0; }",
        );
        let body = first_fn(&f).body.as_ref().expect("body");
        let Stmt::Expr(e) = &body.stmts[0] else { panic!("expr stmt") };
        let ExprKind::Assign { value, .. } = &e.kind else { panic!("assign") };
        let ExprKind::Field { base, name } = &value.kind else { panic!("tuple field") };
        assert_eq!(name, "0");
        assert!(matches!(base.kind, ExprKind::MethodCall { ref method, .. } if method == "unwrap_or_else"));
    }

    #[test]
    fn impl_and_cfg_test_propagation() {
        let f = parse_src(
            "impl Server { fn go(&self) {} }\n#[cfg(test)]\nmod tests { fn t() {} }",
        );
        let Item::Impl(i) = &f.items[0] else { panic!("impl") };
        assert_eq!(i.type_name, "Server");
        let Item::Fn(go) = &i.items[0] else { panic!("fn") };
        assert_eq!(go.name, "go");
        assert!(!go.cfg_test);
        assert_eq!(go.params[0].name, "self");
        let Item::Mod(m) = &f.items[1] else { panic!("mod") };
        assert!(m.cfg_test);
        let Item::Fn(t) = &m.items[0] else { panic!("fn in mod") };
        assert!(t.cfg_test);
    }

    #[test]
    fn struct_fields_capture_types() {
        let f = parse_src(
            "pub struct Shared { pub jobs: Mutex<BTreeMap<u64, Job>>, cv: Condvar }",
        );
        let Item::Struct(s) = &f.items[0] else { panic!("struct") };
        assert_eq!(s.name, "Shared");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name, "jobs");
        assert_eq!(s.fields[0].ty[0], "Mutex");
        assert_eq!(s.fields[1].ty, vec!["Condvar"]);
    }

    #[test]
    fn closures_and_match_arms_are_walkable() {
        let f = parse_src(
            "fn f(o: Option<u32>) { match o { Some(v) => g(v), None => h(), } \
             let c = |x: u32| x.checked_add(1); }",
        );
        let body = first_fn(&f).body.as_ref().expect("body");
        let Stmt::Expr(m) = &body.stmts[0] else { panic!("match stmt") };
        let ExprKind::Match { arms, .. } = &m.kind else { panic!("match") };
        assert_eq!(arms.len(), 2);
        let Stmt::Let { init: Some(c), .. } = &body.stmts[1] else { panic!("let") };
        let ExprKind::Closure { body: cb } = &c.kind else { panic!("closure") };
        assert!(matches!(cb.kind, ExprKind::MethodCall { ref method, .. } if method == "checked_add"));
    }

    #[test]
    fn let_else_and_labels_do_not_derail() {
        let f = parse_src(
            "fn f(o: Option<u32>) -> u32 { let Some(v) = o else { return 0; }; \
             'outer: for i in 0..v { if i > 2 { break 'outer; } } v }",
        );
        let body = first_fn(&f).body.as_ref().expect("body");
        assert!(matches!(
            &body.stmts[0],
            Stmt::Let { pat: Pat::Other, else_block: Some(_), .. }
        ));
        assert!(matches!(
            &body.stmts[1],
            Stmt::Expr(e) if matches!(e.kind, ExprKind::For { .. })
        ));
    }

    #[test]
    fn macro_bodies_are_opaque_but_positioned() {
        let f = parse_src("fn f() { assert_eq!(a.lock(), b); g(); }");
        let body = first_fn(&f).body.as_ref().expect("body");
        assert!(matches!(
            &body.stmts[0],
            Stmt::Expr(e) if matches!(&e.kind, ExprKind::MacroCall(segs) if segs[0] == "assert_eq")
        ));
        assert!(matches!(
            &body.stmts[1],
            Stmt::Expr(e) if matches!(&e.kind, ExprKind::Call { .. })
        ));
    }

    #[test]
    fn workspace_files_parse_without_panicking() {
        // The parser must at minimum survive its own source.
        let src = include_str!("parser.rs");
        let file = parse_src(src);
        assert!(!file.items.is_empty());
    }
}
