//! The four repo-specific rules, run over a file's token stream.
//!
//! | ID | name        | protects |
//! |----|-------------|----------|
//! | D1 | hash-order  | golden tables from hash-iteration nondeterminism |
//! | D2 | wall-clock  | trial outcomes from wall-clock / ambient entropy |
//! | P1 | panic       | library callers from undocumented panics |
//! | C1 | lossy-cast  | hot-path arithmetic from silent truncation |

use crate::config::Config;
use crate::lexer::{lex, AllowMarker, Token, TokenKind};

/// Where a file sits in the workspace, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source under `src/` (rules apply in full).
    LibSrc,
    /// Binary source (`src/bin/**`, `src/main.rs`): D1/D2 apply, P1/C1 do
    /// not — CLI setup code may panic on bad invocations.
    BinSrc,
    /// Integration tests, benches, examples: only D2 paths outside the
    /// configured allowances apply; panics and hash containers are fine.
    TestCode,
}

/// Classification of one source file.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Short crate name (`retention`, `bench`, …; the root façade is
    /// `reaper`).
    pub crate_name: String,
    pub kind: FileKind,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule ID (`D1`, `D2`, `P1`, `C1`).
    pub rule_id: &'static str,
    /// Rule name as used in allow markers (`hash-order`, …).
    pub rule_name: &'static str,
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    pub help: String,
    /// Secondary locations / context, rendered as `= note:` lines (L1
    /// carries the second lock path of an inversion here).
    pub notes: Vec<String>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "error[{}/{}]: {}",
            self.rule_id, self.rule_name, self.message
        )?;
        writeln!(f, "  --> {}:{}:{}", self.file, self.line, self.col)?;
        for note in &self.notes {
            writeln!(f, "  = note: {note}")?;
        }
        write!(f, "  = help: {}", self.help)
    }
}

/// Integer-ish cast targets C1 flags. `usize`/`u64` sources routinely feed
/// these, and float → int casts silently truncate; widening casts are
/// over-approximated and need a marker or a checked helper.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize",
    "i8", "i16", "i32", "i64", "i128", "isize",
    "f32",
];

/// Macros that unconditionally panic at runtime when reached.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Keywords that can directly precede `[` in type or expression position
/// without forming an index expression (`&mut [T]`, `return [x]`, …).
const KEYWORDS_BEFORE_BRACKET: &[&str] = &[
    "mut", "dyn", "in", "as", "impl", "where", "return", "break", "else",
    "match", "move", "ref", "const", "static", "if", "unsafe", "let",
    "for", "while", "loop", "continue", "await", "yield", "box", "use",
];

/// True when `marker` suppresses a `rule_name` finding at `line`: a
/// marker covers its own line and the line directly below (so markers
/// can sit above long expressions).
pub fn marker_covers(marker: &AllowMarker, rule_name: &str, line: u32) -> bool {
    marker.rule == rule_name && (marker.line == line || marker.line + 1 == line)
}

/// Runs every applicable per-file rule, honoring `// lint: allow`
/// markers inline.
pub fn check_file(
    rel_path: &str,
    source: &str,
    class: &FileClass,
    cfg: &Config,
) -> Vec<Diagnostic> {
    let markers = lex(source).markers;
    let mut out = check_file_raw(rel_path, source, class, cfg);
    out.retain(|d| !markers.iter().any(|m| marker_covers(m, d.rule_name, d.line)));
    out
}

/// Runs every applicable per-file rule and returns *all* findings,
/// ignoring allow markers. Callers that need marker-usage accounting
/// (the workspace runner's stale-allowance rule) filter centrally.
pub fn check_file_raw(
    rel_path: &str,
    source: &str,
    class: &FileClass,
    cfg: &Config,
) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let tokens = &lexed.tokens;
    let test_mask = test_region_mask(tokens);
    let ctx = Ctx {
        rel_path,
        class,
        cfg,
        tokens,
        test_mask: &test_mask,
    };

    let mut out = Vec::new();
    ctx.rule_hash_order(&mut out);
    ctx.rule_wall_clock(&mut out);
    ctx.rule_panic(&mut out);
    ctx.rule_lossy_cast(&mut out);
    out
}

struct Ctx<'a> {
    rel_path: &'a str,
    class: &'a FileClass,
    cfg: &'a Config,
    tokens: &'a [Token],
    /// Parallel to `tokens`: true inside `#[cfg(test)]` items.
    test_mask: &'a [bool],
}

impl Ctx<'_> {
    fn emit(
        &self,
        out: &mut Vec<Diagnostic>,
        rule_id: &'static str,
        rule_name: &'static str,
        tok: &Token,
        message: String,
        help: String,
    ) {
        out.push(Diagnostic {
            rule_id,
            rule_name,
            file: self.rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            help,
            notes: Vec::new(),
        });
    }

    /// D1: no `HashMap`/`HashSet` in output-affecting crates.
    fn rule_hash_order(&self, out: &mut Vec<Diagnostic>) {
        if self.class.kind == FileKind::TestCode {
            return;
        }
        if !self.cfg.hash_order_crates.contains(&self.class.crate_name) {
            return;
        }
        for (i, tok) in self.tokens.iter().enumerate() {
            if self.test_mask[i] || tok.kind != TokenKind::Ident {
                continue;
            }
            if tok.text == "HashMap" || tok.text == "HashSet" {
                let btree = if tok.text == "HashMap" { "BTreeMap" } else { "BTreeSet" };
                self.emit(
                    out,
                    "D1",
                    "hash-order",
                    tok,
                    format!(
                        "`{}` in output-affecting crate `{}`: hash iteration \
                         order is nondeterministic across processes",
                        tok.text, self.class.crate_name
                    ),
                    format!(
                        "use `{btree}` (or drain through a sort), or justify with \
                         `// lint: allow(hash-order) <reason>`"
                    ),
                );
            }
        }
    }

    /// D2: no wall-clock or ambient-entropy reads outside allowed files.
    fn rule_wall_clock(&self, out: &mut Vec<Diagnostic>) {
        if self
            .cfg
            .wall_clock_allow_files
            .iter()
            .any(|f| f == self.rel_path)
        {
            return;
        }
        let parsed_paths: Vec<Vec<&str>> = self
            .cfg
            .wall_clock_banned_paths
            .iter()
            .map(|p| p.split("::").collect())
            .collect();
        for (i, tok) in self.tokens.iter().enumerate() {
            if self.test_mask[i] || tok.kind != TokenKind::Ident {
                continue;
            }
            if self.cfg.wall_clock_banned.contains(&tok.text) {
                self.emit(
                    out,
                    "D2",
                    "wall-clock",
                    tok,
                    format!(
                        "`{}` is an ambient-entropy source; trial outcomes must \
                         be pure functions of (config, seed)",
                        tok.text
                    ),
                    "thread explicit seeds / simulated clocks instead, or justify \
                     with `// lint: allow(wall-clock) <reason>`"
                        .to_string(),
                );
                continue;
            }
            for path in &parsed_paths {
                if self.path_matches_at(i, path) {
                    self.emit(
                        out,
                        "D2",
                        "wall-clock",
                        tok,
                        format!(
                            "`{}` reads the wall clock; timing belongs in the \
                             conformance binary and benches only",
                            path.join("::")
                        ),
                        "pass elapsed time in explicitly, or justify with \
                         `// lint: allow(wall-clock) <reason>`"
                            .to_string(),
                    );
                }
            }
        }
    }

    /// True when tokens at `i` spell `seg0 :: seg1 :: …`.
    fn path_matches_at(&self, i: usize, segments: &[&str]) -> bool {
        let mut idx = i;
        for (si, seg) in segments.iter().enumerate() {
            if si > 0 {
                if !(self.tok(idx).is_some_and(|t| t.is_punct(':'))
                    && self.tok(idx + 1).is_some_and(|t| t.is_punct(':')))
                {
                    return false;
                }
                idx += 2;
            }
            if !self.tok(idx).is_some_and(|t| t.is_ident(seg)) {
                return false;
            }
            idx += 1;
        }
        true
    }

    fn tok(&self, i: usize) -> Option<&Token> {
        self.tokens.get(i)
    }

    /// P1: no undocumented panic sites in library code.
    fn rule_panic(&self, out: &mut Vec<Diagnostic>) {
        if self.class.kind != FileKind::LibSrc {
            return;
        }
        let index_checked = self
            .cfg
            .panic_index_crates
            .contains(&self.class.crate_name);
        for (i, tok) in self.tokens.iter().enumerate() {
            if self.test_mask[i] {
                continue;
            }
            // `.unwrap()`
            if tok.is_punct('.')
                && self.tok(i + 1).is_some_and(|t| t.is_ident("unwrap"))
                && self.tok(i + 2).is_some_and(|t| t.is_punct('('))
                && self.tok(i + 3).is_some_and(|t| t.is_punct(')'))
            {
                let at = self.tok(i + 1).unwrap_or(tok);
                self.emit(
                    out,
                    "P1",
                    "panic",
                    at,
                    "`.unwrap()` in library code".to_string(),
                    format!(
                        "return a Result, use `.expect(\"{}...\")` for a \
                         documented invariant, or justify with \
                         `// lint: allow(panic) <reason>`",
                        self.cfg.panic_expect_prefix
                    ),
                );
            }
            // `.expect(` without the documented-invariant message prefix.
            if tok.is_punct('.')
                && self.tok(i + 1).is_some_and(|t| t.is_ident("expect"))
                && self.tok(i + 2).is_some_and(|t| t.is_punct('('))
            {
                let documented = self.tok(i + 3).is_some_and(|t| {
                    t.kind == TokenKind::Str
                        && t.text.starts_with(&self.cfg.panic_expect_prefix)
                });
                if !documented {
                    let at = self.tok(i + 1).unwrap_or(tok);
                    self.emit(
                        out,
                        "P1",
                        "panic",
                        at,
                        "`.expect()` without a documented-invariant message"
                            .to_string(),
                        format!(
                            "start the message with \"{}\" stating why this \
                             cannot fail, or justify with \
                             `// lint: allow(panic) <reason>`",
                            self.cfg.panic_expect_prefix
                        ),
                    );
                }
            }
            // `panic!` / `todo!` / `unimplemented!`
            if tok.kind == TokenKind::Ident
                && PANIC_MACROS.contains(&tok.text.as_str())
                && self.tok(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                self.emit(
                    out,
                    "P1",
                    "panic",
                    tok,
                    format!("`{}!` in library code", tok.text),
                    "return a Result (callers cannot recover from a panic), or \
                     justify with `// lint: allow(panic) <reason>`"
                        .to_string(),
                );
            }
            // Slice indexing `expr[…]` in the index-checked crates.
            if index_checked
                && tok.is_punct('[')
                && i > 0
                && self.tok(i - 1).is_some_and(|p| {
                    (p.kind == TokenKind::Ident
                        && !KEYWORDS_BEFORE_BRACKET.contains(&p.text.as_str()))
                        || p.is_punct(')')
                        || p.is_punct(']')
                })
                // `name!` `[` is a macro invocation with bracket delimiters
                // (e.g. `vec![…]`), not an index.
                && !(self.tok(i - 1).map(|p| p.kind) == Some(TokenKind::Ident)
                    && i >= 2
                    && self.tok(i - 2).is_some_and(|p| p.is_punct('!')))
            {
                self.emit(
                    out,
                    "P1",
                    "panic",
                    tok,
                    "slice-index expression can panic on out-of-bounds"
                        .to_string(),
                    "use `.get()`/iterators, or justify the bounds invariant \
                     with `// lint: allow(panic) <reason>`"
                        .to_string(),
                );
            }
        }
    }

    /// C1: no bare `as` integer casts in hot-path crates.
    fn rule_lossy_cast(&self, out: &mut Vec<Diagnostic>) {
        if self.class.kind != FileKind::LibSrc {
            return;
        }
        if !self.cfg.lossy_cast_crates.contains(&self.class.crate_name) {
            return;
        }
        for (i, tok) in self.tokens.iter().enumerate() {
            if self.test_mask[i] || !tok.is_ident("as") {
                continue;
            }
            let Some(ty) = self.tok(i + 1) else { continue };
            if ty.kind == TokenKind::Ident && INT_TYPES.contains(&ty.text.as_str()) {
                self.emit(
                    out,
                    "C1",
                    "lossy-cast",
                    tok,
                    format!(
                        "bare `as {}` cast in a hot-path crate can silently \
                         truncate or wrap",
                        ty.text
                    ),
                    "use `try_from`/a checked helper (`reaper_exec::num`), or \
                     justify with `// lint: allow(lossy-cast) <reason>`"
                        .to_string(),
                );
            }
        }
    }
}

/// Computes which tokens sit inside `#[cfg(test)]` items (typically the
/// `mod tests { … }` block). Attributes between the `cfg(test)` and the
/// item are skipped; the region ends at the matching close brace, or at a
/// `;` that appears before any brace opens.
pub fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Find the end of this attribute's `]`.
            let attr_end = match matching_close(tokens, i + 1, '[', ']') {
                Some(e) => e,
                None => break,
            };
            // Walk past any further attributes to the item, then to its
            // opening brace (or terminating semicolon).
            let mut j = attr_end + 1;
            while tokens.get(j).is_some_and(|t| t.is_punct('#')) {
                match matching_close(tokens, j + 1, '[', ']') {
                    Some(e) => j = e + 1,
                    None => break,
                }
            }
            let mut k = j;
            let mut end = tokens.len();
            while k < tokens.len() {
                let t = &tokens[k];
                if t.is_punct(';') {
                    end = k;
                    break;
                }
                if t.is_punct('{') {
                    end = matching_close(tokens, k, '{', '}').unwrap_or(tokens.len() - 1);
                    break;
                }
                k += 1;
            }
            for m in mask.iter_mut().take((end + 1).min(tokens.len())).skip(i) {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// True when tokens at `i` start `#[cfg(` … `test` … `)]`.
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    if !(tokens.get(i).is_some_and(|t| t.is_punct('#'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg")))
    {
        return false;
    }
    let Some(end) = matching_close(tokens, i + 1, '[', ']') else {
        return false;
    };
    tokens[i + 2..end].iter().any(|t| t.is_ident("test"))
}

/// Given `tokens[open_at]` == `open`, returns the index of the matching
/// `close`.
fn matching_close(
    tokens: &[Token],
    open_at: usize,
    open: char,
    close: char,
) -> Option<usize> {
    if !tokens.get(open_at)?.is_punct(open) {
        return None;
    }
    let mut depth = 0i64;
    for (k, t) in tokens.iter().enumerate().skip(open_at) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_for(crate_name: &str) -> Config {
        Config {
            hash_order_crates: vec![crate_name.to_string()],
            panic_index_crates: vec![crate_name.to_string()],
            lossy_cast_crates: vec![crate_name.to_string()],
            ..Config::default()
        }
    }

    fn lib_findings(src: &str) -> Vec<Diagnostic> {
        let class = FileClass { crate_name: "demo".into(), kind: FileKind::LibSrc };
        check_file("crates/demo/src/lib.rs", src, &class, &cfg_for("demo"))
    }

    fn rule_ids(src: &str) -> Vec<&'static str> {
        lib_findings(src).into_iter().map(|d| d.rule_id).collect()
    }

    #[test]
    fn d1_flags_hash_containers() {
        assert_eq!(rule_ids("use std::collections::HashMap;"), vec!["D1"]);
        assert_eq!(rule_ids("let s: HashSet<u64> = HashSet::new();").len(), 2);
    }

    #[test]
    fn d1_respects_allow_marker_and_tests() {
        let src = "// lint: allow(hash-order) membership only\n\
                   use std::collections::HashMap;\n";
        assert!(rule_ids(src).is_empty());
        let src = "#[cfg(test)]\nmod tests { use std::collections::HashMap; }";
        assert!(rule_ids(src).is_empty());
    }

    #[test]
    fn d2_flags_clock_and_rng_sources() {
        assert_eq!(rule_ids("let t = Instant::now();"), vec!["D2"]);
        assert_eq!(rule_ids("use std::time::SystemTime;"), vec!["D2"]);
        assert_eq!(rule_ids("let mut r = thread_rng();"), vec!["D2"]);
        // A bare `Instant` type annotation is fine — only `::now` reads.
        assert!(rule_ids("fn f(start: Instant) {}").is_empty());
    }

    #[test]
    fn p1_flags_unwrap_and_bare_expect_but_not_invariants() {
        assert_eq!(rule_ids("let x = y.unwrap();"), vec!["P1"]);
        assert_eq!(rule_ids("let x = y.expect(\"oops\");"), vec!["P1"]);
        assert!(rule_ids("let x = y.expect(\"invariant: y was just inserted\");")
            .is_empty());
        assert_eq!(rule_ids("panic!(\"boom\");"), vec!["P1"]);
        assert_eq!(rule_ids("todo!()"), vec!["P1"]);
    }

    #[test]
    fn p1_flags_indexing_only_in_configured_crates() {
        assert_eq!(rule_ids("let x = v[0];"), vec!["P1"]);
        assert!(rule_ids("let x = vec![0];").is_empty());
        assert!(rule_ids("let x: [u8; 4] = [0; 4];").is_empty());
        let class = FileClass { crate_name: "other".into(), kind: FileKind::LibSrc };
        let out = check_file("crates/other/src/lib.rs", "let x = v[0];", &class, &cfg_for("demo"));
        assert!(out.is_empty());
    }

    #[test]
    fn c1_flags_bare_int_casts() {
        assert_eq!(rule_ids("let x = y as u32;"), vec!["C1"]);
        assert!(rule_ids("let x = y as f64;").is_empty());
        let src = "let x = y as u32; // lint: allow(lossy-cast) y < 2^20 by construction\n";
        assert!(rule_ids(src).is_empty());
    }

    #[test]
    fn bin_and_test_files_relax_p1_c1() {
        let cfg = cfg_for("demo");
        let bin = FileClass { crate_name: "demo".into(), kind: FileKind::BinSrc };
        let out = check_file(
            "crates/demo/src/bin/tool.rs",
            "let x = y.unwrap(); let z = w as u32;",
            &bin,
            &cfg,
        );
        assert!(out.is_empty());
        // …but D1 still applies to binaries.
        let out = check_file("crates/demo/src/bin/tool.rs", "HashMap", &bin, &cfg);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn diagnostics_carry_position_and_rule() {
        let out = lib_findings("\n  let x = y.unwrap();");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
        assert_eq!(out[0].rule_id, "P1");
        let rendered = out[0].to_string();
        assert!(rendered.contains("crates/demo/src/lib.rs:2:"), "{rendered}");
        assert!(rendered.contains("error[P1/panic]"), "{rendered}");
    }

    #[test]
    fn cfg_test_fn_with_extra_attrs_is_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { v[0].unwrap(); }\n\
                   fn live() { w.unwrap(); }";
        let ids = rule_ids(src);
        assert_eq!(ids, vec!["P1"]);
    }
}
