//! Fixture regression tests: each rule must flag its known-bad snippet
//! with the right `file:line:col` + rule ID, the clean fixture must pass,
//! and the live workspace must lint clean (the property CI enforces).

// Test helpers may expect() freely: a failed expect IS the test failing
// (`clippy.toml` only exempts `#[test]` functions themselves).
#![allow(clippy::expect_used)]

use std::path::Path;

use reaper_lint::{check_file, find_workspace_root, lexer, run_workspace, Config};
use reaper_lint::{Diagnostic, FileClass, FileKind};

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint.toml above crates/lint")
}

fn config() -> Config {
    let text = std::fs::read_to_string(workspace_root().join("lint.toml"))
        .expect("read lint.toml");
    Config::parse(&text).expect("parse lint.toml")
}

/// Lints a fixture as if it lived at `crates/<crate>/src/fixture.rs`.
fn lint_fixture(name: &str, crate_name: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {name}: {e}"));
    let class = FileClass {
        crate_name: crate_name.to_string(),
        kind: FileKind::LibSrc,
    };
    let rel = format!("crates/{crate_name}/src/fixture.rs");
    check_file(&rel, &source, &class, &config())
}

fn lines_of(diags: &[Diagnostic], rule_id: &str) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.rule_id == rule_id)
        .map(|d| d.line)
        .collect()
}

#[test]
fn d1_flags_hash_containers_in_output_affecting_crate() {
    let diags = lint_fixture("d1_hash_order.rs", "bench");
    assert!(!diags.is_empty(), "D1 fixture produced no findings");
    assert!(diags.iter().all(|d| d.rule_id == "D1"), "{diags:?}");
    // `use` line, two construction sites, and the `HashSet` annotation.
    let lines = lines_of(&diags, "D1");
    assert!(lines.contains(&3), "use-line finding missing: {lines:?}");
    assert!(lines.contains(&6), "HashMap type finding missing: {lines:?}");
    assert!(lines.contains(&10), "HashSet finding missing: {lines:?}");
    // Exact position: `HashMap` inside the brace list on the use line.
    let first = &diags[0];
    assert_eq!((first.line, first.col), (3, 24), "{first}");
    let rendered = first.to_string();
    assert!(
        rendered.contains("crates/bench/src/fixture.rs:3:24"),
        "diagnostic must render file:line:col — got:\n{rendered}"
    );
    assert!(rendered.contains("error[D1/hash-order]"), "{rendered}");
}

#[test]
fn d1_ignores_crates_outside_the_configured_scope() {
    // `analysis` is not in the hash-order crate list.
    let diags = lint_fixture("d1_hash_order.rs", "analysis");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d2_flags_wall_clock_and_ambient_entropy() {
    let diags = lint_fixture("d2_wall_clock.rs", "retention");
    assert!(diags.iter().all(|d| d.rule_id == "D2"), "{diags:?}");
    assert!(
        diags.iter().any(|d| d.message.contains("SystemTime")),
        "SystemTime not flagged: {diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("Instant::now") && d.line == 6),
        "Instant::now not flagged on line 6: {diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("thread_rng") && d.line == 13),
        "thread_rng not flagged on line 13: {diags:?}"
    );
}

#[test]
fn p1_flags_undocumented_panics_in_library_code() {
    let diags = lint_fixture("p1_panic.rs", "core");
    assert!(diags.iter().all(|d| d.rule_id == "P1"), "{diags:?}");
    let lines = lines_of(&diags, "P1");
    assert_eq!(
        lines,
        vec![5, 6, 8, 10],
        "expected unwrap(5), bare expect(6), panic!(8), index(10): {diags:?}"
    );
}

#[test]
fn p1_index_audit_is_scoped_to_configured_crates() {
    // `bench` is not in the index-crates list, so only the unwrap, the
    // bare expect, and the panic! remain.
    let diags = lint_fixture("p1_panic.rs", "bench");
    assert_eq!(lines_of(&diags, "P1"), vec![5, 6, 8], "{diags:?}");
}

#[test]
fn c1_flags_bare_integer_casts() {
    let diags = lint_fixture("c1_lossy_cast.rs", "exec");
    assert!(diags.iter().all(|d| d.rule_id == "C1"), "{diags:?}");
    assert_eq!(lines_of(&diags, "C1"), vec![4, 9], "{diags:?}");
}

#[test]
fn c1_is_scoped_to_hot_path_crates() {
    let diags = lint_fixture("c1_lossy_cast.rs", "bench");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn bare_markers_are_detected_for_m0() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/m0_bare_marker.rs");
    let source = std::fs::read_to_string(path).expect("read fixture");
    let lexed = lexer::lex(&source);
    let bare: Vec<_> = lexed
        .markers
        .iter()
        .filter(|m| m.reason.is_empty())
        .collect();
    assert_eq!(bare.len(), 1, "{:?}", lexed.markers);
    assert_eq!(bare[0].rule, "panic");
    assert_eq!(bare[0].line, 4);
    // The bare marker still suppresses the P1 finding (run_workspace
    // reports the marker itself as M0 instead).
    let diags = lint_fixture("m0_bare_marker.rs", "core");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn clean_fixture_produces_no_findings() {
    let diags = lint_fixture("allowed_clean.rs", "core");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn live_workspace_lints_clean() {
    let report = run_workspace(&workspace_root()).expect("scan workspace");
    assert!(
        report.files_checked > 100,
        "suspiciously few files scanned: {}",
        report.files_checked
    );
    let mut rendered = String::new();
    for d in report.diagnostics.iter().chain(&report.bare_markers) {
        rendered.push_str(&d.to_string());
        rendered.push('\n');
    }
    assert!(report.is_clean(), "workspace has findings:\n{rendered}");
}
