//! Fixture regression tests: each rule must flag its known-bad snippet
//! with the right `file:line:col` + rule ID, the clean fixture must pass,
//! and the live workspace must lint clean (the property CI enforces).

// Test helpers may expect() freely: a failed expect IS the test failing
// (`clippy.toml` only exempts `#[test]` functions themselves).
#![allow(clippy::expect_used)]

use std::path::Path;

use reaper_lint::callgraph::FileFacts;
use reaper_lint::{check_file, concurrency, find_workspace_root, lexer, run_workspace, Config};
use reaper_lint::{Diagnostic, FileClass, FileKind};

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint.toml above crates/lint")
}

fn config() -> Config {
    let text = std::fs::read_to_string(workspace_root().join("lint.toml"))
        .expect("read lint.toml");
    Config::parse(&text).expect("parse lint.toml")
}

/// Lints a fixture as if it lived at `crates/<crate>/src/fixture.rs`.
fn lint_fixture(name: &str, crate_name: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {name}: {e}"));
    let class = FileClass {
        crate_name: crate_name.to_string(),
        kind: FileKind::LibSrc,
    };
    let rel = format!("crates/{crate_name}/src/fixture.rs");
    check_file(&rel, &source, &class, &config())
}

fn lines_of(diags: &[Diagnostic], rule_id: &str) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.rule_id == rule_id)
        .map(|d| d.line)
        .collect()
}

#[test]
fn d1_flags_hash_containers_in_output_affecting_crate() {
    let diags = lint_fixture("d1_hash_order.rs", "bench");
    assert!(!diags.is_empty(), "D1 fixture produced no findings");
    assert!(diags.iter().all(|d| d.rule_id == "D1"), "{diags:?}");
    // `use` line, two construction sites, and the `HashSet` annotation.
    let lines = lines_of(&diags, "D1");
    assert!(lines.contains(&3), "use-line finding missing: {lines:?}");
    assert!(lines.contains(&6), "HashMap type finding missing: {lines:?}");
    assert!(lines.contains(&10), "HashSet finding missing: {lines:?}");
    // Exact position: `HashMap` inside the brace list on the use line.
    let first = &diags[0];
    assert_eq!((first.line, first.col), (3, 24), "{first}");
    let rendered = first.to_string();
    assert!(
        rendered.contains("crates/bench/src/fixture.rs:3:24"),
        "diagnostic must render file:line:col — got:\n{rendered}"
    );
    assert!(rendered.contains("error[D1/hash-order]"), "{rendered}");
}

#[test]
fn d1_ignores_crates_outside_the_configured_scope() {
    // `analysis` is not in the hash-order crate list.
    let diags = lint_fixture("d1_hash_order.rs", "analysis");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn d2_flags_wall_clock_and_ambient_entropy() {
    let diags = lint_fixture("d2_wall_clock.rs", "retention");
    assert!(diags.iter().all(|d| d.rule_id == "D2"), "{diags:?}");
    assert!(
        diags.iter().any(|d| d.message.contains("SystemTime")),
        "SystemTime not flagged: {diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("Instant::now") && d.line == 6),
        "Instant::now not flagged on line 6: {diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("thread_rng") && d.line == 13),
        "thread_rng not flagged on line 13: {diags:?}"
    );
}

#[test]
fn p1_flags_undocumented_panics_in_library_code() {
    let diags = lint_fixture("p1_panic.rs", "core");
    assert!(diags.iter().all(|d| d.rule_id == "P1"), "{diags:?}");
    let lines = lines_of(&diags, "P1");
    assert_eq!(
        lines,
        vec![5, 6, 8, 10],
        "expected unwrap(5), bare expect(6), panic!(8), index(10): {diags:?}"
    );
}

#[test]
fn p1_index_audit_is_scoped_to_configured_crates() {
    // `bench` is not in the index-crates list, so only the unwrap, the
    // bare expect, and the panic! remain.
    let diags = lint_fixture("p1_panic.rs", "bench");
    assert_eq!(lines_of(&diags, "P1"), vec![5, 6, 8], "{diags:?}");
}

#[test]
fn c1_flags_bare_integer_casts() {
    let diags = lint_fixture("c1_lossy_cast.rs", "exec");
    assert!(diags.iter().all(|d| d.rule_id == "C1"), "{diags:?}");
    assert_eq!(lines_of(&diags, "C1"), vec![4, 9], "{diags:?}");
}

#[test]
fn c1_is_scoped_to_hot_path_crates() {
    let diags = lint_fixture("c1_lossy_cast.rs", "bench");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn bare_markers_are_detected_for_m0() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/m0_bare_marker.rs");
    let source = std::fs::read_to_string(path).expect("read fixture");
    let lexed = lexer::lex(&source);
    let bare: Vec<_> = lexed
        .markers
        .iter()
        .filter(|m| m.reason.is_empty())
        .collect();
    assert_eq!(bare.len(), 1, "{:?}", lexed.markers);
    assert_eq!(bare[0].rule, "panic");
    assert_eq!(bare[0].line, 4);
    // The bare marker still suppresses the P1 finding (run_workspace
    // reports the marker itself as M0 instead).
    let diags = lint_fixture("m0_bare_marker.rs", "core");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn clean_fixture_produces_no_findings() {
    let diags = lint_fixture("allowed_clean.rs", "core");
    assert!(diags.is_empty(), "{diags:?}");
}

fn fixture_source(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {name}: {e}"))
}

/// Runs the L1–L4 analyzer on a fixture as if it were
/// `crates/serve/src/fixture.rs` (the `serve` crate is in the
/// `[rules.concurrency]` scope of the real `lint.toml`).
fn lint_concurrency_fixture(name: &str) -> Vec<Diagnostic> {
    let cfg = config();
    let facts = FileFacts::from_source(
        "crates/serve/src/fixture.rs",
        "serve",
        false,
        &fixture_source(name),
        &cfg.lock_helpers,
    );
    concurrency::check_files(vec![facts], &cfg)
}

#[test]
fn l1_flags_the_seeded_inversion_with_both_witness_paths() {
    let diags = lint_concurrency_fixture("l1_lock_order.rs");
    let l1: Vec<_> = diags.iter().filter(|d| d.rule_id == "L1").collect();
    assert_eq!(l1.len(), 1, "one cycle → one diagnostic: {diags:?}");
    let d = l1[0];
    assert!(
        d.message.contains("Shared.jobs") && d.message.contains("Shared.store"),
        "cycle must name both locks: {}",
        d.message
    );
    // Both paths of the inversion are witnessed as notes.
    assert_eq!(d.notes.len(), 2, "{:?}", d.notes);
    assert!(
        d.notes.iter().any(|n| n.contains("`submit`")),
        "jobs→store path missing: {:?}",
        d.notes
    );
    assert!(
        d.notes.iter().any(|n| n.contains("`evict`")),
        "store→jobs path missing: {:?}",
        d.notes
    );
    // rustc-style rendering with both paths visible.
    let rendered = d.to_string();
    assert!(rendered.contains("error[L1/lock-order]"), "{rendered}");
    assert!(
        rendered.contains("crates/serve/src/fixture.rs:12:"),
        "anchor at the second acquisition: {rendered}"
    );
    assert!(rendered.matches("= note:").count() == 2, "{rendered}");
}

#[test]
fn l2_flags_guards_held_across_blocking_operations() {
    let diags = lint_concurrency_fixture("l2_held_blocking.rs");
    let l2: Vec<_> = diags.iter().filter(|d| d.rule_id == "L2").collect();
    assert_eq!(l2.len(), 4, "wait, write, sleep, queue-pop: {diags:?}");
    assert!(
        l2.iter().any(|d| d.line == 30 && d.message.contains("Shared.jobs")
            && d.message.contains("wait")),
        "guard across condvar wait: {l2:?}"
    );
    assert!(
        l2.iter().any(|d| d.message.contains("write_all")),
        "guard across TcpStream write: {l2:?}"
    );
    assert!(
        l2.iter().any(|d| d.message.contains("thread::sleep")),
        "guard across sleep: {l2:?}"
    );
    assert!(
        l2.iter()
            .any(|d| d.message.contains("Queue::pop") && d.message.contains("blocks")),
        "transitively blocking first-party callee: {l2:?}"
    );
    // The queue's own wait (guard consumed, nothing else held) is fine.
    assert!(diags.iter().all(|d| d.rule_id == "L2"), "{diags:?}");
}

#[test]
fn l3_flags_if_guarded_wait_but_not_loop_forms() {
    let diags = lint_concurrency_fixture("l3_condvar_if.rs");
    let l3: Vec<_> = diags.iter().filter(|d| d.rule_id == "L3").collect();
    assert_eq!(l3.len(), 1, "{diags:?}");
    assert_eq!(l3[0].line, 12, "{l3:?}");
    assert!(l3[0].message.contains("predicate loop"), "{l3:?}");
}

#[test]
fn l4_flags_returned_and_stored_guards() {
    let diags = lint_concurrency_fixture("l4_guard_escape.rs");
    let l4: Vec<_> = diags.iter().filter(|d| d.rule_id == "L4").collect();
    assert_eq!(l4.len(), 2, "returned + stored: {diags:?}");
    assert!(
        l4.iter().any(|d| d.message.contains("`leak_guard`")
            && d.message.contains("returns a lock guard")),
        "{l4:?}"
    );
    assert!(
        l4.iter().any(|d| d.message.contains("stored beyond")),
        "{l4:?}"
    );
    // `fine` returns data, not the guard.
    assert!(!l4.iter().any(|d| d.message.contains("`fine`")), "{l4:?}");
}

#[test]
fn m1_temp_workspace_flags_only_the_stale_marker() {
    // A miniature workspace exercising the central marker accounting:
    // one marker suppresses a C1, one an L2, one suppresses nothing.
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("m1_ws");
    let src_dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("mk temp workspace");
    std::fs::write(
        root.join("lint.toml"),
        "[rules.lossy-cast]\ncrates = [\"demo\"]\n\n\
         [rules.concurrency]\ncrates = [\"demo\"]\n",
    )
    .expect("write lint.toml");
    std::fs::write(src_dir.join("lib.rs"), fixture_source("m1_stale_allow.rs"))
        .expect("write lib.rs");

    let report = run_workspace(&root).expect("scan temp workspace");
    assert!(report.bare_markers.is_empty(), "{:?}", report.bare_markers);
    let rendered: Vec<String> = report.diagnostics.iter().map(ToString::to_string).collect();
    assert_eq!(
        report.diagnostics.len(),
        1,
        "only the stale marker is a finding:\n{}",
        rendered.join("\n")
    );
    let d = &report.diagnostics[0];
    assert_eq!(d.rule_id, "M1");
    assert_eq!(d.rule_name, "stale-allowance");
    assert_eq!(d.line, 15, "anchored at the stale marker: {d}");
    assert!(d.message.contains("lossy-cast"), "{d}");
}

#[test]
fn live_workspace_lock_graph_is_actually_populated() {
    // Guard against the analyzer silently resolving nothing: the real
    // serve/exec sources must yield the known lock identities.
    let cfg = config();
    let root = workspace_root();
    let mut files = Vec::new();
    for (rel, crate_name) in [
        ("crates/serve/src/server.rs", "serve"),
        ("crates/exec/src/pool.rs", "exec"),
    ] {
        let source = std::fs::read_to_string(root.join(rel)).expect("read live source");
        files.push(FileFacts::from_source(rel, crate_name, false, &source, &cfg.lock_helpers));
    }
    let ws = reaper_lint::callgraph::Workspace::build(files);
    let mut lock_ids = std::collections::BTreeSet::new();
    for gid in 0..ws.fn_count() {
        let f = ws.fn_facts(gid);
        for ev in &f.acquires {
            if let Some(id) = ws.lock_id(f, &ev.lock) {
                lock_ids.insert(id);
            }
        }
    }
    for expected in ["Shared.jobs", "Shared.store", "BoundedQueue.state", "FanOut.state"] {
        assert!(
            lock_ids.contains(expected),
            "`{expected}` not resolved; got {lock_ids:?}"
        );
    }
}

#[test]
fn live_workspace_lints_clean() {
    let report = run_workspace(&workspace_root()).expect("scan workspace");
    assert!(
        report.files_checked > 100,
        "suspiciously few files scanned: {}",
        report.files_checked
    );
    let mut rendered = String::new();
    for d in report.diagnostics.iter().chain(&report.bare_markers) {
        rendered.push_str(&d.to_string());
        rendered.push('\n');
    }
    assert!(report.is_clean(), "workspace has findings:\n{rendered}");
}
