//! Clean fixture: every would-be finding is either a documented invariant
//! expect, carries a reasoned allow marker, or lives in `#[cfg(test)]`
//! code. Linted as `crates/core/src/fixture.rs` — must produce zero
//! diagnostics.
pub fn pick(xs: &[f64]) -> f64 {
    let head = xs
        .first()
        .expect("invariant: callers validate non-emptiness");
    // lint: allow(panic) fixture demonstrates the marker-above form
    let tail = xs.last().unwrap();
    head + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_unwrap_freely() {
        let xs = vec![1.0, 2.0];
        assert_eq!(pick(&xs), 3.0);
        let first = xs.first().unwrap();
        assert_eq!(*first, xs[0]);
    }
}
