//! Known-bad fixture for rule C1 (lossy-cast): bare `as` integer casts in
//! a hot-path crate. Linted as `crates/exec/src/fixture.rs`.
pub fn narrow(x: u64) -> u32 {
    x as u32
}

pub fn widen_is_also_flagged(x: u32) -> u64 {
    // Widening is lossless but still a bare `as`: use `u64::from` instead.
    x as u64
}
