//! Known-bad fixture for rule D1 (hash-order): `HashMap`/`HashSet` in an
//! output-affecting crate. Linted as `crates/bench/src/fixture.rs`.
use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u64]) -> usize {
    let mut counts: HashMap<u64, u32> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    let distinct: HashSet<u64> = xs.iter().copied().collect();
    counts.len() + distinct.len()
}
