//! Known-bad fixture for rule D2 (wall-clock): ambient time and entropy
//! sources inside model code. Linted as `crates/retention/src/fixture.rs`.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    let epoch = SystemTime::now();
    let _ = epoch;
    t0.elapsed().as_nanos()
}

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
