//! L1 fixture: seeded two-lock inversion. `submit` takes jobs → store,
//! `evict` takes store → jobs; with one thread in each, both block
//! forever. The diagnostic must witness BOTH paths.

pub struct Shared {
    jobs: Mutex<u64>,
    store: Mutex<u64>,
}

fn submit(shared: &Arc<Shared>) {
    let jobs = lock(&shared.jobs);
    let store = lock(&shared.store); // L1 anchor: jobs → store
    drop(store);
    drop(jobs);
}

fn evict(shared: &Arc<Shared>) {
    let store = lock(&shared.store);
    let jobs = lock(&shared.jobs); // the inverted path: store → jobs
    drop(jobs);
    drop(store);
}
