//! L2 fixture: guards live across blocking operations — a condvar wait
//! (a *second* guard besides the waited one), socket I/O, a sleep, and
//! a call to a first-party queue method that blocks internally.

pub struct Shared {
    jobs: Mutex<u64>,
    seq: Mutex<u64>,
    cv: Condvar,
}

pub struct Queue {
    state: Mutex<u64>,
    not_empty: Condvar,
}

impl Queue {
    fn pop(&self) -> u64 {
        let mut st = lock(&self.state);
        while *st == 0 {
            st = self.not_empty.wait(st).unwrap();
        }
        *st
    }
}

fn wait_holding_other_lock(shared: &Shared) {
    let jobs = lock(&shared.jobs);
    let mut seq = lock(&shared.seq);
    while *seq == 0 {
        seq = shared.cv.wait(seq).unwrap(); // L2: `shared.jobs` still held
    }
    drop(seq);
    drop(jobs);
}

fn write_holding_lock(shared: &Shared, sock: &mut TcpStream) {
    let jobs = lock(&shared.jobs);
    sock.write_all(b"payload"); // L2: socket write under the lock
    drop(jobs);
}

fn sleep_holding_lock(shared: &Shared) {
    let jobs = lock(&shared.jobs);
    thread::sleep(TICK); // L2: sleep under the lock
    drop(jobs);
}

fn pop_holding_lock(shared: &Shared, q: &Queue) {
    let jobs = lock(&shared.jobs);
    let v = q.pop(); // L2: `Queue::pop` blocks on its condvar
    drop(jobs);
    consume(v);
}
