//! L3 fixture: a condvar wait guarded by `if` observes stale state on
//! spurious wakeup. The `while` and `wait_while` forms below it pass.

pub struct Shared {
    seq: Mutex<u64>,
    cv: Condvar,
}

fn wait_once(shared: &Shared) {
    let mut seq = lock(&shared.seq);
    if *seq == 0 {
        seq = shared.cv.wait(seq).unwrap(); // L3: if, not while
    }
    drop(seq);
}

fn wait_in_loop(shared: &Shared) {
    let mut seq = lock(&shared.seq);
    while *seq == 0 {
        seq = shared.cv.wait(seq).unwrap(); // ok: predicate loop
    }
    drop(seq);
}

fn wait_with_predicate(shared: &Shared) {
    let seq = lock(&shared.seq);
    let seq = shared.cv.wait_while(seq, |s| *s == 0).unwrap(); // ok
    drop(seq);
}
