//! L4 fixture: a guard escaping its critical section — returned from
//! the acquiring function, or stored into a longer-lived struct.

pub struct Shared {
    jobs: Mutex<u64>,
}

pub struct Holder {
    guard: MutexGuard<'static, u64>,
}

fn leak_guard(shared: &Shared) -> MutexGuard<'_, u64> {
    lock(&shared.jobs) // L4: the critical section escapes
}

fn store_guard(shared: &Shared, holder: &mut Holder) {
    let g = lock(&shared.jobs);
    holder.guard = g; // L4: guard outlives the function
}

fn fine(shared: &Shared) -> u64 {
    let g = lock(&shared.jobs);
    *g // ok: the *data* leaves, the guard does not
}
