//! Known-bad fixture for M0 (bare-marker): an allow marker without a
//! reason defeats the audit trail and is itself a finding.
pub fn shrug(xs: &[u32]) -> u32 {
    // lint: allow(panic)
    xs.first().copied().unwrap()
}
