//! M1 fixture: three allow markers — one earns its keep, one suppresses
//! nothing (stale), one suppresses an L2. Used by the temp-workspace
//! integration test, which lints this file as `crates/demo/src/lib.rs`.

pub struct S {
    a: Mutex<u64>,
}

pub fn used_cast(x: u64) -> u32 {
    // lint: allow(lossy-cast) range checked by the caller
    x as u32
}

pub fn stale_marker(x: u64) -> u64 {
    // lint: allow(lossy-cast) left behind after a refactor — M1 flags this
    x
}

pub fn sleepy(s: &S) {
    let g = lock(&s.a);
    // lint: allow(held-lock-blocking) startup path, provably contention-free
    thread::sleep(TICK);
    drop(g);
}
