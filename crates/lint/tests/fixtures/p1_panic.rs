//! Known-bad fixture for rule P1 (panic): undocumented `unwrap`, bare
//! `expect`, `panic!`, and slice indexing in library code. Linted as
//! `crates/core/src/fixture.rs` (an index-audited crate).
pub fn first_plus_last(xs: &[f64]) -> f64 {
    let head = xs.first().unwrap();
    let tail = xs.last().expect("nonempty");
    if !head.is_finite() {
        panic!("head is not finite");
    }
    head + tail + xs[0]
}
