//! Physical-address → DRAM-coordinate mapping.
//!
//! The trace generators emit (bank, row) directly; real memory controllers
//! derive them from physical addresses. This module provides the two
//! classic interleavings plus XOR bank hashing, so address-level traces
//! (e.g. from an external simulator) can drive [`crate::simulate`] via
//! [`AccessTrace::new`](crate::AccessTrace::new).

/// How physical address bits map onto (bank, row, column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Interleave {
    /// Row : Bank : Column — consecutive cache lines fill a row before
    /// switching banks (maximizes row locality for streaming).
    #[default]
    RowBankCol,
    /// Row : Column : Bank — consecutive cache lines round-robin across
    /// banks (maximizes bank-level parallelism).
    RowColBank,
}

/// An address mapper for a fixed DRAM organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapper {
    banks: u32,
    rows: u32,
    cols: u32,
    line_bytes: u32,
    interleave: Interleave,
    xor_hash: bool,
}

/// Decomposed DRAM coordinates of a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MappedAddress {
    /// Target bank.
    pub bank: u8,
    /// Target row.
    pub row: u32,
    /// Column (cache-line index within the row).
    pub col: u32,
}

impl AddressMapper {
    /// Creates a mapper for `banks × rows × cols` cache lines of
    /// `line_bytes` each.
    ///
    /// # Panics
    /// Panics if any dimension is zero, not a power of two, or `banks > 256`.
    pub fn new(banks: u32, rows: u32, cols: u32, line_bytes: u32, interleave: Interleave) -> Self {
        for (name, v) in [("banks", banks), ("rows", rows), ("cols", cols), ("line_bytes", line_bytes)] {
            assert!(v > 0 && v.is_power_of_two(), "{name} must be a nonzero power of two");
        }
        assert!(banks <= 256, "bank index must fit u8");
        Self {
            banks,
            rows,
            cols,
            line_bytes,
            interleave,
            xor_hash: false,
        }
    }

    /// The paper's Table 2 organization: 8 banks, 2 KB rows (32 cache
    /// lines), 64 K rows, 64-byte lines, bank-interleaved.
    pub fn lpddr4_default() -> Self {
        Self::new(8, 64 * 1024, 32, 64, Interleave::RowColBank)
    }

    /// Enables XOR bank hashing (`bank ^= low row bits`), the standard
    /// trick to spread row-conflict-heavy strides across banks.
    pub fn with_xor_hash(mut self) -> Self {
        self.xor_hash = true;
        self
    }

    /// Total bytes the mapper covers.
    pub fn capacity_bytes(&self) -> u64 {
        self.banks as u64 * self.rows as u64 * self.cols as u64 * self.line_bytes as u64
    }

    /// Maps a physical byte address (wrapped into capacity).
    pub fn map(&self, addr: u64) -> MappedAddress {
        let line = (addr / self.line_bytes as u64)
            % (self.banks as u64 * self.rows as u64 * self.cols as u64);
        let (bank, row, col) = match self.interleave {
            Interleave::RowBankCol => {
                let col = line % self.cols as u64;
                let bank = (line / self.cols as u64) % self.banks as u64;
                let row = line / (self.cols as u64 * self.banks as u64);
                (bank, row, col)
            }
            Interleave::RowColBank => {
                let bank = line % self.banks as u64;
                let col = (line / self.banks as u64) % self.cols as u64;
                let row = line / (self.banks as u64 * self.cols as u64);
                (bank, row, col)
            }
        };
        let bank = if self.xor_hash {
            (bank ^ (row % self.banks as u64)) % self.banks as u64
        } else {
            bank
        };
        MappedAddress {
            bank: bank as u8,
            row: row as u32,
            col: col as u32,
        }
    }

    /// Inverse of [`AddressMapper::map`] for unhashed mappers: the base
    /// byte address of the mapped line.
    ///
    /// # Panics
    /// Panics if XOR hashing is enabled (not invertible per-field here) or
    /// coordinates are out of range.
    pub fn unmap(&self, m: MappedAddress) -> u64 {
        assert!(!self.xor_hash, "unmap not supported with XOR hashing");
        assert!((m.bank as u32) < self.banks, "bank out of range");
        assert!(m.row < self.rows, "row out of range");
        assert!(m.col < self.cols, "col out of range");
        let line = match self.interleave {
            Interleave::RowBankCol => {
                (m.row as u64 * self.banks as u64 + m.bank as u64) * self.cols as u64
                    + m.col as u64
            }
            Interleave::RowColBank => {
                (m.row as u64 * self.cols as u64 + m.col as u64) * self.banks as u64
                    + m.bank as u64
            }
        };
        line * self.line_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_lines_round_robin_banks_under_col_bank() {
        let m = AddressMapper::lpddr4_default();
        let banks: Vec<u8> = (0..8u64).map(|i| m.map(i * 64).bank).collect();
        assert_eq!(banks, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // Same row across the stride.
        assert_eq!(m.map(0).row, m.map(7 * 64).row);
    }

    #[test]
    fn sequential_lines_stay_in_bank_under_bank_col() {
        let m = AddressMapper::new(8, 1024, 32, 64, Interleave::RowBankCol);
        for i in 0..32u64 {
            assert_eq!(m.map(i * 64).bank, 0, "line {i}");
            assert_eq!(m.map(i * 64).row, 0);
        }
        assert_eq!(m.map(32 * 64).bank, 1);
    }

    #[test]
    fn map_unmap_roundtrip() {
        for interleave in [Interleave::RowBankCol, Interleave::RowColBank] {
            let m = AddressMapper::new(8, 256, 32, 64, interleave);
            for addr in (0..m.capacity_bytes()).step_by(64 * 977) {
                let mapped = m.map(addr);
                assert_eq!(m.unmap(mapped), addr, "{interleave:?} addr {addr}");
            }
        }
    }

    #[test]
    fn xor_hash_spreads_same_column_strides() {
        let plain = AddressMapper::new(8, 1024, 32, 64, Interleave::RowColBank);
        let hashed = plain.with_xor_hash();
        // A row-sized stride hits the same bank unhashed...
        let stride = 8 * 32 * 64u64;
        let plain_banks: std::collections::HashSet<u8> =
            (0..8u64).map(|i| plain.map(i * stride).bank).collect();
        assert_eq!(plain_banks.len(), 1);
        // ...and spreads across banks with hashing.
        let hashed_banks: std::collections::HashSet<u8> =
            (0..8u64).map(|i| hashed.map(i * stride).bank).collect();
        assert!(hashed_banks.len() >= 4, "{hashed_banks:?}");
    }

    #[test]
    fn capacity_and_wrapping() {
        let m = AddressMapper::new(2, 4, 8, 64, Interleave::RowBankCol);
        assert_eq!(m.capacity_bytes(), 2 * 4 * 8 * 64);
        // Addresses beyond capacity wrap.
        assert_eq!(m.map(0), m.map(m.capacity_bytes()));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        AddressMapper::new(3, 4, 8, 64, Interleave::RowBankCol);
    }

    #[test]
    #[should_panic(expected = "XOR hashing")]
    fn unmap_rejects_hashed() {
        let m = AddressMapper::lpddr4_default().with_xor_hash();
        m.unmap(MappedAddress { bank: 0, row: 0, col: 0 });
    }
}
