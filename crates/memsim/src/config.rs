//! Simulated system configuration (paper Table 2).

use reaper_dram_model::Ms;

use crate::timing::LpddrTimings;

/// Row-buffer management policy (paper Table 2: "open/closed row policy
/// for single/multi-core").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowPolicy {
    /// Leave the row open after an access (exploits locality; the paper's
    /// single-core setting).
    #[default]
    Open,
    /// Precharge immediately after each access (avoids conflict penalties;
    /// the paper's multi-core setting).
    Closed,
}

/// Refresh command granularity (LPDDR4 supports both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefreshMode {
    /// All-bank refresh (REFab): every `tREFI`, all banks block for
    /// `tRFCab`. The paper's evaluation mode.
    #[default]
    AllBank,
    /// Per-bank refresh (REFpb): banks refresh round-robin every
    /// `tREFI / banks`, each blocking only itself for `tRFCpb` (~half of
    /// `tRFCab`), letting the other banks keep serving requests.
    PerBank,
}

/// Configuration of the simulated system.
///
/// Defaults mirror the paper's Table 2: 4 cores, 3-wide issue, 128-entry
/// instruction window, 8 MSHRs/core, 64-entry read/write queues, FR-FCFS,
/// LPDDR4-3200 with 8 banks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Issue width of each core (instructions/cycle at 1:1 CPU:memory clock;
    /// the 4 GHz / 1.6 GHz ratio is folded into the width).
    pub issue_width: u32,
    /// Instruction-window (ROB) size limiting run-ahead past an outstanding
    /// load.
    pub window: u32,
    /// Miss-status-holding registers per core (outstanding misses).
    pub mshrs: u32,
    /// Read-queue capacity.
    pub read_queue: usize,
    /// Write-queue capacity.
    pub write_queue: usize,
    /// Write-queue drain watermark.
    pub write_drain_at: usize,
    /// DRAM banks per rank.
    pub banks: u8,
    /// DRAM timings.
    pub timings: LpddrTimings,
    /// Refresh window (the paper's "refresh interval"): `None` disables
    /// refresh entirely (Fig. 13's "no ref" bars).
    pub refresh_interval: Option<Ms>,
    /// Refresh command granularity.
    pub refresh_mode: RefreshMode,
    /// Row-buffer management policy.
    pub row_policy: RowPolicy,
}

impl SimConfig {
    /// The paper's Table 2 system for a given chip density, at the given
    /// refresh interval (`None` = refresh disabled).
    pub fn lpddr4_3200(chip_gbit: u32, refresh_interval: Option<Ms>) -> Self {
        // 4 GHz cores, 3-wide ⇒ 7.5 instructions per 1.6 GHz memory cycle
        // peak; round to 7 (integer issue per memory cycle).
        Self {
            issue_width: 7,
            window: 128,
            mshrs: 8,
            read_queue: 64,
            write_queue: 64,
            write_drain_at: 48,
            banks: 8,
            timings: LpddrTimings::lpddr4_3200(chip_gbit),
            refresh_interval,
            refresh_mode: RefreshMode::AllBank,
            row_policy: RowPolicy::Open,
        }
    }

    /// Switches to the closed-row policy (Table 2's multi-core setting).
    pub fn with_closed_rows(mut self) -> Self {
        self.row_policy = RowPolicy::Closed;
        self
    }

    /// Switches to per-bank refresh (REFpb).
    pub fn with_per_bank_refresh(mut self) -> Self {
        self.refresh_mode = RefreshMode::PerBank;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.issue_width == 0 {
            return Err("issue_width must be nonzero");
        }
        if self.window == 0 {
            return Err("window must be nonzero");
        }
        if self.mshrs == 0 {
            return Err("mshrs must be nonzero");
        }
        if self.read_queue == 0 || self.write_queue == 0 {
            return Err("queues must be nonempty");
        }
        if self.write_drain_at >= self.write_queue {
            return Err("write_drain_at must be below write_queue capacity");
        }
        if self.banks == 0 {
            return Err("banks must be nonzero");
        }
        if let Some(r) = self.refresh_interval {
            if !r.is_positive() {
                return Err("refresh interval must be positive");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults_validate() {
        for gb in [8, 16, 32, 64] {
            SimConfig::lpddr4_3200(gb, Some(Ms::new(64.0)))
                .validate()
                .unwrap();
            SimConfig::lpddr4_3200(gb, None).validate().unwrap();
        }
    }

    #[test]
    fn row_policy_toggles() {
        let c = SimConfig::lpddr4_3200(8, None).with_closed_rows();
        assert_eq!(c.row_policy, RowPolicy::Closed);
        c.validate().unwrap();
        assert_eq!(SimConfig::lpddr4_3200(8, None).row_policy, RowPolicy::Open);
    }

    #[test]
    fn per_bank_mode_toggles() {
        let c = SimConfig::lpddr4_3200(8, Some(Ms::new(64.0))).with_per_bank_refresh();
        assert_eq!(c.refresh_mode, RefreshMode::PerBank);
        c.validate().unwrap();
        assert_eq!(
            SimConfig::lpddr4_3200(8, None).refresh_mode,
            RefreshMode::AllBank
        );
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut c = SimConfig::lpddr4_3200(8, None);
        c.issue_width = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::lpddr4_3200(8, None);
        c.write_drain_at = c.write_queue;
        assert!(c.validate().is_err());
        let mut c = SimConfig::lpddr4_3200(8, None);
        c.refresh_interval = Some(Ms::ZERO);
        assert!(c.validate().is_err());
    }
}
