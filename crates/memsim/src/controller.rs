//! The memory controller: FR-FCFS scheduling over banked LPDDR4 with
//! all-bank refresh.

use crate::config::{RefreshMode, RowPolicy, SimConfig};
use crate::sim::CommandStats;

/// A queued memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedRequest {
    /// Issuing core.
    pub core: u8,
    /// Target bank.
    pub bank: u8,
    /// Target row.
    pub row: u32,
    /// Enqueue cycle (FCFS tiebreak).
    pub arrival: u64,
    /// Caller-assigned identifier, echoed on completion.
    pub id: u64,
}

/// A completed read: data returned to `core` for request `id` at `done_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedRead {
    /// Core that issued the read.
    pub core: u8,
    /// Request identifier.
    pub id: u64,
    /// Cycle the data burst finished.
    pub done_at: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u32>,
    ready_at: u64,
}

/// FR-FCFS memory controller over one LPDDR4 rank.
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: SimConfig,
    banks: Vec<Bank>,
    read_queue: Vec<QueuedRequest>,
    write_queue: Vec<QueuedRequest>,
    in_flight: Vec<CompletedRead>,
    bus_free_at: u64,
    next_refresh_at: Option<u64>,
    refresh_interval_cycles: u64,
    next_refresh_bank: u8,
    stats: CommandStats,
}

impl MemoryController {
    /// Creates a controller for `cfg`.
    ///
    /// # Panics
    /// Panics if the config fails validation.
    pub fn new(cfg: SimConfig) -> Self {
        // lint: allow(panic) documented `# Panics` contract of the constructor
        cfg.validate().expect("invalid sim config");
        let mut refresh_interval_cycles = cfg
            .refresh_interval
            .map(|r| cfg.timings.t_refi_cycles(r.as_ms()))
            .unwrap_or(0);
        // Per-bank refresh: one bank refreshes every tREFI / banks.
        if cfg.refresh_mode == RefreshMode::PerBank {
            refresh_interval_cycles /= cfg.banks as u64;
        }
        Self {
            banks: vec![Bank::default(); cfg.banks as usize],
            read_queue: Vec::with_capacity(cfg.read_queue),
            write_queue: Vec::with_capacity(cfg.write_queue),
            in_flight: Vec::new(),
            bus_free_at: 0,
            next_refresh_at: cfg.refresh_interval.map(|_| refresh_interval_cycles),
            refresh_interval_cycles,
            next_refresh_bank: 0,
            stats: CommandStats::default(),
            cfg,
        }
    }

    /// True if the read queue has room.
    pub fn can_accept_read(&self) -> bool {
        self.read_queue.len() < self.cfg.read_queue
    }

    /// True if the write queue has room.
    pub fn can_accept_write(&self) -> bool {
        self.write_queue.len() < self.cfg.write_queue
    }

    /// Enqueues a read.
    ///
    /// # Panics
    /// Panics if the read queue is full (callers must check
    /// [`MemoryController::can_accept_read`]).
    pub fn enqueue_read(&mut self, req: QueuedRequest) {
        assert!(self.can_accept_read(), "read queue full");
        self.read_queue.push(req);
    }

    /// Enqueues a posted write.
    ///
    /// # Panics
    /// Panics if the write queue is full.
    pub fn enqueue_write(&mut self, req: QueuedRequest) {
        assert!(self.can_accept_write(), "write queue full");
        self.write_queue.push(req);
    }

    /// Accumulated command statistics.
    pub fn stats(&self) -> &CommandStats {
        &self.stats
    }

    /// Outstanding queued requests (reads + writes), for drain checks.
    pub fn pending(&self) -> usize {
        self.read_queue.len() + self.write_queue.len()
    }

    /// Advances one cycle: handles refresh, issues at most one command
    /// (FR-FCFS), and returns reads whose data completed this cycle.
    pub fn tick(&mut self, now: u64) -> Vec<CompletedRead> {
        self.maybe_refresh(now);
        self.maybe_issue(now);

        let mut done = Vec::new();
        self.in_flight.retain(|c| {
            if c.done_at <= now {
                done.push(*c);
                false
            } else {
                true
            }
        });
        done
    }

    fn maybe_refresh(&mut self, now: u64) {
        if let Some(due) = self.next_refresh_at {
            if now >= due {
                let t = &self.cfg.timings;
                match self.cfg.refresh_mode {
                    RefreshMode::AllBank => {
                        for bank in &mut self.banks {
                            // REFab precharges all banks and occupies them
                            // for tRFCab.
                            bank.open_row = None;
                            bank.ready_at = bank.ready_at.max(now) + t.t_rfc_ab as u64;
                        }
                        self.stats.refreshes += 1;
                    }
                    RefreshMode::PerBank => {
                        // REFpb: only the round-robin bank blocks, and only
                        // for tRFCpb.
                        let bank = &mut self.banks[self.next_refresh_bank as usize];
                        bank.open_row = None;
                        bank.ready_at = bank.ready_at.max(now) + t.t_rfc_pb as u64;
                        self.next_refresh_bank =
                            (self.next_refresh_bank + 1) % self.cfg.banks;
                        self.stats.per_bank_refreshes += 1;
                    }
                }
                self.next_refresh_at = Some(due + self.refresh_interval_cycles);
            }
        }
    }

    fn maybe_issue(&mut self, now: u64) {
        let draining = self.write_queue.len() >= self.cfg.write_drain_at
            || (self.read_queue.is_empty() && !self.write_queue.is_empty());

        if draining {
            if let Some(idx) = self.pick_fr_fcfs(&self.write_queue, now) {
                let req = self.write_queue.swap_remove(idx);
                self.issue(req, now, true);
            }
        } else if let Some(idx) = self.pick_fr_fcfs(&self.read_queue, now) {
            let req = self.read_queue.swap_remove(idx);
            let done = self.issue(req, now, false);
            self.in_flight.push(CompletedRead {
                core: req.core,
                id: req.id,
                done_at: done,
            });
        }
    }

    /// FR-FCFS: among requests whose bank is ready this cycle, prefer
    /// row-buffer hits (first-ready); tiebreak by arrival order (FCFS).
    fn pick_fr_fcfs(&self, queue: &[QueuedRequest], now: u64) -> Option<usize> {
        let mut best: Option<(bool, u64, usize)> = None; // (is_hit, arrival, idx)
        for (idx, req) in queue.iter().enumerate() {
            let bank = &self.banks[req.bank as usize];
            if bank.ready_at > now {
                continue;
            }
            let is_hit = bank.open_row == Some(req.row);
            let key = (is_hit, req.arrival, idx);
            best = match best {
                None => Some(key),
                Some(cur) => {
                    // Hits beat misses; earlier arrivals beat later.
                    let better = (key.0 && !cur.0) || (key.0 == cur.0 && key.1 < cur.1);
                    if better {
                        Some(key)
                    } else {
                        Some(cur)
                    }
                }
            };
        }
        best.map(|(_, _, idx)| idx)
    }

    /// Issues `req` on its bank; returns the data-completion cycle.
    fn issue(&mut self, req: QueuedRequest, now: u64, is_write: bool) -> u64 {
        let t = self.cfg.timings;
        let bank = &mut self.banks[req.bank as usize];
        debug_assert!(bank.ready_at <= now);

        let (col_ready, activated) = match bank.open_row {
            Some(r) if r == req.row => {
                self.stats.row_hits += 1;
                (now, false)
            }
            Some(_) => {
                self.stats.row_misses += 1;
                (now + (t.t_rp + t.t_rcd) as u64, true)
            }
            None => {
                self.stats.row_misses += 1;
                (now + t.t_rcd as u64, true)
            }
        };
        if activated {
            self.stats.activates += 1;
            bank.open_row = Some(req.row);
        }

        let access_latency = if is_write { t.t_wl } else { t.t_cl } as u64;
        let data_start = (col_ready + access_latency).max(self.bus_free_at);
        let data_end = data_start + t.t_bl as u64;
        self.bus_free_at = data_end;

        let recovery = if is_write { t.t_wr as u64 } else { 0 };
        // Fold tRAS: an activated row must stay open at least tRAS before
        // the next precharge; approximate by holding the bank busy.
        let ras_hold = if activated {
            col_ready + t.t_ras as u64
        } else {
            0
        };
        bank.ready_at = (data_end + recovery).max(ras_hold).max(now + t.t_ccd as u64);
        // Closed-row policy: precharge right after the access completes.
        if self.cfg.row_policy == RowPolicy::Closed {
            bank.open_row = None;
            bank.ready_at += t.t_rp as u64;
        }

        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        data_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reaper_dram_model::Ms;

    fn cfg(refresh: Option<Ms>) -> SimConfig {
        SimConfig::lpddr4_3200(8, refresh)
    }

    fn req(id: u64, bank: u8, row: u32, arrival: u64) -> QueuedRequest {
        QueuedRequest {
            core: 0,
            bank,
            row,
            arrival,
            id,
        }
    }

    fn run_until_done(mc: &mut MemoryController, mut now: u64, expect: usize) -> Vec<CompletedRead> {
        let mut done = Vec::new();
        for _ in 0..1_000_000 {
            done.extend(mc.tick(now));
            if done.len() >= expect {
                break;
            }
            now += 1;
        }
        done
    }

    #[test]
    fn single_read_latency_is_act_plus_cl_plus_bl() {
        let mut mc = MemoryController::new(cfg(None));
        mc.enqueue_read(req(1, 0, 5, 0));
        let done = run_until_done(&mut mc, 0, 1);
        assert_eq!(done.len(), 1);
        let t = cfg(None).timings;
        // Closed bank: tRCD + tCL + tBL
        assert_eq!(done[0].done_at, (t.t_rcd + t.t_cl + t.t_bl) as u64);
        assert_eq!(mc.stats().reads, 1);
        assert_eq!(mc.stats().activates, 1);
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut mc = MemoryController::new(cfg(None));
        mc.enqueue_read(req(1, 0, 5, 0));
        let first = run_until_done(&mut mc, 0, 1)[0].done_at;
        // Same row: hit.
        mc.enqueue_read(req(2, 0, 5, first));
        let hit = run_until_done(&mut mc, first, 1)[0].done_at - first;
        // Different row: miss (PRE + ACT).
        let base = first + hit + 200;
        mc.enqueue_read(req(3, 0, 9, base));
        let miss = run_until_done(&mut mc, base, 1)[0].done_at - base;
        assert!(hit < miss, "hit {hit} vs miss {miss}");
        assert_eq!(mc.stats().row_hits, 1);
        assert_eq!(mc.stats().row_misses, 2);
    }

    #[test]
    fn fr_fcfs_prefers_row_hits() {
        let mut mc = MemoryController::new(cfg(None));
        mc.enqueue_read(req(1, 0, 5, 0));
        let first = run_until_done(&mut mc, 0, 1)[0].done_at;
        // Enqueue a miss (older) and a hit (newer) on the same bank.
        mc.enqueue_read(req(2, 0, 9, first + 1));
        mc.enqueue_read(req(3, 0, 5, first + 2));
        let done = run_until_done(&mut mc, first + 2, 2);
        // The hit (id 3) must complete first despite arriving later.
        assert_eq!(done[0].id, 3);
        assert_eq!(done[1].id, 2);
    }

    #[test]
    fn refresh_blocks_banks_periodically() {
        // Steady stream of row misses on one bank, fed as queue space
        // allows; ~130 cycles per miss * 200 misses spans several tREFIs.
        fn run(refresh: Option<Ms>) -> (u64, u64) {
            let mut mc = MemoryController::new(cfg(refresh));
            let total = 200u64;
            let mut sent = 0u64;
            let mut done = Vec::new();
            let mut now = 0u64;
            while done.len() < total as usize && now < 1_000_000 {
                while sent < total && mc.can_accept_read() {
                    mc.enqueue_read(req(sent, 0, sent as u32, now)); // distinct rows: all misses
                    sent += 1;
                }
                done.extend(mc.tick(now));
                now += 1;
            }
            (done.last().unwrap().done_at, mc.stats().refreshes)
        }
        let with_ref = run(Some(Ms::new(64.0)));
        let without_ref = run(None);
        assert!(with_ref.1 > 0, "refreshes must have been issued");
        assert_eq!(without_ref.1, 0);
        assert!(
            with_ref.0 > without_ref.0,
            "refresh must slow the stream: {} vs {}",
            with_ref.0,
            without_ref.0
        );
    }

    #[test]
    fn closed_row_policy_never_hits() {
        let mut mc = MemoryController::new(cfg(None).with_closed_rows());
        // Same row back to back: open policy would hit; closed cannot.
        mc.enqueue_read(req(1, 0, 5, 0));
        let first = run_until_done(&mut mc, 0, 1)[0].done_at;
        mc.enqueue_read(req(2, 0, 5, first + 200));
        let _ = run_until_done(&mut mc, first + 200, 1);
        assert_eq!(mc.stats().row_hits, 0);
        assert_eq!(mc.stats().row_misses, 2);
    }

    #[test]
    fn writes_are_drained_and_counted() {
        let mut mc = MemoryController::new(cfg(None));
        for i in 0..10u64 {
            mc.enqueue_write(req(i, (i % 8) as u8, 3, 0));
        }
        let mut now = 0;
        while mc.pending() > 0 && now < 100_000 {
            let _ = mc.tick(now);
            now += 1;
        }
        assert_eq!(mc.pending(), 0);
        assert_eq!(mc.stats().writes, 10);
        assert_eq!(mc.stats().reads, 0);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let mut mc = MemoryController::new(cfg(None));
        for i in 0..64u64 {
            assert!(mc.can_accept_read());
            mc.enqueue_read(req(i, 0, 0, 0));
        }
        assert!(!mc.can_accept_read());
    }

    #[test]
    #[should_panic(expected = "read queue full")]
    fn overfull_queue_panics() {
        let mut mc = MemoryController::new(cfg(None));
        for i in 0..65u64 {
            mc.enqueue_read(req(i, 0, 0, 0));
        }
    }
}
