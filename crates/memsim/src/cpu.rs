//! A simple out-of-order core model: issue-width-limited retirement with an
//! instruction window and MSHR-limited outstanding misses (paper Table 2:
//! 3-wide issue, 128-entry window, 8 MSHRs/core).

use crate::config::SimConfig;
use crate::controller::{MemoryController, QueuedRequest};
use crate::trace::{Access, AccessTrace};

/// Per-core simulation state.
#[derive(Debug, Clone)]
pub struct Core {
    id: u8,
    trace: AccessTrace,
    pos: usize,
    /// Instructions retired so far.
    retired: u64,
    /// Instruction index of the next memory access in the stream.
    next_access_at: u64,
    /// Outstanding load misses: (instruction index at issue, request id).
    outstanding: Vec<(u64, u64)>,
    next_req_id: u64,
    /// Cycle at which `target` instructions were first reached.
    finished_at: Option<u64>,
    target: u64,
}

impl Core {
    /// Creates a core replaying `trace` until `target` instructions retire.
    ///
    /// # Panics
    /// Panics if `target == 0`.
    pub fn new(id: u8, trace: AccessTrace, target: u64) -> Self {
        assert!(target > 0, "target instruction count must be nonzero");
        let first_gap = trace.access(0).gap as u64;
        Self {
            id,
            trace,
            pos: 0,
            retired: 0,
            next_access_at: first_gap,
            outstanding: Vec::new(),
            next_req_id: 0,
            finished_at: None,
            target,
        }
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Cycle the instruction target was reached, if it has been.
    pub fn finished_at(&self) -> Option<u64> {
        self.finished_at
    }

    /// IPC over the measured region, if finished.
    pub fn ipc(&self) -> Option<f64> {
        self.finished_at
            .map(|c| self.target as f64 / (c.max(1)) as f64)
    }

    /// Delivers a completed read back to the core.
    pub fn complete(&mut self, id: u64) {
        self.outstanding.retain(|&(_, rid)| rid != id);
    }

    /// The retirement ceiling imposed by the instruction window: the oldest
    /// outstanding miss pins the window.
    fn window_limit(&self, cfg: &SimConfig) -> u64 {
        self.outstanding
            .iter()
            .map(|&(instr, _)| instr + cfg.window as u64)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Advances one cycle: retires instructions and issues memory accesses.
    pub fn tick(&mut self, now: u64, cfg: &SimConfig, mc: &mut MemoryController) {
        let mut budget = cfg.issue_width as u64;
        while budget > 0 {
            let limit = self.window_limit(cfg);
            if self.retired >= limit {
                break; // window full behind an outstanding miss
            }
            if self.retired < self.next_access_at {
                // Retire plain instructions up to the next access, the
                // window limit, or the cycle budget.
                let n = budget
                    .min(self.next_access_at - self.retired)
                    .min(limit - self.retired);
                self.retired += n;
                budget -= n;
                continue;
            }
            // The next instruction is the memory access itself.
            let access: Access = self.trace.access(self.pos);
            if access.is_write {
                if !mc.can_accept_write() {
                    break; // stall on write-queue backpressure
                }
                mc.enqueue_write(QueuedRequest {
                    core: self.id,
                    bank: access.bank,
                    row: access.row,
                    arrival: now,
                    id: self.alloc_id(),
                });
            } else {
                if self.outstanding.len() >= cfg.mshrs as usize || !mc.can_accept_read() {
                    break; // stall: no MSHR or queue space
                }
                let id = self.alloc_id();
                mc.enqueue_read(QueuedRequest {
                    core: self.id,
                    bank: access.bank,
                    row: access.row,
                    arrival: now,
                    id,
                });
                self.outstanding.push((self.retired, id));
            }
            self.retired += 1; // the access instruction itself
            budget -= 1;
            self.pos += 1;
            self.next_access_at = self.retired + self.trace.access(self.pos).gap as u64;
        }

        if self.finished_at.is_none() && self.retired >= self.target {
            self.finished_at = Some(now + 1);
        }
    }

    fn alloc_id(&mut self) -> u64 {
        // Ids are unique per (core, request): tag with the core id in the
        // high byte so ids never collide across cores.
        let id = (self.id as u64) << 56 | self.next_req_id;
        self.next_req_id += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn cfg() -> SimConfig {
        SimConfig::lpddr4_3200(8, None)
    }

    #[test]
    fn compute_only_region_retires_at_issue_width() {
        let cfg = cfg();
        let trace = AccessTrace::synthetic_uniform(1_000_000, 4, 0);
        let mut core = Core::new(0, trace, 700);
        let mut mc = MemoryController::new(cfg);
        for now in 0..200 {
            core.tick(now, &cfg, &mut mc);
        }
        // 7-wide: 100 cycles to retire 700.
        assert_eq!(core.finished_at(), Some(100));
        assert!((core.ipc().unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_core_is_slower() {
        let cfg = cfg();
        let light = AccessTrace::synthetic_uniform(500, 64, 1);
        let heavy = AccessTrace::synthetic_uniform(5, 64, 1);
        let mut ipcs = Vec::new();
        for trace in [light, heavy] {
            let mut core = Core::new(0, trace, 20_000);
            let mut mc = MemoryController::new(cfg);
            for now in 0..2_000_000 {
                for done in mc.tick(now) {
                    core.complete(done.id);
                }
                core.tick(now, &cfg, &mut mc);
                if core.finished_at().is_some() {
                    break;
                }
            }
            ipcs.push(core.ipc().expect("must finish"));
        }
        assert!(
            ipcs[1] < ipcs[0] * 0.5,
            "heavy {} vs light {}",
            ipcs[1],
            ipcs[0]
        );
    }

    #[test]
    fn mshr_limit_bounds_outstanding() {
        let cfg = cfg();
        // All loads back to back: outstanding must never exceed 8.
        let trace = AccessTrace::new(
            (0..32)
                .map(|i| Access {
                    gap: 0,
                    bank: (i % 8) as u8,
                    row: i as u32 * 7,
                    is_write: false,
                })
                .collect(),
        );
        // All-load stream is data-bus-bound (tBL = 8 cycles per read), so a
        // 2000-load target needs ≥16k cycles; give generous headroom.
        let mut core = Core::new(0, trace, 2_000);
        let mut mc = MemoryController::new(cfg);
        for now in 0..200_000 {
            for done in mc.tick(now) {
                core.complete(done.id);
            }
            core.tick(now, &cfg, &mut mc);
            assert!(core.outstanding.len() <= cfg.mshrs as usize);
            if core.finished_at().is_some() {
                break;
            }
        }
        assert!(core.finished_at().is_some(), "core must make progress");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_target() {
        Core::new(0, AccessTrace::synthetic_uniform(1, 1, 0), 0);
    }
}
