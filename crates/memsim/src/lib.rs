//! Cycle-level LPDDR4 memory-system simulator — the reproduction's
//! substitute for Ramulator (paper §7.2, Table 2).
//!
//! Simulates the paper's evaluated system: 4 cores (3-wide issue, 128-entry
//! instruction window, 8 MSHRs/core), a memory controller with 64-entry
//! read/write queues and FR-FCFS scheduling, and an LPDDR4-3200 rank of 8
//! banks with JEDEC timing, all-bank refresh whose `tRFC` scales with chip
//! density, and a configurable refresh interval.
//!
//! The model is deliberately at the fidelity Fig. 13 needs: performance
//! deltas across refresh intervals come from bank unavailability during
//! refresh (`tRFC` every `tREFI`), bandwidth contention, and row-buffer
//! locality — all of which are modeled per cycle. Command counts are
//! reported for the `reaper-power` DRAM power model.
//!
//! # Example
//!
//! ```
//! use reaper_memsim::{simulate, AccessTrace, SimConfig};
//! use reaper_dram_model::Ms;
//!
//! // A trivially memory-light trace: one access every 200 instructions.
//! let trace = AccessTrace::synthetic_uniform(200, 1000, 7);
//! let cfg = SimConfig::lpddr4_3200(8, Some(Ms::new(64.0)));
//! let result = simulate(&cfg, &[trace], 50_000);
//! assert!(result.ipc[0] > 0.5);
//! ```

// Deny-wall escapes (DESIGN.md §"Static analysis & determinism
// invariants"): `reaper-lint` enforces the finer-grained forms of these
// lints — P1 requires `invariant: `-prefixed expect messages and audits
// indexing in the hot-path crates, C1 bans bare casts there — with
// per-site `// lint: allow` markers. Clippy's blanket versions are
// allowed at the crate root so `-D warnings` stays green without
// annotating every audited site twice.
#![allow(clippy::expect_used, clippy::indexing_slicing, clippy::cast_possible_truncation)]
// Tests additionally assert exact float equality on purpose — bit-identical
// outputs are the determinism contract, and clippy.toml has no in-tests
// knob for these lints.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod address;
pub mod config;
pub mod controller;
pub mod cpu;
pub mod sim;
pub mod timing;
pub mod trace;

pub use address::{AddressMapper, Interleave, MappedAddress};
pub use config::{RefreshMode, RowPolicy, SimConfig};
pub use sim::{simulate, CommandStats, SimResult};
pub use timing::{LpddrTimings, UnsupportedDensity};
pub use trace::{Access, AccessTrace};

/// Weighted speedup (paper §7.2, [Snavely & Tullsen ASPLOS'00]):
/// `Σ IPC_shared_i / IPC_alone_i`.
///
/// # Panics
/// Panics if the slices differ in length, are empty, or any alone-IPC is
/// not positive.
pub fn weighted_speedup(shared: &[f64], alone: &[f64]) -> f64 {
    assert_eq!(shared.len(), alone.len(), "core count mismatch");
    assert!(!shared.is_empty(), "need at least one core");
    shared
        .iter()
        .zip(alone)
        .map(|(&s, &a)| {
            assert!(a > 0.0, "alone IPC must be positive");
            s / a
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_speedup_identity() {
        let ipc = [1.0, 2.0, 0.5];
        assert!((weighted_speedup(&ipc, &ipc) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_degradation() {
        let shared = [0.5, 1.0];
        let alone = [1.0, 2.0];
        assert!((weighted_speedup(&shared, &alone) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "core count mismatch")]
    fn weighted_speedup_length_mismatch() {
        weighted_speedup(&[1.0], &[1.0, 2.0]);
    }
}
