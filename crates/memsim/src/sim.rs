//! Top-level simulation driver and result types.

use crate::config::SimConfig;
use crate::controller::MemoryController;
use crate::cpu::Core;
use crate::trace::AccessTrace;

/// DRAM command counts accumulated over a simulation — the inputs to the
/// `reaper-power` DRAM power model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommandStats {
    /// Row activations issued.
    pub activates: u64,
    /// Read bursts issued.
    pub reads: u64,
    /// Write bursts issued.
    pub writes: u64,
    /// All-bank refresh commands (REFab) issued.
    pub refreshes: u64,
    /// Per-bank refresh commands (REFpb) issued.
    pub per_bank_refreshes: u64,
    /// Column accesses that hit an open row.
    pub row_hits: u64,
    /// Column accesses that required an activation.
    pub row_misses: u64,
}

impl CommandStats {
    /// Row-buffer hit rate over all column accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// The outcome of one multi-core simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Per-core IPC over each core's measured region.
    pub ipc: Vec<f64>,
    /// Total cycles simulated (until the last core finished).
    pub cycles: u64,
    /// DRAM command counts.
    pub stats: CommandStats,
}

impl SimResult {
    /// Sum of per-core IPCs (system throughput).
    pub fn total_ipc(&self) -> f64 {
        self.ipc.iter().sum()
    }

    /// Wall-clock seconds the simulated region represents.
    pub fn elapsed_secs(&self) -> f64 {
        self.cycles as f64 / crate::timing::CLOCK_HZ
    }
}

/// Runs `traces` (one per core) on the configured system until every core
/// retires `instructions_per_core`, and reports per-core IPC plus DRAM
/// command counts.
///
/// # Panics
/// Panics if `traces` is empty, `instructions_per_core == 0`, the config is
/// invalid, or a core fails to finish within a generous cycle bound
/// (indicating a scheduling deadlock — a bug, not a configuration issue).
pub fn simulate(cfg: &SimConfig, traces: &[AccessTrace], instructions_per_core: u64) -> SimResult {
    assert!(!traces.is_empty(), "need at least one trace");
    assert!(instructions_per_core > 0, "need a nonzero instruction target");
    // lint: allow(panic) documented `# Panics` contract of the entry point
    cfg.validate().expect("invalid sim config");

    let mut mc = MemoryController::new(*cfg);
    let mut cores: Vec<Core> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| Core::new(i as u8, t.clone(), instructions_per_core))
        .collect();

    // Generous bound: even a fully serialized miss stream finishes well
    // inside ~2000 cycles per instruction.
    let max_cycles = instructions_per_core
        .saturating_mul(2000)
        .saturating_add(1_000_000);

    let mut now = 0u64;
    while now < max_cycles {
        for done in mc.tick(now) {
            cores[done.core as usize].complete(done.id);
        }
        let mut all_done = true;
        for core in &mut cores {
            if core.finished_at().is_none() {
                core.tick(now, cfg, &mut mc);
                all_done &= core.finished_at().is_some();
            }
        }
        if all_done {
            break;
        }
        now += 1;
    }

    let ipc: Vec<f64> = cores
        .iter()
        .map(|c| {
            c.ipc()
                // lint: allow(panic) documented `# Panics`: non-termination is a simulator bug
                .unwrap_or_else(|| panic!("core failed to finish within {max_cycles} cycles"))
        })
        .collect();

    SimResult {
        ipc,
        cycles: now.min(max_cycles),
        stats: *mc.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reaper_dram_model::Ms;

    #[test]
    fn single_core_compute_bound() {
        let cfg = SimConfig::lpddr4_3200(8, None);
        let trace = AccessTrace::synthetic_uniform(10_000, 16, 0);
        let r = simulate(&cfg, &[trace], 100_000);
        assert!(r.ipc[0] > 6.0, "ipc {}", r.ipc[0]);
        assert!(r.total_ipc() == r.ipc[0]);
    }

    #[test]
    fn four_core_contention_lowers_ipc() {
        let cfg = SimConfig::lpddr4_3200(8, None);
        let solo = simulate(
            &cfg,
            &[AccessTrace::synthetic_uniform(20, 512, 0)],
            50_000,
        );
        let traces: Vec<AccessTrace> = (0..4)
            .map(|i| AccessTrace::synthetic_uniform(20, 512, i))
            .collect();
        let shared = simulate(&cfg, &traces, 50_000);
        assert_eq!(shared.ipc.len(), 4);
        assert!(
            shared.ipc[0] < solo.ipc[0],
            "shared {} vs solo {}",
            shared.ipc[0],
            solo.ipc[0]
        );
    }

    #[test]
    fn refresh_costs_performance_and_shows_in_stats() {
        let traces: Vec<AccessTrace> = (0..4)
            .map(|i| AccessTrace::synthetic_uniform(15, 512, i))
            .collect();
        let no_ref = simulate(&SimConfig::lpddr4_3200(64, None), &traces, 30_000);
        let with_ref = simulate(
            &SimConfig::lpddr4_3200(64, Some(Ms::new(64.0))),
            &traces,
            30_000,
        );
        assert_eq!(no_ref.stats.refreshes, 0);
        assert!(with_ref.stats.refreshes > 0);
        assert!(
            with_ref.total_ipc() < no_ref.total_ipc() * 0.97,
            "refresh must cost >3%: {} vs {}",
            with_ref.total_ipc(),
            no_ref.total_ipc()
        );
    }

    #[test]
    fn longer_refresh_interval_recovers_performance() {
        let traces: Vec<AccessTrace> = (0..4)
            .map(|i| AccessTrace::synthetic_uniform(15, 512, i))
            .collect();
        let base = simulate(
            &SimConfig::lpddr4_3200(64, Some(Ms::new(64.0))),
            &traces,
            30_000,
        );
        let extended = simulate(
            &SimConfig::lpddr4_3200(64, Some(Ms::new(1024.0))),
            &traces,
            30_000,
        );
        let none = simulate(&SimConfig::lpddr4_3200(64, None), &traces, 30_000);
        assert!(extended.total_ipc() > base.total_ipc());
        assert!(none.total_ipc() >= extended.total_ipc() * 0.999);
    }

    #[test]
    fn larger_chips_pay_more_for_refresh() {
        let traces: Vec<AccessTrace> = (0..4)
            .map(|i| AccessTrace::synthetic_uniform(15, 512, i))
            .collect();
        let gain = |gb: u32| {
            let with_ref = simulate(
                &SimConfig::lpddr4_3200(gb, Some(Ms::new(64.0))),
                &traces,
                30_000,
            );
            let no_ref = simulate(&SimConfig::lpddr4_3200(gb, None), &traces, 30_000);
            no_ref.total_ipc() / with_ref.total_ipc()
        };
        let small = gain(8);
        let large = gain(64);
        assert!(
            large > small,
            "64Gb gain {large} must exceed 8Gb gain {small}"
        );
    }

    #[test]
    fn per_bank_refresh_outperforms_all_bank_under_load() {
        let traces: Vec<AccessTrace> = (0..4)
            .map(|i| AccessTrace::synthetic_uniform(12, 512, i))
            .collect();
        let ab = simulate(
            &SimConfig::lpddr4_3200(64, Some(Ms::new(64.0))),
            &traces,
            30_000,
        );
        let pb = simulate(
            &SimConfig::lpddr4_3200(64, Some(Ms::new(64.0))).with_per_bank_refresh(),
            &traces,
            30_000,
        );
        assert_eq!(pb.stats.refreshes, 0);
        assert!(pb.stats.per_bank_refreshes > 0);
        // REFpb blocks one bank at a time for half the duration: total
        // blocked bank-time matches REFab, but it overlaps with service on
        // the other 7 banks, so throughput improves.
        assert!(
            pb.total_ipc() > ab.total_ipc(),
            "per-bank {} vs all-bank {}",
            pb.total_ipc(),
            ab.total_ipc()
        );
    }

    #[test]
    fn command_stats_are_consistent() {
        let cfg = SimConfig::lpddr4_3200(8, Some(Ms::new(64.0)));
        let trace = AccessTrace::synthetic_uniform(50, 256, 3);
        let r = simulate(&cfg, &[trace], 20_000);
        let s = r.stats;
        assert_eq!(s.row_hits + s.row_misses, s.reads + s.writes);
        assert_eq!(s.activates, s.row_misses);
        assert!(s.row_hit_rate() >= 0.0 && s.row_hit_rate() <= 1.0);
        assert!(r.elapsed_secs() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn rejects_empty_traces() {
        simulate(&SimConfig::lpddr4_3200(8, None), &[], 100);
    }
}
