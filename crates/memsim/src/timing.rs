//! LPDDR4-3200 timing parameters.
//!
//! Clocked at 1600 MHz (DDR 3200 MT/s); all parameters are in memory-clock
//! cycles. Values follow JEDEC LPDDR4 (the paper's Table 2 device) with
//! `tRFCab` scaling by chip density — the lever that makes refresh hurt
//! large chips more (paper §7.3.2).

/// LPDDR4 timing set, in memory-controller clock cycles @ 1600 MHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LpddrTimings {
    /// ACT to internal read/write delay (tRCD).
    pub t_rcd: u32,
    /// Precharge time (tRP).
    pub t_rp: u32,
    /// Row active minimum (tRAS).
    pub t_ras: u32,
    /// Read latency (tCL/RL).
    pub t_cl: u32,
    /// Write latency (WL).
    pub t_wl: u32,
    /// Data burst occupancy on the bus (BL16 on a x16 channel).
    pub t_bl: u32,
    /// Column-to-column delay (tCCD).
    pub t_ccd: u32,
    /// All-bank refresh cycle time (tRFCab) — density dependent.
    pub t_rfc_ab: u32,
    /// Per-bank refresh cycle time (tRFCpb) — roughly half of tRFCab
    /// (JEDEC LPDDR4: 140 ns vs 280 ns at 8 Gb).
    pub t_rfc_pb: u32,
    /// Write recovery (tWR).
    pub t_wr: u32,
}

/// Error returned by [`LpddrTimings::try_lpddr4_3200`] for densities with
/// no JEDEC (or extrapolated) tRFC data point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedDensity(pub u32);

impl core::fmt::Display for UnsupportedDensity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "unsupported LPDDR4 density: {} Gb", self.0)
    }
}

impl std::error::Error for UnsupportedDensity {}

/// Memory clock frequency in Hz (LPDDR4-3200: 1600 MHz).
pub const CLOCK_HZ: f64 = 1.6e9;

/// Number of all-bank refresh commands covering the array per refresh
/// window (JEDEC: 8192).
pub const REFRESHES_PER_WINDOW: u64 = 8192;

impl LpddrTimings {
    /// LPDDR4-3200 timings for a chip of `density_gbit` (8–64 Gb).
    ///
    /// `tRFCab`: JEDEC specifies 280 ns @ 8 Gb and 380 ns @ 16 Gb; the
    /// 32/64 Gb points extrapolate the historical trend the paper's refresh
    /// argument rests on (§1: refresh "scales unfavorably").
    ///
    /// # Panics
    /// Panics for unsupported densities (not one of 8, 16, 32, 64). Use
    /// [`Self::try_lpddr4_3200`] when the density is not statically known.
    pub fn lpddr4_3200(density_gbit: u32) -> Self {
        // lint: allow(panic) documented `# Panics` contract; try_lpddr4_3200 is the fallible API
        Self::try_lpddr4_3200(density_gbit).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Self::lpddr4_3200`].
    ///
    /// # Errors
    /// Returns [`UnsupportedDensity`] for densities other than 8, 16, 32,
    /// or 64 Gb.
    pub fn try_lpddr4_3200(density_gbit: u32) -> Result<Self, UnsupportedDensity> {
        let t_rfc_ns: f64 = match density_gbit {
            8 => 280.0,
            16 => 380.0,
            32 => 660.0,
            64 => 1250.0,
            other => return Err(UnsupportedDensity(other)),
        };
        Ok(Self {
            t_rcd: 29,
            t_rp: 34,
            t_ras: 67,
            t_cl: 28,
            t_wl: 14,
            t_bl: 8,
            t_ccd: 8,
            t_rfc_ab: ns_to_cycles(t_rfc_ns),
            t_rfc_pb: ns_to_cycles(t_rfc_ns * 0.5),
            t_wr: 29,
        })
    }

    /// Row-cycle time `tRC = tRAS + tRP`.
    pub fn t_rc(&self) -> u32 {
        self.t_ras + self.t_rp
    }

    /// Cycles between all-bank refresh commands for a refresh window of
    /// `window_ms` milliseconds (`tREFI = window / 8192`).
    ///
    /// # Panics
    /// Panics if `window_ms` is not positive.
    pub fn t_refi_cycles(&self, window_ms: f64) -> u64 {
        assert!(window_ms > 0.0, "refresh window must be positive");
        ((window_ms / 1e3) * CLOCK_HZ / REFRESHES_PER_WINDOW as f64) as u64
    }

    /// Fraction of time a rank is blocked by refresh at the given window:
    /// `tRFC / tREFI` — the first-order refresh penalty.
    pub fn refresh_blocked_fraction(&self, window_ms: f64) -> f64 {
        self.t_rfc_ab as f64 / self.t_refi_cycles(window_ms) as f64
    }
}

/// Converts nanoseconds to (rounded-up) memory-clock cycles, with a small
/// tolerance so exact multiples do not round up from float error.
pub fn ns_to_cycles(ns: f64) -> u32 {
    (ns * 1e-9 * CLOCK_HZ - 1e-6).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_variant_reports_unsupported_density() {
        assert!(LpddrTimings::try_lpddr4_3200(16).is_ok());
        let err = LpddrTimings::try_lpddr4_3200(12).unwrap_err();
        assert_eq!(err, UnsupportedDensity(12));
        assert!(err.to_string().contains("12 Gb"));
    }

    #[test]
    fn densities_have_growing_trfc() {
        let mut prev = 0;
        for gb in [8, 16, 32, 64] {
            let t = LpddrTimings::lpddr4_3200(gb);
            assert!(t.t_rfc_ab > prev, "{gb} Gb");
            prev = t.t_rfc_ab;
        }
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn rejects_odd_density() {
        LpddrTimings::lpddr4_3200(12);
    }

    #[test]
    fn ns_conversion() {
        // 1600 MHz: 1 cycle = 0.625ns
        assert_eq!(ns_to_cycles(0.625), 1);
        assert_eq!(ns_to_cycles(280.0), 448);
    }

    #[test]
    fn trefi_at_default_window() {
        let t = LpddrTimings::lpddr4_3200(8);
        // 64ms / 8192 = 7.8125us = 12500 cycles
        assert_eq!(t.t_refi_cycles(64.0), 12_500);
    }

    #[test]
    fn refresh_penalty_shape_matches_paper() {
        // At the default 64ms window, a 64Gb chip spends far more time
        // refreshing than an 8Gb chip; extending the window to 1024ms
        // shrinks both dramatically.
        let small = LpddrTimings::lpddr4_3200(8);
        let large = LpddrTimings::lpddr4_3200(64);
        let small64 = small.refresh_blocked_fraction(64.0);
        let large64 = large.refresh_blocked_fraction(64.0);
        assert!(large64 > 3.0 * small64);
        assert!((0.10..0.25).contains(&large64), "large64 = {large64}");
        assert!(large.refresh_blocked_fraction(1024.0) < large64 / 10.0);
    }

    #[test]
    fn per_bank_rfc_is_half_of_all_bank() {
        let t = LpddrTimings::lpddr4_3200(16);
        assert_eq!(t.t_rfc_pb, t.t_rfc_ab / 2);
    }

    #[test]
    fn trc_is_sum() {
        let t = LpddrTimings::lpddr4_3200(8);
        assert_eq!(t.t_rc(), t.t_ras + t.t_rp);
    }
}
