//! Memory access traces consumed by the simulator.
//!
//! Traces are finite and replayed cyclically, so workload generators (in
//! `reaper-workloads`) can produce compact representative streams.

/// One memory access in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Instructions executed since the previous access (the access itself
    /// counts as one more instruction).
    pub gap: u32,
    /// DRAM bank the access maps to.
    pub bank: u8,
    /// DRAM row within the bank.
    pub row: u32,
    /// True for a store miss (posted write), false for a load miss.
    pub is_write: bool,
}

/// A finite, cyclically-replayed access trace for one core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessTrace {
    accesses: Vec<Access>,
}

impl AccessTrace {
    /// Wraps an explicit access list.
    ///
    /// # Panics
    /// Panics if `accesses` is empty — a core with no memory accesses should
    /// simply not be simulated with a trace.
    pub fn new(accesses: Vec<Access>) -> Self {
        assert!(!accesses.is_empty(), "trace must contain at least one access");
        Self { accesses }
    }

    /// A synthetic trace with a fixed `gap` between accesses, walking rows
    /// sequentially — deterministic, for tests and doc examples. `seed`
    /// offsets the row walk so different cores do not alias.
    pub fn synthetic_uniform(gap: u32, len: usize, seed: u64) -> Self {
        assert!(len > 0, "trace must be nonempty");
        let accesses = (0..len)
            .map(|i| Access {
                gap,
                bank: ((i as u64 + seed) % 8) as u8,
                row: ((i as u64 * 13 + seed * 101) % 16_384) as u32,
                is_write: i % 4 == 3,
            })
            .collect();
        Self::new(accesses)
    }

    /// The access at position `i` modulo the trace length.
    pub fn access(&self, i: usize) -> Access {
        self.accesses[i % self.accesses.len()]
    }

    /// Trace length before replay.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Always false (constructor rejects empty traces).
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Average instructions per access — the inverse of the trace's
    /// misses-per-instruction intensity.
    pub fn mean_gap(&self) -> f64 {
        let total: u64 = self.accesses.iter().map(|a| a.gap as u64 + 1).sum();
        total as f64 / self.accesses.len() as f64
    }

    /// Fraction of consecutive same-bank accesses that hit the same row —
    /// a cheap row-locality figure for sanity checks.
    pub fn row_locality(&self) -> f64 {
        let mut same = 0usize;
        let mut pairs = 0usize;
        let mut last: [Option<u32>; 256] = [None; 256];
        for a in &self.accesses {
            if let Some(prev) = last[a.bank as usize] {
                pairs += 1;
                if prev == a.row {
                    same += 1;
                }
            }
            last[a.bank as usize] = Some(a.row);
        }
        if pairs == 0 {
            0.0
        } else {
            same as f64 / pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_replay() {
        let t = AccessTrace::synthetic_uniform(10, 5, 0);
        assert_eq!(t.len(), 5);
        assert_eq!(t.access(0), t.access(5));
        assert_eq!(t.access(3), t.access(13));
        assert!(!t.is_empty());
    }

    #[test]
    fn mean_gap_counts_the_access_instruction() {
        let t = AccessTrace::new(vec![
            Access { gap: 9, bank: 0, row: 0, is_write: false },
            Access { gap: 19, bank: 0, row: 0, is_write: false },
        ]);
        assert_eq!(t.mean_gap(), 15.0);
    }

    #[test]
    fn row_locality_bounds() {
        let hot = AccessTrace::new(vec![
            Access { gap: 1, bank: 0, row: 7, is_write: false };
            10
        ]);
        assert_eq!(hot.row_locality(), 1.0);
        let t = AccessTrace::synthetic_uniform(1, 100, 3);
        assert!(t.row_locality() < 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn rejects_empty() {
        AccessTrace::new(vec![]);
    }
}
