//! Property-based tests of the memory-system simulator.

use proptest::prelude::*;
use reaper_dram_model::Ms;
use reaper_memsim::{simulate, Access, AccessTrace, SimConfig};

fn any_trace(max_len: usize) -> impl Strategy<Value = AccessTrace> {
    proptest::collection::vec(
        (0u32..200, 0u8..8, 0u32..1000, any::<bool>()).prop_map(|(gap, bank, row, is_write)| {
            Access {
                gap,
                bank,
                row,
                is_write,
            }
        }),
        1..max_len,
    )
    .prop_map(AccessTrace::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ipc_never_exceeds_issue_width(trace in any_trace(64)) {
        let cfg = SimConfig::lpddr4_3200(8, Some(Ms::new(64.0)));
        let r = simulate(&cfg, &[trace], 5_000);
        prop_assert!(r.ipc[0] <= cfg.issue_width as f64 + 1e-9);
        prop_assert!(r.ipc[0] > 0.0);
    }

    #[test]
    fn command_stats_are_internally_consistent(trace in any_trace(64)) {
        let cfg = SimConfig::lpddr4_3200(16, Some(Ms::new(64.0)));
        let r = simulate(&cfg, &[trace], 5_000);
        let s = r.stats;
        prop_assert_eq!(s.row_hits + s.row_misses, s.reads + s.writes);
        prop_assert_eq!(s.activates, s.row_misses);
    }

    #[test]
    fn disabling_refresh_never_hurts(trace in any_trace(48)) {
        let with_ref = simulate(
            &SimConfig::lpddr4_3200(64, Some(Ms::new(64.0))),
            std::slice::from_ref(&trace),
            8_000,
        );
        let no_ref = simulate(
            &SimConfig::lpddr4_3200(64, None),
            std::slice::from_ref(&trace),
            8_000,
        );
        prop_assert!(no_ref.ipc[0] >= with_ref.ipc[0] * 0.999);
        prop_assert_eq!(no_ref.stats.refreshes, 0);
    }

    #[test]
    fn simulation_is_deterministic(trace in any_trace(48)) {
        let cfg = SimConfig::lpddr4_3200(8, Some(Ms::new(128.0)));
        let a = simulate(&cfg, std::slice::from_ref(&trace), 4_000);
        let b = simulate(&cfg, std::slice::from_ref(&trace), 4_000);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn data_bus_bandwidth_bounds_command_throughput(trace in any_trace(32)) {
        // Each burst occupies the shared bus for tBL cycles, so total
        // column accesses can never exceed cycles / tBL. (Note per-core IPC
        // may *rise* with a co-runner — FR-FCFS lets cores share row
        // activations constructively — so no per-core monotonicity holds.)
        let cfg = SimConfig::lpddr4_3200(8, None);
        let r = simulate(&cfg, &[trace.clone(), trace], 4_000);
        let bursts = r.stats.reads + r.stats.writes;
        let capacity = r.cycles / cfg.timings.t_bl as u64 + 1;
        prop_assert!(bursts <= capacity, "{bursts} bursts in {} cycles", r.cycles);
    }
}
