//! ArchShield-style fault remapping (paper §7.1.1; ArchShield
//! [Nair+ ISCA'13]).
//!
//! ArchShield reserves a fraction of DRAM (4 % in the paper) as a
//! *FaultMap* plus replication area. The memory controller checks every
//! access against the set of known-faulty word addresses; faulty words are
//! serviced from their replicated copies. REAPER's role is to keep the
//! FaultMap populated with fresh profiling results.

use std::collections::BTreeMap;

use reaper_core::FailureProfile;

/// Word granularity of fault tracking (64-bit words, matching the paper's
/// ECC word payload).
pub const WORD_BITS: u64 = 64;

/// ArchShield configuration: total words and the reserved-fraction budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchShield {
    total_words: u64,
    reserved_fraction: f64,
}

/// Error returned when a profile needs more replicated entries than the
/// reserved region can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityExceeded {
    /// Faulty words the profile requires.
    pub required: u64,
    /// Entries the reserved region can hold.
    pub available: u64,
}

impl core::fmt::Display for CapacityExceeded {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "fault map capacity exceeded: need {} entries, have {}",
            self.required, self.available
        )
    }
}

impl std::error::Error for CapacityExceeded {}

impl ArchShield {
    /// Creates an ArchShield over `total_words` 64-bit words, reserving
    /// `reserved_fraction` of capacity for the FaultMap and replicas (the
    /// paper uses 0.04).
    ///
    /// # Errors
    /// Returns `Err` if `total_words == 0` or the fraction is outside
    /// (0, 0.5].
    pub fn new(total_words: u64, reserved_fraction: f64) -> Result<Self, &'static str> {
        if total_words == 0 {
            return Err("total_words must be nonzero");
        }
        if !(reserved_fraction > 0.0 && reserved_fraction <= 0.5) {
            return Err("reserved_fraction must be in (0, 0.5]");
        }
        Ok(Self {
            total_words,
            reserved_fraction,
        })
    }

    /// Words available for replicated entries.
    pub fn replica_capacity(&self) -> u64 {
        (self.total_words as f64 * self.reserved_fraction) as u64
    }

    /// Usable (non-reserved) words exposed to the system.
    pub fn usable_words(&self) -> u64 {
        self.total_words - self.replica_capacity()
    }

    /// Installs a failure profile, producing a queryable fault map.
    ///
    /// Each failing *cell* marks its containing 64-bit word faulty; each
    /// faulty word consumes one replica entry.
    ///
    /// # Errors
    /// Returns [`CapacityExceeded`] if the profile's faulty-word count
    /// exceeds the reserved capacity — the signal that the target refresh
    /// interval (or the profiler's false-positive rate) is too aggressive
    /// for this mitigation mechanism (§6.3).
    pub fn with_profile(
        &self,
        profile: &FailureProfile,
    ) -> Result<InstalledFaultMap, CapacityExceeded> {
        let mut map = BTreeMap::new();
        let replica_base = self.usable_words();
        for cell in profile.iter() {
            let word = cell / WORD_BITS;
            let next = replica_base + map.len() as u64;
            map.entry(word).or_insert(next);
        }
        let required = map.len() as u64;
        let available = self.replica_capacity();
        if required > available {
            return Err(CapacityExceeded {
                required,
                available,
            });
        }
        Ok(InstalledFaultMap {
            shield: *self,
            map,
        })
    }
}

/// A populated FaultMap ready to translate accesses.
#[derive(Debug, Clone, PartialEq)]
pub struct InstalledFaultMap {
    shield: ArchShield,
    map: BTreeMap<u64, u64>,
}

impl InstalledFaultMap {
    /// Whether `word` is known-faulty (and therefore remapped).
    pub fn is_remapped(&self, word: u64) -> bool {
        self.map.contains_key(&word)
    }

    /// Translates a word access: faulty words go to their replica in the
    /// reserved region, healthy words pass through.
    pub fn translate(&self, word: u64) -> u64 {
        self.map.get(&word).copied().unwrap_or(word)
    }

    /// Number of remapped words.
    pub fn fault_count(&self) -> usize {
        self.map.len()
    }

    /// Fraction of the replica capacity in use — the paper's "more work for
    /// the mitigation mechanism" cost of false positives, made measurable.
    pub fn occupancy(&self) -> f64 {
        self.map.len() as f64 / self.shield.replica_capacity() as f64
    }

    /// The shield configuration this map was installed on.
    pub fn shield(&self) -> ArchShield {
        self.shield
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_split() {
        let s = ArchShield::new(1000, 0.04).unwrap();
        assert_eq!(s.replica_capacity(), 40);
        assert_eq!(s.usable_words(), 960);
    }

    #[test]
    fn remaps_only_faulty_words() {
        let s = ArchShield::new(1 << 20, 0.04).unwrap();
        // Cells 0..64 share word 0; cell 128 is word 2.
        let profile = FailureProfile::from_cells([0, 63, 128]);
        let m = s.with_profile(&profile).unwrap();
        assert_eq!(m.fault_count(), 2);
        assert!(m.is_remapped(0));
        assert!(!m.is_remapped(1));
        assert!(m.is_remapped(2));
        // Healthy word passes through; faulty words land in the reserved
        // region.
        assert_eq!(m.translate(1), 1);
        assert!(m.translate(0) >= s.usable_words());
        assert!(m.translate(2) >= s.usable_words());
        assert_ne!(m.translate(0), m.translate(2));
    }

    #[test]
    fn occupancy_reflects_load() {
        let s = ArchShield::new(6400, 0.25).unwrap(); // 1600 replicas
        let profile: FailureProfile = (0..400u64).map(|i| i * WORD_BITS).collect();
        let m = s.with_profile(&profile).unwrap();
        assert_eq!(m.fault_count(), 400);
        assert!((m.occupancy() - 0.25).abs() < 1e-9);
        assert_eq!(m.shield(), s);
    }

    #[test]
    fn capacity_exceeded_error() {
        let s = ArchShield::new(1000, 0.01).unwrap(); // 10 replicas
        let profile: FailureProfile = (0..20u64).map(|i| i * WORD_BITS).collect();
        let err = s.with_profile(&profile).unwrap_err();
        assert_eq!(err.required, 20);
        assert_eq!(err.available, 10);
        assert!(err.to_string().contains("capacity exceeded"));
    }

    #[test]
    fn constructor_validation() {
        assert!(ArchShield::new(0, 0.04).is_err());
        assert!(ArchShield::new(10, 0.0).is_err());
        assert!(ArchShield::new(10, 0.6).is_err());
    }
}
