//! A real 2-error-correcting BCH codec — the bit-level realization of the
//! "ECC-2" column of the paper's Table 1.
//!
//! Construction: BCH(127, 113, t=2) over GF(2⁷), shortened to protect a
//! 64-bit data word (78-bit codeword = 64 data + 14 parity). Encoding is
//! systematic (polynomial division by the degree-14 generator
//! `g(x) = m₁(x)·m₃(x)`); decoding computes the syndromes `S₁ = r(α)`,
//! `S₃ = r(α³)` and solves the (closed-form for t=2) error locator.

/// GF(2⁷) arithmetic tables over the primitive polynomial x⁷ + x³ + 1.
#[derive(Debug, Clone)]
struct Gf128 {
    exp: [u8; 254],
    log: [u8; 128],
}

/// Field order minus one (number of nonzero elements).
const N: usize = 127;
/// Primitive polynomial x⁷ + x³ + 1 (0b1000_1001).
const PRIM: u16 = 0x89;

impl Gf128 {
    fn new() -> Self {
        let mut exp = [0u8; 254];
        let mut log = [0u8; 128];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(N) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x80 != 0 {
                x ^= PRIM;
            }
        }
        for i in N..2 * N {
            exp[i] = exp[i - N];
        }
        Self { exp, log }
    }

    fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[(self.log[a as usize] as usize + self.log[b as usize] as usize) % N]
        }
    }

    fn inv(&self, a: u8) -> u8 {
        debug_assert!(a != 0, "inverse of zero");
        self.exp[(N - self.log[a as usize] as usize) % N]
    }

    fn pow_alpha(&self, e: usize) -> u8 {
        self.exp[e % N]
    }
}

/// Codeword length after shortening: 64 data + 14 parity bits.
pub const CODE_BITS: u32 = 78;
/// Parity bits.
pub const PARITY_BITS: u32 = 14;

/// Generator polynomial g(x) = m₁(x)·m₃(x) of BCH(127,113,t=2) over
/// x⁷+x³+1: m₁ = x⁷+x³+1, m₃ = x⁷+x³+x²+x+1.
/// Product, degree 14 (bit i = coefficient of xⁱ):
const GENERATOR: u32 = compute_generator();

const fn compute_generator() -> u32 {
    // carry-less multiply of the two minimal polynomials
    let m1: u32 = 0b1000_1001; // x^7 + x^3 + 1
    let m3: u32 = 0b1000_1111; // x^7 + x^3 + x^2 + x + 1
    let mut acc: u32 = 0;
    let mut i = 0;
    while i < 8 {
        if (m1 >> i) & 1 == 1 {
            acc ^= m3 << i;
        }
        i += 1;
    }
    acc
}

/// A 78-bit BCH codeword (low bits of a `u128`): bit 0..14 parity,
/// bit 14..78 data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BchCodeword(u128);

impl BchCodeword {
    /// Raw bits (low 78 significant).
    pub fn bits(self) -> u128 {
        self.0
    }

    /// Flips bit `pos` — error injection.
    ///
    /// # Panics
    /// Panics if `pos >= 78`.
    pub fn flip(self, pos: u32) -> Self {
        assert!(pos < CODE_BITS, "bit position out of range");
        Self(self.0 ^ (1u128 << pos))
    }
}

/// Decode result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BchOutcome {
    /// No error detected.
    Clean(u64),
    /// `1` or `2` bit errors corrected.
    Corrected(u64, u32),
    /// More errors than the code can correct (detected).
    Uncorrectable,
}

impl BchOutcome {
    /// The decoded payload, if readable.
    pub fn data(self) -> Option<u64> {
        match self {
            BchOutcome::Clean(d) | BchOutcome::Corrected(d, _) => Some(d),
            BchOutcome::Uncorrectable => None,
        }
    }
}

/// The BCH(127,113,t=2) codec shortened to 64 data bits.
#[derive(Debug, Clone)]
pub struct Bch2 {
    gf: Gf128,
}

impl Default for Bch2 {
    fn default() -> Self {
        Self::new()
    }
}

impl Bch2 {
    /// Builds the codec (precomputes the field tables).
    pub fn new() -> Self {
        Self { gf: Gf128::new() }
    }

    /// Encodes 64 data bits into a 78-bit systematic codeword.
    pub fn encode(&self, data: u64) -> BchCodeword {
        // c(x) = x^14 d(x) + (x^14 d(x) mod g(x))
        let shifted = (data as u128) << PARITY_BITS;
        let parity = Self::poly_mod(shifted);
        BchCodeword(shifted | parity as u128)
    }

    /// Remainder of `value` (bit i = coeff of xⁱ) modulo the generator.
    fn poly_mod(value: u128) -> u32 {
        let mut rem = value;
        let g = GENERATOR as u128;
        let gdeg = PARITY_BITS;
        while rem != 0 {
            let bit = 127 - rem.leading_zeros();
            if bit < gdeg {
                break;
            }
            rem ^= g << (bit - gdeg);
        }
        rem as u32
    }

    /// Evaluates the received word at α^j.
    fn syndrome(&self, word: u128, j: usize) -> u8 {
        let mut s = 0u8;
        for pos in 0..CODE_BITS as usize {
            if (word >> pos) & 1 == 1 {
                s ^= self.gf.pow_alpha(pos * j);
            }
        }
        s
    }

    fn extract(word: u128) -> u64 {
        (word >> PARITY_BITS) as u64
    }

    /// Decodes a possibly corrupted codeword: corrects up to 2 bit errors,
    /// detects (most) heavier corruption.
    pub fn decode(&self, cw: BchCodeword) -> BchOutcome {
        let word = cw.0;
        let s1 = self.syndrome(word, 1);
        let s3 = self.syndrome(word, 3);
        if s1 == 0 && s3 == 0 {
            return BchOutcome::Clean(Self::extract(word));
        }
        if s1 != 0 {
            // Single-error hypothesis: S3 == S1³ and the position is in
            // range.
            let s1_cubed = self.gf.mul(self.gf.mul(s1, s1), s1);
            if s3 == s1_cubed {
                let pos = self.gf.log[s1 as usize] as u32;
                if pos < CODE_BITS {
                    return BchOutcome::Corrected(Self::extract(word ^ (1u128 << pos)), 1);
                }
                return BchOutcome::Uncorrectable;
            }
            // Double-error: σ(x) = 1 + S₁x + ((S₃+S₁³)/S₁)x², roots x=α^{-i}.
            let c2 = self.gf.mul(s3 ^ s1_cubed, self.gf.inv(s1));
            let mut roots = Vec::with_capacity(2);
            for i in 0..CODE_BITS as usize {
                // test x = α^{-i}
                let x = self.gf.pow_alpha(N - i % N);
                let sigma =
                    1 ^ self.gf.mul(s1, x) ^ self.gf.mul(c2, self.gf.mul(x, x));
                if sigma == 0 {
                    roots.push(i as u32);
                    if roots.len() == 2 {
                        break;
                    }
                }
            }
            if roots.len() == 2 {
                let fixed = word ^ (1u128 << roots[0]) ^ (1u128 << roots[1]);
                // Accept only if the correction fully clears the syndromes.
                if self.syndrome(fixed, 1) == 0 && self.syndrome(fixed, 3) == 0 {
                    return BchOutcome::Corrected(Self::extract(fixed), 2);
                }
            }
        }
        // s1 == 0 with s3 != 0 is always ≥3 errors for this code.
        BchOutcome::Uncorrectable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generator_has_degree_14_and_correct_ends() {
        assert_eq!(31 - GENERATOR.leading_zeros(), 14);
        assert_eq!(GENERATOR & 1, 1); // constant term
    }

    #[test]
    fn generator_annihilates_alpha_and_alpha_cubed() {
        // g(α) = g(α³) = 0 — the defining property of the t=2 BCH code.
        let gf = Gf128::new();
        for j in [1usize, 3] {
            let mut acc = 0u8;
            for i in 0..=14usize {
                if (GENERATOR >> i) & 1 == 1 {
                    acc ^= gf.pow_alpha(i * j);
                }
            }
            assert_eq!(acc, 0, "g(α^{j}) != 0");
        }
    }

    #[test]
    fn roundtrip_basic_values() {
        let bch = Bch2::new();
        for &d in &[0u64, 1, u64::MAX, 0xDEAD_BEEF_0BAD_F00D] {
            assert_eq!(bch.decode(bch.encode(d)), BchOutcome::Clean(d), "{d:#x}");
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        let bch = Bch2::new();
        let data = 0x0123_4567_89AB_CDEFu64;
        let cw = bch.encode(data);
        for pos in 0..CODE_BITS {
            match bch.decode(cw.flip(pos)) {
                BchOutcome::Corrected(d, n) => {
                    assert_eq!(d, data, "flip {pos}");
                    assert_eq!(n, 1);
                }
                other => panic!("flip {pos}: {other:?}"),
            }
        }
    }

    #[test]
    fn every_double_bit_error_is_corrected() {
        let bch = Bch2::new();
        let data = 0xA5A5_5A5A_0F0F_F0F0u64;
        let cw = bch.encode(data);
        for a in 0..CODE_BITS {
            for b in (a + 1)..CODE_BITS {
                match bch.decode(cw.flip(a).flip(b)) {
                    BchOutcome::Corrected(d, n) => {
                        assert_eq!(d, data, "flips {a},{b}");
                        assert_eq!(n, 2);
                    }
                    other => panic!("flips {a},{b}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn triple_errors_never_decode_clean_with_wrong_data() {
        let bch = Bch2::new();
        let data = 0x1111_2222_3333_4444u64;
        let cw = bch.encode(data);
        let mut miscorrected = 0u32;
        let mut detected = 0u32;
        // Sample of triples (exhaustive is 76k — sample deterministically).
        for a in (0..CODE_BITS).step_by(7) {
            for b in ((a + 1)..CODE_BITS).step_by(5) {
                for c in ((b + 1)..CODE_BITS).step_by(3) {
                    match bch.decode(cw.flip(a).flip(b).flip(c)) {
                        BchOutcome::Clean(d) => {
                            assert_eq!(d, data, "silent corruption at {a},{b},{c}")
                        }
                        BchOutcome::Corrected(d, _) => {
                            if d != data {
                                miscorrected += 1;
                            }
                        }
                        BchOutcome::Uncorrectable => detected += 1,
                    }
                }
            }
        }
        // Beyond design distance the code may miscorrect, but a healthy
        // decoder detects a substantial share of triples.
        assert!(detected > 0, "no triple detected (mis {miscorrected})");
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data: u64) {
            let bch = Bch2::new();
            prop_assert_eq!(bch.decode(bch.encode(data)), BchOutcome::Clean(data));
        }

        #[test]
        fn prop_two_errors_corrected(data: u64, a in 0u32..78, b in 0u32..78) {
            prop_assume!(a != b);
            let bch = Bch2::new();
            let cw = bch.encode(data).flip(a).flip(b);
            prop_assert_eq!(bch.decode(cw).data(), Some(data));
        }

        #[test]
        fn prop_codeword_distance_at_least_5(a: u64, b: u64) {
            prop_assume!(a != b);
            let bch = Bch2::new();
            let d = (bch.encode(a).bits() ^ bch.encode(b).bits()).count_ones();
            prop_assert!(d >= 5, "distance {d}");
        }
    }
}
