//! A simple Bloom filter, as used by RAIDR to store weak-row bins
//! compactly (paper §3.1; RAIDR [Liu+ ISCA'12] stores its retention bins in
//! Bloom filters so membership tests never miss a weak row).

/// A fixed-size Bloom filter over `u64` keys with `k` hash functions.
///
/// Guarantees no false negatives; the false-positive probability is the
/// classic `(1 − e^{−kn/m})^k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    hashes: u32,
    inserted: usize,
}

impl BloomFilter {
    /// Creates a filter with `num_bits` bits and `hashes` hash functions.
    ///
    /// # Panics
    /// Panics if `num_bits == 0` or `hashes == 0`.
    pub fn new(num_bits: u64, hashes: u32) -> Self {
        assert!(num_bits > 0, "filter must have at least one bit");
        assert!(hashes > 0, "filter needs at least one hash");
        Self {
            bits: vec![0; num_bits.div_ceil(64) as usize],
            num_bits,
            hashes,
            inserted: 0,
        }
    }

    /// Sizes a filter for `expected_items` at roughly `target_fpr` false
    /// positives, using the standard `m = −n ln p / (ln 2)²`,
    /// `k = (m/n) ln 2` formulas.
    ///
    /// # Panics
    /// Panics if `expected_items == 0` or `target_fpr` is outside (0, 1).
    pub fn with_capacity(expected_items: usize, target_fpr: f64) -> Self {
        assert!(expected_items > 0, "expected_items must be nonzero");
        assert!(
            target_fpr > 0.0 && target_fpr < 1.0,
            "target_fpr must be in (0, 1)"
        );
        let n = expected_items as f64;
        let ln2 = core::f64::consts::LN_2;
        let m = (-n * target_fpr.ln() / (ln2 * ln2)).ceil().max(64.0);
        let k = ((m / n) * ln2).round().clamp(1.0, 16.0);
        Self::new(m as u64, k as u32)
    }

    fn hash(&self, key: u64, i: u32) -> u64 {
        // Double hashing: h1 + i*h2 over two splitmix-derived hashes.
        let h1 = splitmix64(key);
        let h2 = splitmix64(key ^ 0x9E37_79B9_7F4A_7C15) | 1;
        h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.num_bits
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        for i in 0..self.hashes {
            let b = self.hash(key, i);
            self.bits[(b / 64) as usize] |= 1u64 << (b % 64);
        }
        self.inserted += 1;
    }

    /// Tests membership: false means *definitely not present*; true means
    /// present or a false positive.
    pub fn contains(&self, key: u64) -> bool {
        (0..self.hashes).all(|i| {
            let b = self.hash(key, i);
            self.bits[(b / 64) as usize] & (1u64 << (b % 64)) != 0
        })
    }

    /// Number of keys inserted so far.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Size of the filter in bits.
    pub fn num_bits(&self) -> u64 {
        self.num_bits
    }

    /// Expected false-positive rate at the current load:
    /// `(1 − e^{−kn/m})^k`.
    pub fn expected_fpr(&self) -> f64 {
        let k = self.hashes as f64;
        let n = self.inserted as f64;
        let m = self.num_bits as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for k in 0..1000u64 {
            f.insert(k * 7919);
        }
        for k in 0..1000u64 {
            assert!(f.contains(k * 7919), "lost key {k}");
        }
        assert_eq!(f.inserted(), 1000);
    }

    #[test]
    fn false_positive_rate_near_target() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for k in 0..1000u64 {
            f.insert(k);
        }
        let fp = (1_000_000..1_100_000u64).filter(|&k| f.contains(k)).count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.03, "observed FPR {rate}");
        assert!(f.expected_fpr() < 0.02);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(1024, 4);
        assert!(!f.contains(42));
        assert_eq!(f.expected_fpr(), 0.0);
        assert_eq!(f.num_bits(), 1024);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn rejects_zero_bits() {
        BloomFilter::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "target_fpr")]
    fn rejects_bad_fpr() {
        BloomFilter::with_capacity(10, 1.5);
    }
}
