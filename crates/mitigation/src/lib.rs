//! Retention-failure **mitigation mechanisms** that consume REAPER's
//! failure profiles (paper §3.1, §7.1).
//!
//! Reach profiling produces a set of failing cells; the system then needs a
//! mechanism that makes those cells harmless at the extended refresh
//! interval. The paper integrates REAPER with two mechanisms from prior
//! work and argues ECC is needed for the failures profiling misses; this
//! crate implements all three, bit-for-bit where the mechanism is a code:
//!
//! * [`secded`] — a real Hamming-plus-parity SECDED (72,64) codec: encode,
//!   single-error correction, double-error detection,
//! * [`bch`] — a real BCH(127,113,t=2) codec shortened to 64 data bits:
//!   the bit-level form of Table 1's ECC-2 column,
//! * [`archshield`] — an ArchShield-style FaultMap: faulty words are
//!   recorded in a reserved DRAM region and remapped to replicated entries
//!   (§7.1.1),
//! * [`raidr`] — RAIDR-style multirate refresh: rows are binned by the
//!   retention class of their weakest cell, with Bloom filters holding the
//!   weak bins, and refresh-operation savings computed per bin (§7.1.2),
//! * [`rowmap`] — the simple address-map-out scheme the paper's
//!   introduction sketches: rows with failing cells are remapped to spares,
//! * [`scrubber`] — AVATAR-style passive ECC scrubbing (§3.2), implemented
//!   so the paper's active-vs-passive profiling argument can be
//!   demonstrated experimentally.
//!
//! # Example: protect a profile with ArchShield
//!
//! ```
//! use reaper_core::FailureProfile;
//! use reaper_mitigation::archshield::ArchShield;
//!
//! let profile = FailureProfile::from_cells([100, 200, 300_000]);
//! let shield = ArchShield::new(1 << 20, 0.04).unwrap();
//! let installed = shield.with_profile(&profile).unwrap();
//! assert!(installed.is_remapped(100 / 64));
//! assert!(!installed.is_remapped(5));
//! ```

// Deny-wall escapes (DESIGN.md §"Static analysis & determinism
// invariants"): `reaper-lint` enforces the finer-grained forms of these
// lints — P1 requires `invariant: `-prefixed expect messages and audits
// indexing in the hot-path crates, C1 bans bare casts there — with
// per-site `// lint: allow` markers. Clippy's blanket versions are
// allowed at the crate root so `-D warnings` stays green without
// annotating every audited site twice.
#![allow(clippy::indexing_slicing, clippy::cast_possible_truncation)]
// Tests additionally assert exact float equality on purpose — bit-identical
// outputs are the determinism contract, and clippy.toml has no in-tests
// knob for these lints.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod archshield;
pub mod bch;
pub mod bloom;
pub mod raidr;
pub mod rowmap;
pub mod scrubber;
pub mod secded;

pub use archshield::ArchShield;
pub use bch::{Bch2, BchCodeword, BchOutcome};
pub use bloom::BloomFilter;
pub use raidr::Raidr;
pub use rowmap::RowRemapper;
pub use scrubber::{EccScrubber, ScrubReport};
pub use secded::{Codeword, DecodeOutcome, Secded};
