//! RAIDR-style multirate refresh (paper §7.1.2; RAIDR [Liu+ ISCA'12]).
//!
//! RAIDR bins DRAM rows by the retention class of their weakest cell and
//! refreshes each bin at its own rate: weak rows at the default 64 ms,
//! most rows at a multiple of it. The weak bins are stored in Bloom filters
//! (no false negatives ⇒ never under-refresh; false positives merely
//! over-refresh a few rows). REAPER keeps the bins current by re-profiling.

use reaper_core::FailureProfile;
use reaper_dram_model::{ChipGeometry, Ms};

use crate::bloom::BloomFilter;

/// A retention bin: rows whose weakest cell requires `interval` refresh.
#[derive(Debug, Clone)]
struct Bin {
    interval: Ms,
    filter: BloomFilter,
}

/// A RAIDR-style multirate refresh controller.
///
/// Built from per-interval failure profiles: a row lands in the fastest bin
/// whose interval it *fails beyond* — i.e. a row with a cell failing at
/// 256 ms must be refreshed at 128 ms or faster.
#[derive(Debug, Clone)]
pub struct Raidr {
    geometry: ChipGeometry,
    /// Bins sorted fastest (shortest interval) first; the last is the
    /// default bin holding all unlisted rows.
    bins: Vec<Bin>,
    default_interval: Ms,
}

impl Raidr {
    /// Builds the controller from `(interval, profile)` pairs: `profile`
    /// holds the cells observed to fail at `interval`. Rows containing a
    /// cell failing at interval `t` are assigned refresh interval `t/2`
    /// (the next-faster power-of-two bin, mirroring RAIDR's 64/128/256 ms
    /// scheme). Rows in no profile refresh at `default_interval`.
    ///
    /// # Panics
    /// Panics if `profiles` is empty or intervals are not strictly
    /// increasing.
    pub fn build(
        geometry: ChipGeometry,
        profiles: &[(Ms, &FailureProfile)],
        default_interval: Ms,
    ) -> Self {
        assert!(!profiles.is_empty(), "need at least one profile");
        for w in profiles.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "profile intervals must be strictly increasing"
            );
        }
        let row_bits = geometry.row_bits() as u64;
        let mut assigned = std::collections::BTreeSet::new();
        let mut bins = Vec::new();
        for (interval, profile) in profiles {
            let mut filter =
                BloomFilter::with_capacity(profile.len().max(1), 0.001);
            let mut any = false;
            for cell in profile.iter() {
                let row = cell / row_bits;
                if assigned.insert(row) {
                    filter.insert(row);
                    any = true;
                }
            }
            let _ = any;
            bins.push(Bin {
                interval: *interval / 2.0,
                filter,
            });
        }
        Self {
            geometry,
            bins,
            default_interval,
        }
    }

    /// The refresh interval assigned to `row` (global row index).
    pub fn refresh_interval_for_row(&self, row: u64) -> Ms {
        for bin in &self.bins {
            if bin.filter.contains(row) {
                return bin.interval;
            }
        }
        self.default_interval
    }

    /// Number of retention bins (excluding the default).
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Rows recorded in bin `i` (insertions, not Bloom estimates).
    ///
    /// # Panics
    /// Panics if `i >= bin_count()`.
    pub fn bin_rows(&self, i: usize) -> usize {
        self.bins[i].filter.inserted()
    }

    /// Refresh operations per second across the whole chip under this
    /// binning. Weak rows refresh at their bin rate; everything else at the
    /// default rate.
    pub fn refreshes_per_second(&self) -> f64 {
        let total_rows = self.geometry.total_rows() as f64;
        let binned: f64 = self.bins.iter().map(|b| b.filter.inserted() as f64).sum();
        let mut rate = (total_rows - binned) / self.default_interval.as_secs();
        for bin in &self.bins {
            rate += bin.filter.inserted() as f64 / bin.interval.as_secs();
        }
        rate
    }

    /// Fraction of refresh operations saved versus refreshing every row at
    /// the JEDEC 64 ms baseline — RAIDR's headline benefit, which REAPER's
    /// online profiles keep safe to claim.
    pub fn refresh_savings_vs_64ms(&self) -> f64 {
        let baseline = self.geometry.total_rows() as f64 / Ms::new(64.0).as_secs();
        1.0 - self.refreshes_per_second() / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> ChipGeometry {
        ChipGeometry::small()
    }

    fn cell_in_row(geometry: ChipGeometry, row: u64, col: u64) -> u64 {
        row * geometry.row_bits() as u64 + col
    }

    #[test]
    fn rows_land_in_correct_bins() {
        let g = geometry();
        let p128 = FailureProfile::from_cells([cell_in_row(g, 10, 3)]);
        let p256 = FailureProfile::from_cells([cell_in_row(g, 20, 5)]);
        let raidr = Raidr::build(
            g,
            &[(Ms::new(128.0), &p128), (Ms::new(256.0), &p256)],
            Ms::new(1024.0),
        );
        assert_eq!(raidr.bin_count(), 2);
        // Row 10 fails at 128ms -> refresh at 64ms.
        assert_eq!(raidr.refresh_interval_for_row(10), Ms::new(64.0));
        // Row 20 fails at 256ms -> refresh at 128ms.
        assert_eq!(raidr.refresh_interval_for_row(20), Ms::new(128.0));
        // Other rows use the default.
        assert_eq!(raidr.refresh_interval_for_row(99), Ms::new(1024.0));
    }

    #[test]
    fn weakest_bin_wins_for_multi_interval_rows() {
        let g = geometry();
        // Same row fails at both 128ms and 256ms — must stay in the fast bin.
        let p128 = FailureProfile::from_cells([cell_in_row(g, 7, 0)]);
        let p256 = FailureProfile::from_cells([cell_in_row(g, 7, 1)]);
        let raidr = Raidr::build(
            g,
            &[(Ms::new(128.0), &p128), (Ms::new(256.0), &p256)],
            Ms::new(1024.0),
        );
        assert_eq!(raidr.refresh_interval_for_row(7), Ms::new(64.0));
        assert_eq!(raidr.bin_rows(0), 1);
        assert_eq!(raidr.bin_rows(1), 0);
    }

    #[test]
    fn refresh_savings_scale_with_default_interval() {
        let g = geometry();
        let p = FailureProfile::from_cells([cell_in_row(g, 1, 0)]);
        let slow = Raidr::build(g, &[(Ms::new(128.0), &p)], Ms::new(1024.0));
        // Nearly every row refreshes 16x less often: ~93.7% savings.
        let savings = slow.refresh_savings_vs_64ms();
        assert!((0.90..0.95).contains(&savings), "savings {savings}");
        let fast = Raidr::build(g, &[(Ms::new(128.0), &p)], Ms::new(256.0));
        assert!(fast.refresh_savings_vs_64ms() < savings);
    }

    #[test]
    fn never_under_refreshes() {
        // Bloom filters can only over-assign rows to faster bins; every row
        // with a known failure must get an interval no longer than half its
        // failing interval.
        let g = geometry();
        let cells: Vec<u64> = (0..200).map(|i| cell_in_row(g, i * 3, i)).collect();
        let p = FailureProfile::from_cells(cells.iter().copied());
        let raidr = Raidr::build(g, &[(Ms::new(512.0), &p)], Ms::new(2048.0));
        for &c in &cells {
            let row = c / g.row_bits() as u64;
            assert!(raidr.refresh_interval_for_row(row) <= Ms::new(256.0));
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_intervals() {
        let g = geometry();
        let p = FailureProfile::new();
        Raidr::build(
            g,
            &[(Ms::new(256.0), &p), (Ms::new(128.0), &p)],
            Ms::new(1024.0),
        );
    }

    #[test]
    #[should_panic(expected = "at least one profile")]
    fn rejects_empty_profiles() {
        Raidr::build(geometry(), &[], Ms::new(1024.0));
    }
}
