//! Row map-out: the simple mitigation the paper's introduction sketches —
//! "the DRAM memory controller maps addresses with failing cells out of the
//! system address space", backed by spare rows.

use std::collections::BTreeMap;

use reaper_core::FailureProfile;
use reaper_dram_model::ChipGeometry;

/// A row remapper with a fixed pool of spare rows.
///
/// Rows containing any profiled failing cell are redirected to spares; the
/// mechanism is intolerant of high false-positive rates (each false positive
/// burns a whole spare row), which is exactly the §6.1.2 scenario where a
/// low-FPR reach point must be chosen.
#[derive(Debug, Clone, PartialEq)]
pub struct RowRemapper {
    geometry: ChipGeometry,
    spare_rows: u64,
    map: BTreeMap<u64, u64>,
}

/// Error returned when the profile needs more spares than exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfSpares {
    /// Rows that needed remapping.
    pub required: u64,
    /// Spare rows available.
    pub available: u64,
}

impl core::fmt::Display for OutOfSpares {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "out of spare rows: need {}, have {}",
            self.required, self.available
        )
    }
}

impl std::error::Error for OutOfSpares {}

impl RowRemapper {
    /// Creates a remapper with `spare_rows` spares. Spare row IDs are
    /// allocated past the end of the normal row space.
    ///
    /// # Panics
    /// Panics if `spare_rows == 0`.
    pub fn new(geometry: ChipGeometry, spare_rows: u64) -> Self {
        assert!(spare_rows > 0, "need at least one spare row");
        Self {
            geometry,
            spare_rows,
            map: BTreeMap::new(),
        }
    }

    /// Installs a profile, replacing any previous mapping.
    ///
    /// # Errors
    /// Returns [`OutOfSpares`] (leaving the previous mapping intact) if the
    /// profile touches more rows than there are spares.
    pub fn install_profile(&mut self, profile: &FailureProfile) -> Result<(), OutOfSpares> {
        let row_bits = self.geometry.row_bits() as u64;
        let mut rows: Vec<u64> = profile.iter().map(|c| c / row_bits).collect();
        rows.sort_unstable();
        rows.dedup();
        if rows.len() as u64 > self.spare_rows {
            return Err(OutOfSpares {
                required: rows.len() as u64,
                available: self.spare_rows,
            });
        }
        let base = self.geometry.total_rows();
        self.map = rows
            .into_iter()
            .enumerate()
            .map(|(i, row)| (row, base + i as u64))
            .collect();
        Ok(())
    }

    /// Translates a row access through the map.
    pub fn translate(&self, row: u64) -> u64 {
        self.map.get(&row).copied().unwrap_or(row)
    }

    /// Whether `row` is mapped out.
    pub fn is_mapped_out(&self, row: u64) -> bool {
        self.map.contains_key(&row)
    }

    /// Rows currently mapped out.
    pub fn mapped_count(&self) -> usize {
        self.map.len()
    }

    /// Fraction of spares consumed.
    pub fn spare_occupancy(&self) -> f64 {
        self.map.len() as f64 / self.spare_rows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> ChipGeometry {
        ChipGeometry::small()
    }

    #[test]
    fn remaps_failing_rows_to_spares() {
        let g = geometry();
        let mut r = RowRemapper::new(g, 16);
        let row_bits = g.row_bits() as u64;
        let profile = FailureProfile::from_cells([5 * row_bits + 1, 5 * row_bits + 2, 9 * row_bits]);
        r.install_profile(&profile).unwrap();
        assert_eq!(r.mapped_count(), 2);
        assert!(r.is_mapped_out(5));
        assert!(r.is_mapped_out(9));
        assert!(!r.is_mapped_out(6));
        assert!(r.translate(5) >= g.total_rows());
        assert_eq!(r.translate(6), 6);
        assert_ne!(r.translate(5), r.translate(9));
        assert_eq!(r.spare_occupancy(), 2.0 / 16.0);
    }

    #[test]
    fn out_of_spares_preserves_previous_map() {
        let g = geometry();
        let mut r = RowRemapper::new(g, 2);
        let row_bits = g.row_bits() as u64;
        r.install_profile(&FailureProfile::from_cells([row_bits]))
            .unwrap();
        assert!(r.is_mapped_out(1));
        let too_big: FailureProfile = (0..5u64).map(|i| i * row_bits).collect();
        let err = r.install_profile(&too_big).unwrap_err();
        assert_eq!(err.required, 5);
        assert_eq!(err.available, 2);
        assert!(err.to_string().contains("out of spare rows"));
        // Previous mapping intact.
        assert!(r.is_mapped_out(1));
        assert_eq!(r.mapped_count(), 1);
    }

    #[test]
    fn reinstall_replaces_map() {
        let g = geometry();
        let mut r = RowRemapper::new(g, 4);
        let row_bits = g.row_bits() as u64;
        r.install_profile(&FailureProfile::from_cells([row_bits]))
            .unwrap();
        r.install_profile(&FailureProfile::from_cells([3 * row_bits]))
            .unwrap();
        assert!(!r.is_mapped_out(1));
        assert!(r.is_mapped_out(3));
    }

    #[test]
    #[should_panic(expected = "at least one spare")]
    fn rejects_zero_spares() {
        RowRemapper::new(geometry(), 0);
    }
}
