//! AVATAR-style ECC scrubbing (paper §3.2) — the *passive* profiling
//! approach REAPER argues against, implemented so the argument can be
//! demonstrated.
//!
//! An ECC scrubber periodically walks memory, uses SECDED to correct
//! single-bit errors, and records which words failed — building a failure
//! profile as a side effect of normal operation. Its weakness (§3.2): it
//! only observes failures under the data the application *happens* to
//! store. A row can pass every scrub and then receive "a new unfavorable
//! data pattern, which leads to uncorrectable errors in the next period."

use std::collections::BTreeMap;

use reaper_core::FailureProfile;
use reaper_dram_model::{Celsius, DataPattern, Ms};
use reaper_retention::SimulatedChip;

/// Result of one scrub pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Cells whose single-bit errors SECDED corrected this pass.
    pub corrected_cells: Vec<u64>,
    /// 64-bit words with ≥2 simultaneous failing bits — uncorrectable by
    /// SECDED (detected, data lost).
    pub uncorrectable_words: Vec<u64>,
}

impl ScrubReport {
    /// Whether the pass completed without data loss.
    pub fn is_clean(&self) -> bool {
        self.uncorrectable_words.is_empty()
    }
}

/// A passive ECC scrubber accumulating a failure profile from observed
/// correctable errors.
#[derive(Debug, Clone, Default)]
pub struct EccScrubber {
    profile: FailureProfile,
    scrubs: u64,
    uncorrectable_events: u64,
}

impl EccScrubber {
    /// Creates an idle scrubber with an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Performs one scrub pass: the chip has been holding `resident_data`
    /// (the application's in-memory data, abstracted as a pattern) at
    /// `interval`/`temp` since the previous scrub; the scrubber reads every
    /// word, corrects what SECDED can, and records the failures it saw.
    ///
    /// Returns the pass report; the accumulated profile grows by the
    /// observed (correctable or not) failing cells.
    pub fn scrub(
        &mut self,
        chip: &mut SimulatedChip,
        resident_data: DataPattern,
        interval: Ms,
        temp: Celsius,
    ) -> ScrubReport {
        let outcome = chip.retention_trial(resident_data, interval, temp);
        // BTreeMap so the report vectors are built in key order — the
        // trailing sorts become no-ops but keep the postcondition explicit.
        let mut by_word: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for &cell in outcome.failures() {
            by_word.entry(cell / 64).or_default().push(cell);
        }
        let mut report = ScrubReport::default();
        for (word, cells) in by_word {
            if cells.len() == 1 {
                report.corrected_cells.push(cells[0]);
            } else {
                report.uncorrectable_words.push(word);
                self.uncorrectable_events += 1;
            }
            // Either way the scrubber now knows these cells are weak under
            // the resident data.
            self.profile.extend(cells);
        }
        report.corrected_cells.sort_unstable();
        report.uncorrectable_words.sort_unstable();
        self.scrubs += 1;
        report
    }

    /// The failure profile accumulated so far.
    pub fn profile(&self) -> &FailureProfile {
        &self.profile
    }

    /// Scrub passes performed.
    pub fn scrubs(&self) -> u64 {
        self.scrubs
    }

    /// Words lost to multi-bit errors across all passes.
    pub fn uncorrectable_events(&self) -> u64 {
        self.uncorrectable_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reaper_dram_model::Vendor;
    use reaper_retention::RetentionConfig;

    fn chip() -> SimulatedChip {
        SimulatedChip::new(
            RetentionConfig::for_vendor(Vendor::B).with_capacity_scale(1, 8),
            0x5C,
        )
    }

    fn t60() -> Celsius {
        Celsius::new(60.0)
    }

    #[test]
    fn scrubbing_accumulates_a_profile() {
        let mut chip = chip();
        let mut scrubber = EccScrubber::new();
        let mut sizes = Vec::new();
        for i in 0..6u64 {
            let _ = scrubber.scrub(
                &mut chip,
                DataPattern::random(i), // application data churns
                Ms::new(2048.0),
                t60(),
            );
            sizes.push(scrubber.profile().len());
        }
        assert_eq!(scrubber.scrubs(), 6);
        assert!(sizes[5] > sizes[0], "profile must grow: {sizes:?}");
    }

    #[test]
    fn fixed_resident_data_blinds_the_scrubber() {
        // Under one fixed pattern, the scrubber converges onto the cells
        // exposed by that pattern and never sees the other polarity.
        let mut chip = chip();
        let mut scrubber = EccScrubber::new();
        for _ in 0..6 {
            let _ = scrubber.scrub(&mut chip, DataPattern::solid0(), Ms::new(2048.0), t60());
        }
        let seen = scrubber.profile().len();
        // The inverse pattern exposes a disjoint failing population
        // (polarity gating), none of which the scrubber has profiled.
        let mut probe_chip = chip.clone();
        let hidden = probe_chip.retention_trial(DataPattern::solid1(), Ms::new(2048.0), t60());
        assert!(seen > 0 && !hidden.is_empty());
        let overlap = hidden
            .failures()
            .iter()
            .filter(|c| scrubber.profile().contains(**c))
            .count();
        assert_eq!(
            overlap, 0,
            "scrubber should know nothing about the other polarity"
        );
    }

    #[test]
    fn multi_bit_words_are_reported_uncorrectable() {
        // Synthetic check via the report invariants on a busy interval.
        let mut chip = chip();
        let mut scrubber = EccScrubber::new();
        let report = scrubber.scrub(&mut chip, DataPattern::random(1), Ms::new(4000.0), t60());
        // Every corrected cell's word has exactly one failure; every
        // uncorrectable word is distinct from corrected cells' words.
        let corrected_words: std::collections::HashSet<u64> =
            report.corrected_cells.iter().map(|c| c / 64).collect();
        for w in &report.uncorrectable_words {
            assert!(!corrected_words.contains(w));
        }
        assert_eq!(
            report.is_clean(),
            report.uncorrectable_words.is_empty()
        );
        assert_eq!(
            scrubber.uncorrectable_events(),
            report.uncorrectable_words.len() as u64
        );
    }

    #[test]
    fn report_is_sorted() {
        let mut chip = chip();
        let mut scrubber = EccScrubber::new();
        let report = scrubber.scrub(&mut chip, DataPattern::random(2), Ms::new(3000.0), t60());
        assert!(report.corrected_cells.windows(2).all(|w| w[0] < w[1]));
        assert!(report.uncorrectable_words.windows(2).all(|w| w[0] < w[1]));
    }
}
