//! SECDED (72,64) Hamming codec.
//!
//! Single-Error-Correcting, Double-Error-Detecting code over a 64-bit data
//! word: 7 Hamming parity bits plus one overall parity bit (the classic
//! extended Hamming construction). This is the `k = 1` ECC the paper's
//! Eq. 4 and Table 1 analyze, implemented at the bit level so mitigation
//! experiments can inject real errors.
//!
//! Layout: codeword bit positions are numbered 1..=72. Positions that are
//! powers of two (1, 2, 4, 8, 16, 32, 64) hold Hamming parity; position 0
//! (stored separately as bit 72 here, conceptually "position 0") holds the
//! overall parity; the remaining 64 positions hold data bits in ascending
//! order.

/// A 72-bit SECDED codeword (64 data + 7 Hamming + 1 overall parity),
/// stored in the low 72 bits of a `u128`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Codeword(u128);

impl Codeword {
    /// Raw codeword bits (low 72 bits significant).
    pub fn bits(self) -> u128 {
        self.0
    }

    /// Creates a codeword from raw bits.
    ///
    /// # Panics
    /// Panics if bits above the low 72 are set.
    pub fn from_bits(bits: u128) -> Self {
        assert!(bits >> 72 == 0, "codeword is 72 bits");
        Self(bits)
    }

    /// Flips bit `pos` (0..72) — error injection.
    ///
    /// # Panics
    /// Panics if `pos >= 72`.
    pub fn flip(self, pos: u32) -> Self {
        assert!(pos < 72, "bit position out of range");
        Self(self.0 ^ (1u128 << pos))
    }
}

/// The result of decoding a possibly-corrupted codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// No error detected; payload returned.
    Clean(u64),
    /// A single-bit error was corrected; payload returned along with the
    /// corrected codeword bit position (0..72).
    Corrected(u64, u32),
    /// An uncorrectable (≥2-bit) error was detected.
    Uncorrectable,
}

impl DecodeOutcome {
    /// The decoded data, if the word was readable.
    pub fn data(self) -> Option<u64> {
        match self {
            DecodeOutcome::Clean(d) | DecodeOutcome::Corrected(d, _) => Some(d),
            DecodeOutcome::Uncorrectable => None,
        }
    }
}

/// The SECDED (72,64) codec. Stateless; all methods are associated
/// functions on a unit struct for discoverability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Secded;

/// Bit index (0-based within our u128) used for the overall parity bit.
const OVERALL_PARITY_BIT: u32 = 71;

impl Secded {
    /// Number of data bits per codeword.
    pub const DATA_BITS: u32 = 64;
    /// Total codeword bits.
    pub const CODE_BITS: u32 = 72;

    /// Returns true if `pos` (1-based Hamming position, 1..=71) is a Hamming
    /// parity position.
    fn is_parity_pos(pos: u32) -> bool {
        pos.is_power_of_two()
    }

    /// Encodes 64 data bits into a 72-bit codeword.
    ///
    /// # Example
    /// ```
    /// use reaper_mitigation::secded::{DecodeOutcome, Secded};
    /// let cw = Secded::encode(0xDEAD_BEEF_0BAD_F00D);
    /// assert_eq!(Secded::decode(cw), DecodeOutcome::Clean(0xDEAD_BEEF_0BAD_F00D));
    /// ```
    pub fn encode(data: u64) -> Codeword {
        // Place data bits into Hamming positions 1..=71, skipping powers of
        // two. Our storage bit i (0-based) holds Hamming position i+1 for
        // i in 0..71, and the overall parity at storage bit 71.
        let mut word: u128 = 0;
        let mut data_idx = 0u32;
        for pos in 1..=71u32 {
            if Self::is_parity_pos(pos) {
                continue;
            }
            if (data >> data_idx) & 1 == 1 {
                word |= 1u128 << (pos - 1);
            }
            data_idx += 1;
        }
        debug_assert_eq!(data_idx, 64);

        // Hamming parity bits: parity over all positions with that bit set.
        for p in [1u32, 2, 4, 8, 16, 32, 64] {
            let mut parity = 0u32;
            for pos in 1..=71u32 {
                if pos & p != 0 && (word >> (pos - 1)) & 1 == 1 {
                    parity ^= 1;
                }
            }
            if parity == 1 {
                word |= 1u128 << (p - 1);
            }
        }

        // Overall parity over the 71 Hamming-position bits.
        if (word.count_ones() & 1) == 1 {
            word |= 1u128 << OVERALL_PARITY_BIT;
        }
        Codeword(word)
    }

    /// Decodes a codeword, correcting a single-bit error and detecting
    /// double-bit errors.
    pub fn decode(cw: Codeword) -> DecodeOutcome {
        let word = cw.0;
        // Syndrome: XOR of Hamming positions of set bits.
        let mut syndrome = 0u32;
        for pos in 1..=71u32 {
            if (word >> (pos - 1)) & 1 == 1 {
                syndrome ^= pos;
            }
        }
        let overall = (word.count_ones() & 1) == 1; // parity of all 72 bits

        match (syndrome, overall) {
            // No syndrome, even overall parity: clean.
            (0, false) => DecodeOutcome::Clean(Self::extract(word)),
            // No syndrome but odd parity: the overall parity bit itself
            // flipped — correct it (data unaffected).
            (0, true) => DecodeOutcome::Corrected(Self::extract(word), OVERALL_PARITY_BIT),
            // Syndrome with odd overall parity: single-bit error at the
            // syndrome position — correct it.
            (s, true) if s <= 71 => {
                let fixed = word ^ (1u128 << (s - 1));
                DecodeOutcome::Corrected(Self::extract(fixed), s - 1)
            }
            // Syndrome with even overall parity: two bits flipped.
            _ => DecodeOutcome::Uncorrectable,
        }
    }

    /// Extracts the 64 data bits from (corrected) codeword bits.
    fn extract(word: u128) -> u64 {
        let mut data = 0u64;
        let mut data_idx = 0u32;
        for pos in 1..=71u32 {
            if Self::is_parity_pos(pos) {
                continue;
            }
            if (word >> (pos - 1)) & 1 == 1 {
                data |= 1u64 << data_idx;
            }
            data_idx += 1;
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_basic_values() {
        for &d in &[0u64, 1, u64::MAX, 0xDEAD_BEEF, 0x8000_0000_0000_0001] {
            let cw = Secded::encode(d);
            assert_eq!(Secded::decode(cw), DecodeOutcome::Clean(d), "data {d:#x}");
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        let data = 0xA5A5_5A5A_0123_4567u64;
        let cw = Secded::encode(data);
        for pos in 0..72u32 {
            let corrupted = cw.flip(pos);
            match Secded::decode(corrupted) {
                DecodeOutcome::Corrected(d, p) => {
                    assert_eq!(d, data, "flip at {pos}");
                    assert_eq!(p, pos, "reported position");
                }
                other => panic!("flip at {pos}: got {other:?}"),
            }
        }
    }

    #[test]
    fn every_double_bit_error_is_detected() {
        let data = 0x0F0F_F0F0_AAAA_5555u64;
        let cw = Secded::encode(data);
        // Exhaustive over all 72*71/2 = 2556 pairs.
        for a in 0..72u32 {
            for b in (a + 1)..72u32 {
                let corrupted = cw.flip(a).flip(b);
                assert_eq!(
                    Secded::decode(corrupted),
                    DecodeOutcome::Uncorrectable,
                    "flips at {a},{b}"
                );
            }
        }
    }

    #[test]
    fn decode_outcome_data_accessor() {
        assert_eq!(DecodeOutcome::Clean(5).data(), Some(5));
        assert_eq!(DecodeOutcome::Corrected(5, 1).data(), Some(5));
        assert_eq!(DecodeOutcome::Uncorrectable.data(), None);
    }

    #[test]
    fn codeword_bits_roundtrip() {
        let cw = Secded::encode(42);
        let rebuilt = Codeword::from_bits(cw.bits());
        assert_eq!(cw, rebuilt);
    }

    #[test]
    #[should_panic(expected = "72 bits")]
    fn from_bits_rejects_wide_values() {
        Codeword::from_bits(1u128 << 72);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_rejects_out_of_range() {
        Secded::encode(0).flip(72);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data: u64) {
            let cw = Secded::encode(data);
            prop_assert_eq!(Secded::decode(cw), DecodeOutcome::Clean(data));
        }

        #[test]
        fn prop_single_error_corrected(data: u64, pos in 0u32..72) {
            let cw = Secded::encode(data).flip(pos);
            prop_assert_eq!(Secded::decode(cw).data(), Some(data));
        }

        #[test]
        fn prop_double_error_detected(data: u64, a in 0u32..72, b in 0u32..72) {
            prop_assume!(a != b);
            let cw = Secded::encode(data).flip(a).flip(b);
            prop_assert_eq!(Secded::decode(cw), DecodeOutcome::Uncorrectable);
        }

        #[test]
        fn prop_codewords_differ_in_at_least_4_bits(a: u64, b: u64) {
            // SECDED minimum distance is 4.
            prop_assume!(a != b);
            let ca = Secded::encode(a).bits();
            let cb = Secded::encode(b).bits();
            prop_assert!((ca ^ cb).count_ones() >= 4);
        }
    }
}
