//! Property-based tests of the mitigation mechanisms.

use proptest::prelude::*;
use reaper_core::FailureProfile;
use reaper_dram_model::{ChipGeometry, Ms};
use reaper_mitigation::archshield::ArchShield;
use reaper_mitigation::bloom::BloomFilter;
use reaper_mitigation::raidr::Raidr;
use reaper_mitigation::rowmap::RowRemapper;
use reaper_mitigation::secded::{DecodeOutcome, Secded};

proptest! {
    #[test]
    fn bloom_has_no_false_negatives(
        keys in proptest::collection::hash_set(any::<u64>(), 1..500),
        bits in 64u64..8192,
        hashes in 1u32..8,
    ) {
        let mut f = BloomFilter::new(bits, hashes);
        for &k in &keys {
            f.insert(k);
        }
        for &k in &keys {
            prop_assert!(f.contains(k));
        }
        prop_assert_eq!(f.inserted(), keys.len());
    }

    #[test]
    fn archshield_translate_is_stable_and_disjoint(
        cells in proptest::collection::btree_set(0u64..(1 << 20), 1..64),
    ) {
        let shield = ArchShield::new(1 << 16, 0.04).unwrap();
        let profile = FailureProfile::from_cells(cells.iter().copied());
        let map = shield.with_profile(&profile).unwrap();
        let mut seen = std::collections::HashSet::new();
        for &cell in &cells {
            let word = cell / 64;
            let t = map.translate(word);
            prop_assert!(t >= shield.usable_words(), "replica in usable space");
            prop_assert_eq!(t, map.translate(word), "translation must be stable");
            seen.insert((word, t));
        }
        // Distinct faulty words get distinct replicas.
        let words: std::collections::HashSet<u64> = seen.iter().map(|&(w, _)| w).collect();
        let replicas: std::collections::HashSet<u64> = seen.iter().map(|&(_, r)| r).collect();
        prop_assert_eq!(words.len(), replicas.len());
    }

    #[test]
    fn rowmap_translations_are_injective(
        cells in proptest::collection::btree_set(0u64..(64 << 20), 1..64),
    ) {
        let g = ChipGeometry::small();
        let mut r = RowRemapper::new(g, 4096);
        let profile = FailureProfile::from_cells(cells.iter().copied());
        r.install_profile(&profile).unwrap();
        let mut targets = std::collections::HashSet::new();
        for row in 0..200u64 {
            let t = r.translate(row);
            prop_assert!(targets.insert(t), "two rows map to {t}");
            if r.is_mapped_out(row) {
                prop_assert!(t >= g.total_rows());
            } else {
                prop_assert_eq!(t, row);
            }
        }
    }

    #[test]
    fn raidr_assigns_every_profiled_row_a_fast_bin(
        cells in proptest::collection::btree_set(0u64..(64 << 20), 1..128),
    ) {
        let g = ChipGeometry::small();
        let profile = FailureProfile::from_cells(cells.iter().copied());
        let raidr = Raidr::build(g, &[(Ms::new(512.0), &profile)], Ms::new(2048.0));
        for cell in profile.iter() {
            let row = cell / g.row_bits() as u64;
            prop_assert!(raidr.refresh_interval_for_row(row) <= Ms::new(256.0));
        }
        // Savings stay within physical bounds.
        let s = raidr.refresh_savings_vs_64ms();
        prop_assert!((0.0..1.0).contains(&s));
    }

    /// The SECDED safety contract over generated codewords: up to two bit
    /// flips NEVER silently corrupt data. A single flip must decode back
    /// to the original word; a double flip must be flagged uncorrectable,
    /// not miscorrected into a plausible-but-wrong payload.
    #[test]
    fn secded_never_miscorrects_up_to_two_flips(
        data: u64,
        flips in proptest::collection::btree_set(0u32..72, 0..3),
    ) {
        let mut cw = Secded::encode(data);
        for &pos in &flips {
            cw = cw.flip(pos);
        }
        match flips.len() {
            0 => prop_assert_eq!(Secded::decode(cw), DecodeOutcome::Clean(data)),
            1 => prop_assert_eq!(Secded::decode(cw).data(), Some(data)),
            _ => prop_assert_eq!(Secded::decode(cw), DecodeOutcome::Uncorrectable),
        }
    }

    /// Beyond its design distance, SECDED may miscorrect a triple error —
    /// but the odd overall parity still keeps it from ever reporting the
    /// word as clean, so a scrubber always sees that *something* flipped.
    #[test]
    fn secded_triple_error_is_never_reported_clean(
        data: u64,
        flips in proptest::collection::btree_set(0u32..72, 3..4),
    ) {
        let mut cw = Secded::encode(data);
        for &pos in &flips {
            cw = cw.flip(pos);
        }
        prop_assert!(
            !matches!(Secded::decode(cw), DecodeOutcome::Clean(_)),
            "3-bit error decoded as clean"
        );
    }
}
