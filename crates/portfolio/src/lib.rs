//! Portfolio reach-condition search: race profiling strategies, cancel
//! losers, keep the deterministic winner.
//!
//! REAPER's tradeoff space (§6) — which reach condition (+Δt_REFW, +ΔT,
//! combined) and how many rounds — dominates end-to-end profiling cost,
//! and the best point varies per chip. This crate turns that offline
//! grid exploration into an online *race*, in the style of portfolio
//! model checkers: every candidate strategy runs concurrently on the
//! pooled exec substrate, the first to meet the coverage/FPR target
//! posts its **logical cost** (Eq. 9 pass costs plus thermal-chamber
//! settling, never wall time), and provably-losing lanes are cancelled
//! cooperatively at kernel batch boundaries through
//! [`reaper_exec::cancel::CancelToken`].
//!
//! Despite racing, the outcome is a pure function of the request: the
//! winner is the minimum `(logical cost, intrinsic candidate key)`, lane
//! reports are reconstructed analytically after the race, and the
//! returned profile is bit-identical at any thread count, any candidate
//! order, and any prior state (see `race` module docs for the argument).
//!
//! * [`spec`] — candidate strategies, race targets, the default
//!   candidate portfolio
//! * [`race`] — the racing engine and its analytic cost accounting
//! * [`priors`] — per-vendor launch-order priors learned across jobs
//! * [`request`] — the canonical, content-addressable job form served by
//!   `reaper-serve`
//!
//! # Quickstart
//!
//! ```
//! use reaper_portfolio::PortfolioRequest;
//!
//! let (race, outcome) = PortfolioRequest::example(7).execute().expect("valid");
//! assert!(race.target_met);
//! println!(
//!     "winner {} cost {} (makespan {})",
//!     race.winner_strategy.name(),
//!     race.winner_cost,
//!     race.makespan,
//! );
//! assert!(outcome.metrics.coverage >= 0.9);
//! ```

// See crates/retention/src/lib.rs for the deny-wall escape rationale:
// reaper-lint enforces the finer-grained forms (P1/C1) with per-site
// markers in this crate.
#![allow(clippy::expect_used, clippy::indexing_slicing)]
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod priors;
pub mod race;
pub mod request;
pub mod spec;

pub use priors::PriorStore;
pub use race::{LaneReport, LaneStatus, Portfolio, RaceOutcome, SoloRun};
pub use request::PortfolioRequest;
pub use spec::{default_candidates, RaceTarget, Strategy, StrategySpec};
