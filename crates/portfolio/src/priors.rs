//! Per-vendor condition priors.
//!
//! The retrospective on DRAM-retention profiling (PAPERS.md) stresses
//! that no single recipe wins on every device: the store remembers which
//! strategy family won past races *per vendor* and launches historically
//! strong candidates first. Ordering is the only thing priors influence —
//! the race's winner rule tie-breaks on each candidate's intrinsic
//! [`StrategySpec::sort_key`], so priors change scheduling, never
//! results.

use std::collections::BTreeMap;

use reaper_dram_model::Vendor;

use crate::spec::{Strategy, StrategySpec};

/// Deterministic win counts per `(vendor, strategy)`, backed by
/// `BTreeMap`s so iteration order is the key order, never insertion or
/// hash order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PriorStore {
    wins: BTreeMap<&'static str, BTreeMap<&'static str, u64>>,
}

impl PriorStore {
    /// An empty store: every vendor launches candidates in intrinsic-key
    /// order.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one race win for `strategy` on `vendor` parts.
    pub fn record_win(&mut self, vendor: Vendor, strategy: Strategy) {
        *self
            .wins
            .entry(vendor.name())
            .or_default()
            .entry(strategy.name())
            .or_default() += 1;
    }

    /// Wins recorded for `(vendor, strategy)`.
    pub fn wins(&self, vendor: Vendor, strategy: Strategy) -> u64 {
        self.wins
            .get(vendor.name())
            .and_then(|per| per.get(strategy.name()))
            .copied()
            .unwrap_or(0)
    }

    /// Total races recorded for `vendor`.
    pub fn races(&self, vendor: Vendor) -> u64 {
        self.wins
            .get(vendor.name())
            .map(|per| per.values().sum())
            .unwrap_or(0)
    }

    /// The launch order for `candidates` on `vendor`: indices into
    /// `candidates`, historically winning strategy families first
    /// (descending win count), ties broken by each candidate's intrinsic
    /// sort key. Deterministic in the store contents and candidate set.
    pub fn launch_order(&self, vendor: Vendor, candidates: &[StrategySpec]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by_key(|&i| {
            // lint: allow(panic) i ranges over candidates' indices
            let c = &candidates[i];
            (core::cmp::Reverse(self.wins(vendor, c.strategy())), c.sort_key())
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::default_candidates;

    #[test]
    fn empty_store_orders_by_intrinsic_key() {
        let store = PriorStore::new();
        let cands = default_candidates(4);
        let order = store.launch_order(Vendor::B, &cands);
        let mut keys: Vec<_> = order.iter().map(|&i| cands[i].sort_key()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys.len(), cands.len());
        keys.sort_unstable();
        assert_eq!(keys, sorted);
        // And it is a permutation.
        let mut seen = order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..cands.len()).collect::<Vec<_>>());
    }

    #[test]
    fn wins_pull_a_family_to_the_front_per_vendor() {
        let mut store = PriorStore::new();
        store.record_win(Vendor::B, Strategy::Combined);
        store.record_win(Vendor::B, Strategy::Combined);
        store.record_win(Vendor::B, Strategy::DeltaRefw);
        let cands = default_candidates(4);
        let order = store.launch_order(Vendor::B, &cands);
        assert_eq!(cands[order[0]].strategy(), Strategy::Combined);
        assert_eq!(cands[order[1]].strategy(), Strategy::Combined);
        assert_eq!(cands[order[2]].strategy(), Strategy::DeltaRefw);
        // Vendor A saw no races: intrinsic order there.
        let a_order = store.launch_order(Vendor::A, &cands);
        assert_eq!(a_order, PriorStore::new().launch_order(Vendor::A, &cands));
        assert_eq!(store.races(Vendor::B), 3);
        assert_eq!(store.races(Vendor::A), 0);
        assert_eq!(store.wins(Vendor::B, Strategy::Combined), 2);
    }
}
