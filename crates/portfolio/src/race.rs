//! The racing engine: run every candidate concurrently, cancel losers,
//! pick the winner by logical cost.
//!
//! # Race lifecycle
//!
//! Each candidate gets a *lane*: its own simulated chip (same config and
//! seed — every lane profiles the same hypothetical part), its own
//! [`CancelToken`], and a published logical-cost counter. Lanes run on
//! the pooled exec substrate via [`par_index_map_pooled`]; inside a lane,
//! iterations execute in chunks through the chip's cancellable batch
//! kernel, and after each kernel chunk the lane *walks* the outcomes one
//! pattern pass at a time, accounting logical cost and checking the
//! coverage/FPR target at pass granularity.
//!
//! A lane that meets the target posts its finish cost to the shared
//! board (an atomic running minimum) and sweeps the other lanes,
//! cancelling any whose published incurred cost already exceeds the
//! posted bound. Lanes also poll the board themselves — at chunk
//! boundaries (before spending kernel time) and during the accounting
//! walk — and self-cancel once their own incurred cost strictly exceeds
//! the board's best. Cancellation reaches a running kernel only at batch
//! boundaries (see `retention_trial_schedule_cancellable`), so nothing
//! ever diverges mid-batch.
//!
//! # Why racing stays deterministic
//!
//! Every cancellation compares a lane's *incurred* cost (monotonically
//! increasing) against a *posted finish cost* (the board value only
//! decreases, and every posted value is ≥ the final best `B`). So a lane
//! whose final cost is ≤ `B` can never observe `incurred > board` — it
//! always finishes, at any thread count and under any scheduling. Lanes
//! with final cost > `B` may or may not be cancelled at runtime; the
//! outcome never depends on it, because the reported result is computed
//! *analytically* after the barrier:
//!
//! * **winner** = minimum `(finish cost, intrinsic sort key)` over lanes
//!   that met the target — all such minima provably finished;
//! * a non-winner lane is reported `Finished`/`Exhausted` with its full
//!   cost iff that full cost is ≤ `B` (such lanes provably finished and
//!   their data is available), and `Cancelled` otherwise, *charged* the
//!   first pass-boundary cost strictly exceeding `B` (pure arithmetic) —
//!   even if the runtime race happened to let it finish;
//! * if no lane meets the target nothing is ever posted, every lane
//!   finishes, and the fallback winner is the best `(coverage, cost,
//!   key)` — again analytic.
//!
//! Wall-clock time is never consulted; `RaceOutcome` is a pure function
//! of the [`Portfolio`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use reaper_core::{CoverageTracker, FailureProfile, IterationStats, PatternSet};
use reaper_dram_model::{Celsius, Ms, Vendor};
use reaper_exec::cancel::CancelToken;
use reaper_exec::{num, par_index_map_pooled};
use reaper_retention::{RetentionConfig, SimulatedChip, MAX_BATCH_ROUNDS};
use reaper_softmc::thermal::DRAM_OFFSET;

use crate::spec::{RaceTarget, Strategy, StrategySpec};

/// Iterations per kernel chunk: large enough that recurring patterns
/// batch across iterations inside one `run_rounds` call, small enough
/// that cancellation lands promptly. Fixed, so per-lane execution is
/// identical at every thread count.
const CHUNK_ITERATIONS: u32 = 4;

/// Probability floor for the analytic ground truth lanes race toward
/// (re-exported from the core request layer so both paths agree).
pub use reaper_core::TRUTH_MIN_PROB;

/// A configured portfolio race.
#[derive(Debug, Clone)]
pub struct Portfolio {
    vendor: Vendor,
    capacity_num: u64,
    capacity_den: u64,
    seed: u64,
    target: RaceTarget,
    patterns: PatternSet,
    candidates: Vec<StrategySpec>,
}

/// How a lane's race ended, in the analytic accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneStatus {
    /// This lane's result is the race result.
    Winner,
    /// Met the target, but at a cost no better than the winner's.
    Finished,
    /// Spent its whole iteration budget without meeting the target.
    Exhausted,
    /// Provably a loser: charged up to the first pass boundary past the
    /// winning cost, where the runtime race cancels it.
    Cancelled,
}

/// One lane's analytically-accounted race report.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneReport {
    /// The candidate this lane ran.
    pub spec: StrategySpec,
    /// Its strategy family.
    pub strategy: Strategy,
    /// How the lane ended.
    pub status: LaneStatus,
    /// Logical cost charged to the lane (full cost for finished lanes,
    /// the abort-boundary cost for cancelled ones).
    pub charged: Ms,
    /// Ground-truth coverage at the lane's end, when it finished.
    pub coverage: Option<f64>,
    /// Pattern passes the lane completed, when it finished.
    pub passes: Option<u32>,
}

/// The race result: a pure function of the [`Portfolio`], independent of
/// thread count, launch order, and prior state.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceOutcome {
    /// The winning candidate.
    pub winner: StrategySpec,
    /// Its strategy family.
    pub winner_strategy: Strategy,
    /// The winner's own logical finish cost.
    pub winner_cost: Ms,
    /// Whether the winner actually met the coverage/FPR target (false
    /// only when every lane exhausted its budget).
    pub target_met: bool,
    /// Race makespan: the maximum cost charged to any lane — what the
    /// race costs end-to-end on parallel rigs, and the number the
    /// portfolio-vs-best-single gate holds ≤ 1.05× the winner's cost.
    pub makespan: Ms,
    /// Per-lane reports in canonical (intrinsic sort key) order.
    pub lanes: Vec<LaneReport>,
    /// The winner's failure profile at its finish point.
    pub profile: FailureProfile,
    /// The winner's per-iteration discovery series.
    pub iterations: Vec<IterationStats>,
    /// The winner's absolute profiling interval.
    pub profiling_interval: Ms,
    /// The winner's absolute profiling ambient.
    pub profiling_ambient: Celsius,
    /// The winner's final coverage of the ground truth.
    pub coverage: f64,
    /// The winner's final false-positive rate.
    pub fpr: f64,
    /// Size of the shared ground-truth failing set.
    pub truth_cells: usize,
}

impl RaceOutcome {
    /// Lanes reported [`LaneStatus::Cancelled`].
    pub fn cancelled_lanes(&self) -> usize {
        self.lanes
            .iter()
            .filter(|l| l.status == LaneStatus::Cancelled)
            .count()
    }
}

/// A candidate's solo (no racing, no cancellation) run summary — the
/// baseline the bench gates the race against.
#[derive(Debug, Clone, PartialEq)]
pub struct SoloRun {
    /// The candidate.
    pub spec: StrategySpec,
    /// Whether it met the target within its budget.
    pub met: bool,
    /// Its full logical cost (finish cost if met, budget-exhausted cost
    /// otherwise).
    pub cost: Ms,
    /// Final ground-truth coverage.
    pub coverage: f64,
    /// Final false-positive rate.
    pub fpr: f64,
    /// Pattern passes executed.
    pub passes: u32,
}

/// Shared race state: the posted-cost board plus one slot per candidate.
struct RaceBoard {
    /// Best posted finish cost, as non-negative IEEE-754 bits (ordering
    /// on the bits equals ordering on the values). Starts at +∞.
    best: AtomicU64,
    slots: Vec<LaneSlot>,
}

struct LaneSlot {
    token: CancelToken,
    /// The lane's incurred logical cost so far, as f64 bits. Monotone.
    incurred: AtomicU64,
}

impl RaceBoard {
    fn new(lanes: usize) -> Self {
        Self {
            best: AtomicU64::new(f64::INFINITY.to_bits()),
            slots: (0..lanes)
                .map(|_| LaneSlot {
                    token: CancelToken::new(),
                    incurred: AtomicU64::new(0f64.to_bits()),
                })
                .collect(),
        }
    }

    fn best(&self) -> f64 {
        f64::from_bits(self.best.load(Ordering::Acquire))
    }

    /// Posts a finish cost and cancels every other lane already known to
    /// have incurred strictly more. Any posted value is ≥ the final best,
    /// so a sweep can only hit lanes whose final cost exceeds it too.
    fn post(&self, me: usize, cost: Ms) {
        self.best.fetch_min(cost.as_ms().to_bits(), Ordering::AcqRel);
        for (i, slot) in self.slots.iter().enumerate() {
            if i != me && f64::from_bits(slot.incurred.load(Ordering::Acquire)) > cost.as_ms() {
                slot.token.cancel();
            }
        }
    }
}

/// What a lane hands back to the barrier. Costs and classifications are
/// recomputed analytically afterwards; only `finished == true` data is
/// trusted (an unfinished lane's fields describe a scheduling-dependent
/// partial run and are discarded).
struct LaneRun {
    finished: bool,
    met: bool,
    full_cost: Ms,
    coverage: f64,
    fpr: f64,
    passes: u32,
    profile: FailureProfile,
    iterations: Vec<IterationStats>,
    /// Chamber settle overhead (both directions), pure arithmetic reused
    /// by the analytic charge.
    settle_total: Ms,
    unit: Ms,
}

impl Portfolio {
    /// Configures a race over `candidates` on one simulated chip.
    ///
    /// # Panics
    /// Panics if `candidates` is empty, contains duplicates (by intrinsic
    /// sort key), the capacity scale is zero, or any candidate's reach
    /// would push the chamber past its reliable range.
    pub fn new(
        vendor: Vendor,
        capacity_num: u64,
        capacity_den: u64,
        seed: u64,
        target: RaceTarget,
        patterns: PatternSet,
        candidates: Vec<StrategySpec>,
    ) -> Self {
        assert!(capacity_num > 0 && capacity_den > 0, "capacity scale must be nonzero");
        assert!(!candidates.is_empty(), "a race needs at least one candidate");
        let mut keys: Vec<_> = candidates.iter().map(StrategySpec::sort_key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(
            keys.len(),
            candidates.len(),
            "candidates must be distinct (by intrinsic sort key)"
        );
        for c in &candidates {
            let (_, ambient) = c.reach.apply_to(target.conditions);
            assert!(
                ambient.degrees() <= reaper_softmc::thermal::CHAMBER_MAX,
                "candidate reach {} exceeds the chamber maximum",
                c.reach
            );
        }
        Self {
            vendor,
            capacity_num,
            capacity_den,
            seed,
            target,
            patterns,
            candidates,
        }
    }

    /// The candidate set, in construction order.
    pub fn candidates(&self) -> &[StrategySpec] {
        &self.candidates
    }

    /// The race target.
    pub fn target(&self) -> RaceTarget {
        self.target
    }

    fn config(&self) -> RetentionConfig {
        RetentionConfig::for_vendor(self.vendor)
            .with_capacity_scale(self.capacity_num, self.capacity_den)
    }

    /// The shared ground truth every lane races toward: the analytic
    /// worst-case failing set at target conditions.
    pub fn ground_truth(&self) -> FailureProfile {
        let chip = SimulatedChip::new(self.config(), self.seed);
        FailureProfile::from_cells(chip.failing_set_worst_case(
            self.target.conditions.interval,
            self.target.conditions.dram_temp(),
            TRUTH_MIN_PROB,
        ))
    }

    /// Runs the race with candidates launched in construction order.
    pub fn run(&self) -> RaceOutcome {
        let order: Vec<usize> = (0..self.candidates.len()).collect();
        self.run_ordered(&order)
    }

    /// Runs the race with an explicit launch order (a permutation of
    /// candidate indices — this is the only influence priors have).
    ///
    /// # Panics
    /// Panics if `launch_order` is not a permutation of
    /// `0..candidates.len()`.
    pub fn run_ordered(&self, launch_order: &[usize]) -> RaceOutcome {
        let mut check: Vec<usize> = launch_order.to_vec();
        check.sort_unstable();
        assert_eq!(
            check,
            (0..self.candidates.len()).collect::<Vec<_>>(),
            "launch order must be a permutation of the candidate indices"
        );

        let truth = Arc::new(self.ground_truth());
        let board = Arc::new(RaceBoard::new(self.candidates.len()));
        let ctx = Arc::new(self.clone());
        let runs: Vec<(usize, LaneRun)> = par_index_map_pooled(launch_order.len(), 1, {
            let order = launch_order.to_vec();
            let truth = Arc::clone(&truth);
            let board = Arc::clone(&board);
            Arc::new(move |range: core::ops::Range<usize>| {
                range
                    .map(|pos| {
                        // lint: allow(panic) pos < len and order is a permutation
                        let lane = order[pos];
                        (lane, ctx.run_lane(lane, &truth, Some((&board, lane))))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .into_iter()
        .flatten()
        .collect();

        let mut by_lane: Vec<Option<LaneRun>> = (0..self.candidates.len()).map(|_| None).collect();
        for (lane, run) in runs {
            // lint: allow(panic) lane indices come from the permutation
            by_lane[lane] = Some(run);
        }
        let runs: Vec<LaneRun> = by_lane
            .into_iter()
            .map(|r| r.expect("invariant: every lane ran exactly once"))
            .collect();

        self.settle_outcome(&truth, runs)
    }

    /// Runs one candidate to completion with no race: the baseline cost
    /// the portfolio gate compares against.
    ///
    /// # Panics
    /// Panics if `candidate` is out of range.
    pub fn run_solo(&self, candidate: usize) -> SoloRun {
        assert!(candidate < self.candidates.len(), "candidate index out of range");
        let truth = self.ground_truth();
        let run = self.run_lane(candidate, &truth, None);
        debug_assert!(run.finished, "an unraced lane always finishes");
        SoloRun {
            // lint: allow(panic) bounds asserted above
            spec: self.candidates[candidate],
            met: run.met,
            cost: run.full_cost,
            coverage: run.coverage,
            fpr: run.fpr,
            passes: run.passes,
        }
    }

    /// Executes one lane: chunked cancellable kernel runs, pass-granular
    /// cost accounting, board protocol when racing (`shared` is `None`
    /// for solo runs).
    fn run_lane(
        &self,
        lane: usize,
        truth: &FailureProfile,
        shared: Option<(&RaceBoard, usize)>,
    ) -> LaneRun {
        // lint: allow(panic) callers pass in-range lane indices
        let spec = self.candidates[lane];
        let (interval, ambient) = spec.reach.apply_to(self.target.conditions);
        let dram_temp = ambient + DRAM_OFFSET;
        let unit = spec.unit_cost(self.target.conditions);
        let settle_total = if spec.reach.delta_temp > 0.0 {
            reaper_softmc::settle_cost(self.target.conditions.ambient, ambient, self.seed)
                + reaper_softmc::settle_cost(ambient, self.target.conditions.ambient, self.seed)
        } else {
            Ms::ZERO
        };
        let unfinished = |settle_total, unit| LaneRun {
            finished: false,
            met: false,
            full_cost: Ms::ZERO,
            coverage: 0.0,
            fpr: 0.0,
            passes: 0,
            profile: FailureProfile::new(),
            iterations: Vec::new(),
            settle_total,
            unit,
        };

        let token = shared.map_or_else(CancelToken::new, |(b, me)| {
            // lint: allow(panic) slots were sized to the candidate count
            let slot = &b.slots[me];
            slot.incurred.store(settle_total.as_ms().to_bits(), Ordering::Release);
            slot.token.clone()
        });

        let mut chip = SimulatedChip::new(self.config(), self.seed);
        chip.prewarm_lowerings(&self.patterns.stable_patterns());
        let mut tracker = CoverageTracker::new(truth);
        let goal_count = tracker.goal_count(self.target.coverage_goal);
        let ppi = num::to_u32(self.patterns.patterns_per_iteration());

        let mut profile = FailureProfile::new();
        let mut iterations: Vec<IterationStats> = Vec::new();
        let mut stats = IterationStats::default();
        let mut passes = 0u32;
        let mut met = false;
        let mut it = 0u32;
        'race: while it < spec.max_iterations {
            // Chunk boundary: the cheap place to stop before spending
            // kernel time.
            if token.is_cancelled() {
                return unfinished(settle_total, unit);
            }
            if let Some((board, _)) = shared {
                let incurred = settle_total + unit * f64::from(passes);
                if incurred.as_ms() > board.best() {
                    token.cancel();
                    return unfinished(settle_total, unit);
                }
            }

            let chunk_end = (it + CHUNK_ITERATIONS).min(spec.max_iterations);
            let mut schedule = Vec::new();
            for i in it..chunk_end {
                for p in self.patterns.for_iteration(u64::from(i)) {
                    schedule.push((p, interval, dram_temp));
                }
            }
            let run = chip.retention_trial_schedule_cancellable(&schedule, MAX_BATCH_ROUNDS, &token);

            // Pass-granular accounting walk over whatever completed.
            for outcome in &run.outcomes {
                passes += 1;
                for &cell in outcome.failures() {
                    if profile.insert(cell) {
                        stats.new_unique += 1;
                        tracker.note_new(cell);
                    } else {
                        stats.repeats += 1;
                    }
                }
                if passes.is_multiple_of(ppi) {
                    stats.cumulative = profile.len();
                    iterations.push(core::mem::take(&mut stats));
                }
                let cost_now = settle_total + unit * f64::from(passes);
                if let Some((board, me)) = shared {
                    // lint: allow(panic) slots were sized to the candidate count
                    board.slots[me]
                        .incurred
                        .store(cost_now.as_ms().to_bits(), Ordering::Release);
                }
                if tracker.covered() >= goal_count && tracker.fpr() <= self.target.max_fpr {
                    met = true;
                    if let Some((board, me)) = shared {
                        board.post(me, cost_now);
                    }
                    break 'race;
                }
                if let Some((board, _)) = shared {
                    if cost_now.as_ms() > board.best() {
                        token.cancel();
                        return unfinished(settle_total, unit);
                    }
                }
            }
            if run.cancelled {
                return unfinished(settle_total, unit);
            }
            it = chunk_end;
        }
        if !passes.is_multiple_of(ppi) {
            stats.cumulative = profile.len();
            iterations.push(stats);
        }

        LaneRun {
            finished: true,
            met,
            full_cost: settle_total + unit * f64::from(passes),
            coverage: tracker.coverage(),
            fpr: tracker.fpr(),
            passes,
            profile,
            iterations,
            settle_total,
            unit,
        }
    }

    /// Turns raw lane runs into the deterministic outcome (see the module
    /// docs for why this classification is scheduling-independent).
    fn settle_outcome(&self, truth: &FailureProfile, runs: Vec<LaneRun>) -> RaceOutcome {
        // The winning bound: minimum (cost, key) over lanes that met the
        // target. Every such minimum provably finished at runtime.
        let winner_met = runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.finished && r.met)
            .min_by(|(i, a), (j, b)| {
                a.full_cost
                    .as_ms()
                    .total_cmp(&b.full_cost.as_ms())
                    // lint: allow(panic) i/j enumerate the candidate set
                    .then_with(|| self.candidates[*i].sort_key().cmp(&self.candidates[*j].sort_key()))
            })
            .map(|(i, _)| i);

        let (winner_idx, target_met) = match winner_met {
            Some(i) => (i, true),
            None => {
                // Nothing was ever posted, so nothing was ever cancelled
                // and every lane finished: pick the best fallback.
                let i = runs
                    .iter()
                    .enumerate()
                    .max_by(|(i, a), (j, b)| {
                        a.coverage
                            .total_cmp(&b.coverage)
                            .then_with(|| b.full_cost.as_ms().total_cmp(&a.full_cost.as_ms()))
                            .then_with(|| {
                                // lint: allow(panic) i/j enumerate the candidate set
                                self.candidates[*j]
                                    .sort_key()
                                    // lint: allow(panic) i/j enumerate the candidate set
                                    .cmp(&self.candidates[*i].sort_key())
                            })
                    })
                    .map(|(i, _)| i)
                    .expect("invariant: a race has at least one candidate");
                (i, false)
            }
        };
        // lint: allow(panic) winner_idx comes from enumerating runs
        let b_final = runs[winner_idx].full_cost;

        let mut lanes: Vec<LaneReport> = runs
            .iter()
            .enumerate()
            .map(|(i, r)| {
                // lint: allow(panic) i enumerates the candidate set
                let spec = self.candidates[i];
                let (status, charged, coverage, passes) = if i == winner_idx {
                    (LaneStatus::Winner, b_final, Some(r.coverage), Some(r.passes))
                } else if target_met
                    && (!r.finished || r.full_cost.as_ms() > b_final.as_ms())
                {
                    // Provably a loser at runtime (its full cost exceeds
                    // the bound), whether or not this particular race
                    // happened to cancel it.
                    (
                        LaneStatus::Cancelled,
                        charged_abort(r.settle_total, r.unit, b_final),
                        None,
                        None,
                    )
                } else {
                    debug_assert!(r.finished, "cost ≤ bound lanes always finish");
                    let status = if r.met { LaneStatus::Finished } else { LaneStatus::Exhausted };
                    (status, r.full_cost, Some(r.coverage), Some(r.passes))
                };
                LaneReport {
                    spec,
                    strategy: spec.strategy(),
                    status,
                    charged,
                    coverage,
                    passes,
                }
            })
            .collect();
        lanes.sort_by_key(|l| l.spec.sort_key());

        let makespan = lanes
            .iter()
            .map(|l| l.charged)
            .fold(Ms::ZERO, |acc, c| if c.as_ms() > acc.as_ms() { c } else { acc });

        // lint: allow(panic) winner_idx comes from enumerating runs
        let winner_run = &runs[winner_idx];
        // lint: allow(panic) winner_idx comes from enumerating runs
        let spec = self.candidates[winner_idx];
        let (profiling_interval, profiling_ambient) = spec.reach.apply_to(self.target.conditions);
        RaceOutcome {
            winner: spec,
            winner_strategy: spec.strategy(),
            winner_cost: b_final,
            target_met,
            makespan,
            lanes,
            profile: winner_run.profile.clone(),
            iterations: winner_run.iterations.clone(),
            profiling_interval,
            profiling_ambient,
            coverage: winner_run.coverage,
            fpr: winner_run.fpr,
            truth_cells: truth.len(),
        }
    }
}

/// The cost charged to a provably-losing lane: the first pass-boundary
/// cost strictly above the winning bound `b` (where the runtime race
/// cancels it), or `b` itself if even the chamber settle exceeds the
/// bound (the lane aborts mid-move). Pure arithmetic in the lane's
/// settle/unit costs — never a runtime observation.
fn charged_abort(settle_total: Ms, unit: Ms, b: Ms) -> Ms {
    if settle_total.as_ms() > b.as_ms() {
        return b;
    }
    let mut k = ((b.as_ms() - settle_total.as_ms()) / unit.as_ms()).floor() + 1.0;
    // Guard the floating-point edge where the computed boundary is not
    // strictly past the bound.
    while settle_total.as_ms() + k * unit.as_ms() <= b.as_ms() {
        k += 1.0;
    }
    settle_total + unit * k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{default_candidates, RaceTarget};
    use reaper_core::{ReachConditions, TargetConditions};

    fn quick_portfolio(seed: u64) -> Portfolio {
        Portfolio::new(
            Vendor::B,
            1,
            64,
            seed,
            RaceTarget::new(
                TargetConditions::new(Ms::new(512.0), Celsius::new(45.0)),
                0.9,
                1.0,
            ),
            PatternSet::Standard,
            vec![
                StrategySpec::new(ReachConditions::brute_force(), 6),
                StrategySpec::new(ReachConditions::interval_offset(Ms::new(128.0)), 6),
                StrategySpec::new(ReachConditions::interval_offset(Ms::new(256.0)), 6),
            ],
        )
    }

    #[test]
    fn race_is_reproducible_and_winner_meets_target() {
        let p = quick_portfolio(7);
        let a = p.run();
        let b = p.run();
        assert_eq!(a, b, "back-to-back races must be identical");
        assert!(a.target_met);
        assert!(a.coverage >= 0.9);
        assert!(!a.profile.is_empty());
        assert!(a.makespan.as_ms() >= a.winner_cost.as_ms());
        assert_eq!(a.lanes.len(), 3);
    }

    #[test]
    fn launch_order_does_not_change_the_outcome() {
        let p = quick_portfolio(7);
        let natural = p.run();
        let reversed = p.run_ordered(&[2, 1, 0]);
        assert_eq!(natural, reversed);
    }

    #[test]
    fn winner_matches_the_best_solo_candidate() {
        let p = quick_portfolio(9);
        let race = p.run();
        let solos: Vec<SoloRun> = (0..3).map(|i| p.run_solo(i)).collect();
        let best = solos
            .iter()
            .filter(|s| s.met)
            .min_by(|a, b| {
                a.cost
                    .as_ms()
                    .total_cmp(&b.cost.as_ms())
                    .then_with(|| a.spec.sort_key().cmp(&b.spec.sort_key()))
            })
            .expect("invariant: some candidate meets the target in this fixture");
        assert_eq!(race.winner, best.spec);
        assert_eq!(race.winner_cost, best.cost);
        // The race's makespan never exceeds the bound by more than one
        // pass (plus an aborted settle can only charge the bound itself).
        let max_unit = solos
            .iter()
            .map(|s| s.spec.unit_cost(p.target().conditions).as_ms())
            .fold(0.0f64, f64::max);
        assert!(race.makespan.as_ms() <= best.cost.as_ms() + max_unit);
    }

    #[test]
    fn fallback_winner_when_no_candidate_meets_the_target() {
        // A 1-iteration budget at nearly-full coverage: nobody meets it.
        let p = Portfolio::new(
            Vendor::B,
            1,
            64,
            11,
            RaceTarget::new(
                TargetConditions::new(Ms::new(512.0), Celsius::new(45.0)),
                1.0,
                0.0,
            ),
            PatternSet::Standard,
            vec![
                StrategySpec::new(ReachConditions::brute_force(), 1),
                StrategySpec::new(ReachConditions::interval_offset(Ms::new(128.0)), 1),
            ],
        );
        let out = p.run();
        assert!(!out.target_met);
        assert_eq!(out.cancelled_lanes(), 0, "no post means no cancellation");
        assert_eq!(out, p.run());
        // Fallback prefers coverage; both lanes report full data.
        for lane in &out.lanes {
            assert!(lane.coverage.is_some());
        }
    }

    #[test]
    fn default_candidate_set_races_clean() {
        let target = RaceTarget::new(
            TargetConditions::new(Ms::new(512.0), Celsius::new(45.0)),
            0.85,
            1.0,
        );
        let p = Portfolio::new(
            Vendor::B,
            1,
            64,
            5,
            target,
            PatternSet::Standard,
            default_candidates(6),
        );
        let out = p.run();
        assert_eq!(out.lanes.len(), 7);
        // Canonical report order is the intrinsic key order.
        let keys: Vec<_> = out.lanes.iter().map(|l| l.spec.sort_key()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(out, p.run());
    }

    #[test]
    fn charged_abort_lands_on_the_first_boundary_past_the_bound() {
        let unit = Ms::new(100.0);
        // Bound 450, no settle: first boundary past it is pass 5 = 500.
        assert_eq!(charged_abort(Ms::ZERO, unit, Ms::new(450.0)), Ms::new(500.0));
        // Exactly on a boundary: must go strictly past.
        assert_eq!(charged_abort(Ms::ZERO, unit, Ms::new(400.0)), Ms::new(500.0));
        // Settle alone exceeds the bound: charge the bound (aborted move).
        assert_eq!(
            charged_abort(Ms::new(900.0), unit, Ms::new(450.0)),
            Ms::new(450.0)
        );
        // Settle below the bound: boundaries are settle + k·unit.
        assert_eq!(
            charged_abort(Ms::new(50.0), unit, Ms::new(450.0)),
            Ms::new(550.0)
        );
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_candidates_rejected() {
        let t = RaceTarget::new(TargetConditions::paper_example(), 0.9, 1.0);
        Portfolio::new(
            Vendor::B,
            1,
            64,
            1,
            t,
            PatternSet::Standard,
            vec![
                StrategySpec::new(ReachConditions::brute_force(), 4),
                StrategySpec::new(ReachConditions::brute_force(), 4),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_launch_order_rejected() {
        quick_portfolio(1).run_ordered(&[0, 0, 1]);
    }
}
