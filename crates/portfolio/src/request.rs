//! The canonical portfolio-race job: the racing counterpart of
//! `reaper_core::ProfilingRequest`, with the same three service-facing
//! properties — canonical bytes, a deterministic job ID in its own hash
//! domain, and one execution path shared by library callers and serve
//! workers.

use reaper_core::{
    PatternSpec, ProfileMetrics, ProfilingOutcome, ProfilingRun, RequestError, TargetConditions,
};
use reaper_dram_model::{Celsius, Ms, Vendor};
use reaper_exec::rng;
use reaper_softmc::thermal;

use crate::priors::PriorStore;
use crate::race::{Portfolio, RaceOutcome};
use crate::spec::{default_candidates, RaceTarget};

/// Version byte of the canonical encoding. Starts at 2 so no portfolio
/// encoding can ever byte-collide with a v1 `ProfilingRequest`.
const CANONICAL_VERSION: u8 = 2;

/// A complete, canonicalizable portfolio race: chip config, seed, target
/// conditions, the coverage/FPR target, and the per-candidate iteration
/// budget. The candidate set is the fixed default portfolio
/// ([`default_candidates`]) so identical submissions stay
/// content-addressable.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioRequest {
    /// DRAM vendor of the simulated chip.
    pub vendor: Vendor,
    /// Capacity scale numerator.
    pub capacity_num: u64,
    /// Capacity scale denominator.
    pub capacity_den: u64,
    /// Seed for the chip population and trial RNG lanes.
    pub seed: u64,
    /// Target refresh interval in milliseconds.
    pub target_interval_ms: f64,
    /// Target ambient temperature in °C.
    pub target_ambient_c: f64,
    /// Ground-truth coverage every lane races toward, in (0, 1].
    pub coverage_goal: f64,
    /// Maximum tolerated false-positive rate, in [0, 1].
    pub max_fpr: f64,
    /// Iteration budget per candidate lane.
    pub rounds: u32,
    /// Pattern families written each round.
    pub patterns: PatternSpec,
}

impl PortfolioRequest {
    /// A small, fast race at the paper's operating point.
    pub fn example(seed: u64) -> Self {
        Self {
            vendor: Vendor::B,
            capacity_num: 1,
            capacity_den: 64,
            seed,
            target_interval_ms: 512.0,
            target_ambient_c: 45.0,
            coverage_goal: 0.9,
            max_fpr: 1.0,
            rounds: 6,
            patterns: PatternSpec::Standard,
        }
    }

    /// Checks every constraint the race engine enforces by panic, so a
    /// validated request executes without panicking. The hottest default
    /// candidate adds +10 °C, so the target ambient must leave that much
    /// chamber headroom.
    ///
    /// # Errors
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), RequestError> {
        let err = |m: &str| Err(RequestError(m.to_string()));
        if self.capacity_num == 0 || self.capacity_den == 0 {
            return err("capacity_num and capacity_den must be nonzero");
        }
        if self.capacity_num > (1 << 20) || self.capacity_num > self.capacity_den * 64 {
            return err("capacity scale too large (num ≤ 2^20 and num/den ≤ 64)");
        }
        for (name, v) in [
            ("target_interval_ms", self.target_interval_ms),
            ("target_ambient_c", self.target_ambient_c),
            ("coverage_goal", self.coverage_goal),
            ("max_fpr", self.max_fpr),
        ] {
            if !v.is_finite() {
                return Err(RequestError(format!("{name} must be finite")));
            }
        }
        if self.target_interval_ms <= 0.0 {
            return err("target_interval_ms must be positive");
        }
        if self.coverage_goal <= 0.0 || self.coverage_goal > 1.0 {
            return err("coverage_goal must be in (0, 1]");
        }
        if !(0.0..=1.0).contains(&self.max_fpr) {
            return err("max_fpr must be in [0, 1]");
        }
        let lo = thermal::CHAMBER_MIN;
        let hi = thermal::CHAMBER_MAX;
        if self.target_ambient_c < lo || self.target_ambient_c > hi {
            return Err(RequestError(format!(
                "target_ambient_c must be within the chamber range {lo}–{hi} °C"
            )));
        }
        if self.target_ambient_c + MAX_CANDIDATE_DELTA_T > hi {
            return Err(RequestError(format!(
                "target_ambient_c + the hottest candidate reach (+{MAX_CANDIDATE_DELTA_T} °C) \
                 exceeds the chamber maximum {hi} °C"
            )));
        }
        if self.rounds == 0 {
            return err("rounds must be at least 1");
        }
        Ok(())
    }

    /// The canonical byte encoding: a version byte followed by every
    /// field in declaration order, integers little-endian, floats as the
    /// IEEE-754 bits of `value + 0.0` (normalizing `-0.0`).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        fn f64_canon(v: f64) -> [u8; 8] {
            (v + 0.0).to_bits().to_le_bytes()
        }
        let mut out = Vec::with_capacity(72);
        out.push(CANONICAL_VERSION);
        out.push(match self.vendor {
            Vendor::A => 0,
            Vendor::B => 1,
            Vendor::C => 2,
        });
        out.extend_from_slice(&self.capacity_num.to_le_bytes());
        out.extend_from_slice(&self.capacity_den.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&f64_canon(self.target_interval_ms));
        out.extend_from_slice(&f64_canon(self.target_ambient_c));
        out.extend_from_slice(&f64_canon(self.coverage_goal));
        out.extend_from_slice(&f64_canon(self.max_fpr));
        out.extend_from_slice(&self.rounds.to_le_bytes());
        out.push(self.patterns.code());
        out
    }

    /// Hash-domain seed for portfolio job IDs — distinct from
    /// `ProfilingRequest`'s domain so the two kinds can never collide
    /// even on identical canonical bytes.
    const JOB_ID_SEED: u64 = 0x5EED_0F0D_CA5C_ADE5;

    /// The deterministic job ID (splitmix64-chained hash of the
    /// canonical bytes under the portfolio domain seed).
    pub fn job_id(&self) -> u64 {
        rng::hash_bytes(Self::JOB_ID_SEED, &self.canonical_bytes())
    }

    /// The race this request describes.
    ///
    /// # Errors
    /// Returns the [`RequestError`] from [`PortfolioRequest::validate`].
    pub fn to_portfolio(&self) -> Result<Portfolio, RequestError> {
        self.validate()?;
        Ok(Portfolio::new(
            self.vendor,
            self.capacity_num,
            self.capacity_den,
            self.seed,
            RaceTarget::new(
                TargetConditions::new(
                    Ms::new(self.target_interval_ms),
                    Celsius::new(self.target_ambient_c),
                ),
                self.coverage_goal,
                self.max_fpr,
            ),
            self.patterns.to_pattern_set(),
            default_candidates(self.rounds),
        ))
    }

    /// Executes the race with `priors` choosing the launch order, and
    /// packages the winner as a [`ProfilingOutcome`] so the service's
    /// summary/profile store path is shared with plain profiling jobs.
    /// The outcome is a pure function of the request: priors and thread
    /// count only reorder scheduling, never results.
    ///
    /// # Errors
    /// Returns the [`RequestError`] from [`PortfolioRequest::validate`].
    pub fn execute_with_priors(
        &self,
        priors: &PriorStore,
    ) -> Result<(RaceOutcome, ProfilingOutcome), RequestError> {
        let portfolio = self.to_portfolio()?;
        let order = priors.launch_order(self.vendor, portfolio.candidates());
        let race = portfolio.run_ordered(&order);
        let truth = portfolio.ground_truth();
        let run = ProfilingRun {
            profile: race.profile.clone(),
            runtime: race.makespan,
            iterations: race.iterations.clone(),
            profiling_interval: race.profiling_interval,
            profiling_ambient: race.profiling_ambient,
        };
        let metrics = ProfileMetrics::evaluate(&run.profile, &truth).with_runtime(race.makespan);
        let outcome = ProfilingOutcome {
            run,
            metrics,
            truth_cells: truth.len(),
        };
        Ok((race, outcome))
    }

    /// [`PortfolioRequest::execute_with_priors`] with no prior state.
    ///
    /// # Errors
    /// Returns the [`RequestError`] from [`PortfolioRequest::validate`].
    pub fn execute(&self) -> Result<(RaceOutcome, ProfilingOutcome), RequestError> {
        self.execute_with_priors(&PriorStore::new())
    }
}

/// The largest temperature offset in the default candidate set.
const MAX_CANDIDATE_DELTA_T: f64 = 10.0;

#[cfg(test)]
mod tests {
    use super::*;
    use reaper_core::ProfilingRequest;

    #[test]
    fn job_ids_are_content_addressed_and_kind_separated() {
        let a = PortfolioRequest::example(7);
        let b = PortfolioRequest::example(7);
        assert_eq!(a.job_id(), b.job_id());
        let mut c = PortfolioRequest::example(7);
        c.coverage_goal = 0.95;
        assert_ne!(a.job_id(), c.job_id());
        // A profiling request can never alias a portfolio request: the
        // hash domains differ even if canonical bytes collided (and the
        // version bytes differ anyway).
        let p = ProfilingRequest::example(7);
        assert_ne!(a.job_id(), p.job_id());
        assert_ne!(a.canonical_bytes()[0], p.canonical_bytes()[0]);
    }

    type Mutation = Box<dyn Fn(&mut PortfolioRequest)>;

    #[test]
    fn validation_rejects_bad_requests() {
        assert!(PortfolioRequest::example(1).validate().is_ok());
        let cases: Vec<(&str, Mutation)> = vec![
            ("zero den", Box::new(|r| r.capacity_den = 0)),
            ("zero goal", Box::new(|r| r.coverage_goal = 0.0)),
            ("big goal", Box::new(|r| r.coverage_goal = 1.5)),
            ("negative fpr", Box::new(|r| r.max_fpr = -0.1)),
            ("no headroom", Box::new(|r| r.target_ambient_c = 50.0)),
            ("zero rounds", Box::new(|r| r.rounds = 0)),
            ("nan interval", Box::new(|r| r.target_interval_ms = f64::NAN)),
        ];
        for (name, mutate) in cases {
            let mut r = PortfolioRequest::example(1);
            mutate(&mut r);
            assert!(r.validate().is_err(), "{name} accepted");
        }
    }

    #[test]
    fn execute_is_deterministic_and_prior_invariant() {
        let req = PortfolioRequest::example(7);
        let (race_a, out_a) = req.execute().expect("valid request");
        let mut priors = PriorStore::new();
        priors.record_win(Vendor::B, crate::spec::Strategy::Combined);
        priors.record_win(Vendor::B, crate::spec::Strategy::DeltaTemp);
        let (race_b, out_b) = req.execute_with_priors(&priors).expect("valid request");
        assert_eq!(race_a, race_b);
        assert_eq!(out_a.run.profile.to_bytes(), out_b.run.profile.to_bytes());
        assert_eq!(out_a.metrics, out_b.metrics);
        assert_eq!(out_a.run.runtime, race_a.makespan);
        assert!(race_a.target_met);
    }

    #[test]
    fn execute_rejects_invalid_without_panicking() {
        let mut r = PortfolioRequest::example(1);
        r.rounds = 0;
        assert!(r.execute().is_err());
    }
}
