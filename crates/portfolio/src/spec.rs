//! Candidate strategies and race targets.
//!
//! A *candidate* is one way to profile a chip: a reach condition (§6's
//! +Δt_REFW / +ΔT / combined axes, with brute force as the degenerate
//! point) plus an iteration cap. A *race target* is what a candidate must
//! deliver: coverage of the target-conditions ground truth at a bounded
//! false-positive rate.

use reaper_core::{ReachConditions, TargetConditions};
use reaper_dram_model::Ms;

/// The strategy family a candidate belongs to, used for priors and the
/// service's per-strategy metrics labels.
///
/// [`Strategy::ALL`] fixes the wire order; every rendered label series
/// iterates it so `/metrics` output is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strategy {
    /// Profile at the target conditions (Algorithm 1 unmodified).
    BruteForce,
    /// Interval-only reach (+Δt_REFW, the paper's REAPER implementation).
    DeltaRefw,
    /// Temperature-only reach (+ΔT).
    DeltaTemp,
    /// Both offsets at once.
    Combined,
}

impl Strategy {
    /// Every strategy, in the canonical wire/label order.
    pub const ALL: [Strategy; 4] = [
        Strategy::BruteForce,
        Strategy::DeltaRefw,
        Strategy::DeltaTemp,
        Strategy::Combined,
    ];

    /// Stable wire name (`brute_force` / `delta_refw` / `delta_t` /
    /// `combined`).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::BruteForce => "brute_force",
            Strategy::DeltaRefw => "delta_refw",
            Strategy::DeltaTemp => "delta_t",
            Strategy::Combined => "combined",
        }
    }

    /// Parses the wire name.
    pub fn parse(name: &str) -> Option<Self> {
        Strategy::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// One race candidate: a reach condition and the iteration budget it may
/// spend chasing the target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategySpec {
    /// The reach offsets profiling runs at.
    pub reach: ReachConditions,
    /// Maximum Algorithm 1 iterations before the lane gives up.
    pub max_iterations: u32,
}

impl StrategySpec {
    /// Creates a candidate.
    ///
    /// # Panics
    /// Panics if `max_iterations == 0`.
    pub fn new(reach: ReachConditions, max_iterations: u32) -> Self {
        assert!(max_iterations > 0, "candidate needs at least one iteration");
        Self {
            reach,
            max_iterations,
        }
    }

    /// The family this candidate belongs to.
    pub fn strategy(&self) -> Strategy {
        let dt = self.reach.delta_temp > 0.0;
        let di = self.reach.delta_interval.is_positive();
        match (di, dt) {
            (false, false) => Strategy::BruteForce,
            (true, false) => Strategy::DeltaRefw,
            (false, true) => Strategy::DeltaTemp,
            (true, true) => Strategy::Combined,
        }
    }

    /// The candidate's *intrinsic* sort key: a total order derived only
    /// from the candidate's own parameters, never from launch position.
    /// Race winners tie-break on this key, which is what makes the winner
    /// invariant under candidate reordering and prior-store state (both
    /// only permute launch order).
    ///
    /// Both deltas are non-negative by [`ReachConditions`]'s constructor,
    /// so their IEEE-754 bit patterns order exactly like their values.
    pub fn sort_key(&self) -> (u64, u64, u32) {
        (
            self.reach.delta_temp.to_bits(),
            self.reach.delta_interval.as_ms().to_bits(),
            self.max_iterations,
        )
    }

    /// Per-pattern-pass logical cost at `target`: the profiling refresh
    /// interval plus the harness's write+read pass cost (Eq. 9's
    /// per-pattern term).
    pub fn unit_cost(&self, target: TargetConditions) -> Ms {
        let (interval, _) = self.reach.apply_to(target);
        interval + reaper_softmc::CostModel::default().pass_cost()
    }
}

/// What a candidate must achieve to finish the race.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaceTarget {
    /// The conditions the system will operate at; ground truth is the
    /// analytic worst-case failing set here.
    pub conditions: TargetConditions,
    /// Fraction of the ground truth a lane must cover, in `(0, 1]`.
    pub coverage_goal: f64,
    /// Maximum tolerated false-positive rate, in `[0, 1]`.
    pub max_fpr: f64,
}

impl RaceTarget {
    /// Creates a race target.
    ///
    /// # Panics
    /// Panics if `coverage_goal` is outside `(0, 1]` or `max_fpr` is
    /// outside `[0, 1]`.
    pub fn new(conditions: TargetConditions, coverage_goal: f64, max_fpr: f64) -> Self {
        assert!(
            coverage_goal > 0.0 && coverage_goal <= 1.0,
            "coverage goal must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&max_fpr),
            "max FPR must be in [0, 1]"
        );
        Self {
            conditions,
            coverage_goal,
            max_fpr,
        }
    }
}

/// The default candidate portfolio: the brute-force control lane plus the
/// paper's three reach families at two aggressiveness levels each (§6's
/// tradeoff axes). `max_iterations` caps every lane.
///
/// # Panics
/// Panics if `max_iterations == 0`.
pub fn default_candidates(max_iterations: u32) -> Vec<StrategySpec> {
    [
        ReachConditions::brute_force(),
        ReachConditions::interval_offset(Ms::new(256.0)),
        ReachConditions::interval_offset(Ms::new(512.0)),
        ReachConditions::temp_offset(5.0),
        ReachConditions::temp_offset(10.0),
        ReachConditions::new(Ms::new(256.0), 5.0),
        ReachConditions::new(Ms::new(512.0), 10.0),
    ]
    .into_iter()
    .map(|reach| StrategySpec::new(reach, max_iterations))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reaper_dram_model::Celsius;

    #[test]
    fn strategy_names_roundtrip_in_canonical_order() {
        let names: Vec<_> = Strategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["brute_force", "delta_refw", "delta_t", "combined"]);
        for s in Strategy::ALL {
            assert_eq!(Strategy::parse(s.name()), Some(s));
        }
        assert_eq!(Strategy::parse("warp"), None);
    }

    #[test]
    fn spec_classifies_strategy_families() {
        let cases = [
            (ReachConditions::brute_force(), Strategy::BruteForce),
            (
                ReachConditions::interval_offset(Ms::new(250.0)),
                Strategy::DeltaRefw,
            ),
            (ReachConditions::temp_offset(5.0), Strategy::DeltaTemp),
            (ReachConditions::new(Ms::new(250.0), 5.0), Strategy::Combined),
        ];
        for (reach, want) in cases {
            assert_eq!(StrategySpec::new(reach, 4).strategy(), want);
        }
    }

    #[test]
    fn sort_keys_are_intrinsic_and_distinct_in_default_set() {
        let cands = default_candidates(8);
        assert_eq!(cands.len(), 7);
        let mut keys: Vec<_> = cands.iter().map(StrategySpec::sort_key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), cands.len(), "default candidates must be distinct");
        // The key ignores nothing the candidate is made of.
        let a = StrategySpec::new(ReachConditions::temp_offset(5.0), 4);
        let b = StrategySpec::new(ReachConditions::temp_offset(5.0), 5);
        assert_ne!(a.sort_key(), b.sort_key());
    }

    #[test]
    fn unit_cost_is_interval_plus_pass_cost() {
        let target = TargetConditions::new(Ms::new(1024.0), Celsius::new(45.0));
        let spec = StrategySpec::new(ReachConditions::interval_offset(Ms::new(256.0)), 4);
        assert_eq!(spec.unit_cost(target), Ms::new(1024.0 + 256.0 + 250.0));
    }

    #[test]
    #[should_panic(expected = "coverage goal")]
    fn race_target_rejects_zero_goal() {
        RaceTarget::new(TargetConditions::paper_example(), 0.0, 0.5);
    }
}
