//! The racing determinism contract, property-tested: the portfolio's
//! winner and returned profile are byte-identical across thread counts
//! {1, 4}, candidate orderings, and prior states, and agree with a
//! sequential run-every-candidate reference.

#![allow(clippy::expect_used, clippy::unwrap_used, clippy::indexing_slicing)]

use proptest::prelude::*;

use reaper_core::{PatternSet, ReachConditions, TargetConditions};
use reaper_dram_model::{Celsius, Ms, Vendor};
use reaper_exec::set_thread_count;
use reaper_portfolio::{
    Portfolio, PriorStore, RaceOutcome, RaceTarget, SoloRun, Strategy, StrategySpec,
};

fn portfolio(seed: u64, coverage_goal: f64) -> Portfolio {
    Portfolio::new(
        Vendor::B,
        1,
        64,
        seed,
        RaceTarget::new(
            TargetConditions::new(Ms::new(512.0), Celsius::new(45.0)),
            coverage_goal,
            1.0,
        ),
        PatternSet::Standard,
        vec![
            StrategySpec::new(ReachConditions::brute_force(), 6),
            StrategySpec::new(ReachConditions::interval_offset(Ms::new(128.0)), 6),
            StrategySpec::new(ReachConditions::interval_offset(Ms::new(256.0)), 6),
            StrategySpec::new(ReachConditions::temp_offset(5.0), 6),
        ],
    )
}

/// Decodes `code` into a permutation of `0..n` (Lehmer-style), so any
/// u64 names a valid candidate ordering without needing a shuffle
/// strategy.
fn permutation(mut code: u64, n: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(n);
    for remaining in (1..=n).rev() {
        let pick = usize::try_from(code % remaining as u64).expect("remaining ≤ n");
        code /= remaining as u64;
        out.push(pool.remove(pick));
    }
    out
}

/// Decodes `code` into an arbitrary prior state: up to 8 recorded wins
/// spread across the strategy families.
fn priors_from(mut code: u64) -> PriorStore {
    let mut store = PriorStore::new();
    let wins = code % 9;
    for _ in 0..wins {
        code = code.wrapping_mul(6364136223846793005).wrapping_add(1);
        let strategy = Strategy::ALL[usize::try_from(code % 4).expect("0..4 fits")];
        store.record_win(Vendor::B, strategy);
    }
    store
}

/// Runs the race under an explicit thread count, restoring the default
/// afterwards even on panic.
fn race_at(threads: usize, p: &Portfolio, order: &[usize]) -> RaceOutcome {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_thread_count(None);
        }
    }
    let _restore = Restore;
    set_thread_count(Some(threads));
    p.run_ordered(order)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn race_outcome_is_invariant_to_threads_orderings_and_priors(
        seed in 1u64..64,
        order_code in any::<u64>(),
        prior_code in any::<u64>(),
    ) {
        let p = portfolio(seed, 0.9);
        let n = p.candidates().len();

        // Sequential run-all reference: every candidate solo, winner by
        // (met, cost, intrinsic key) — the race must agree exactly.
        let solos: Vec<SoloRun> = (0..n).map(|i| p.run_solo(i)).collect();
        let reference = p.run();

        let best_solo = solos
            .iter()
            .filter(|s| s.met)
            .min_by(|a, b| {
                a.cost
                    .as_ms()
                    .total_cmp(&b.cost.as_ms())
                    .then_with(|| a.spec.sort_key().cmp(&b.spec.sort_key()))
            });
        if let Some(best) = best_solo {
            prop_assert!(reference.target_met);
            prop_assert_eq!(reference.winner, best.spec);
            prop_assert_eq!(reference.winner_cost, best.cost);
        } else {
            prop_assert!(!reference.target_met);
        }

        let order = permutation(order_code, n);
        let priors = priors_from(prior_code);
        let prior_order = priors.launch_order(Vendor::B, p.candidates());

        for threads in [1usize, 4] {
            for launch in [&order, &prior_order] {
                let raced = race_at(threads, &p, launch);
                prop_assert_eq!(&raced, &reference,
                    "threads={} launch={:?}", threads, launch);
                prop_assert_eq!(
                    raced.profile.to_bytes(),
                    reference.profile.to_bytes(),
                    "profile bytes diverged at threads={}", threads
                );
            }
        }
    }

    #[test]
    fn unreachable_targets_still_race_deterministically(
        seed in 1u64..16,
        order_code in any::<u64>(),
    ) {
        // Perfect coverage at zero FPR within one iteration: nobody can
        // meet it, so the fallback path is exercised.
        let p = Portfolio::new(
            Vendor::B,
            1,
            64,
            seed,
            RaceTarget::new(
                TargetConditions::new(Ms::new(512.0), Celsius::new(45.0)),
                1.0,
                0.0,
            ),
            PatternSet::Standard,
            vec![
                StrategySpec::new(ReachConditions::brute_force(), 1),
                StrategySpec::new(ReachConditions::interval_offset(Ms::new(128.0)), 1),
                StrategySpec::new(ReachConditions::interval_offset(Ms::new(256.0)), 1),
            ],
        );
        let reference = p.run();
        prop_assert!(!reference.target_met);
        let order = permutation(order_code, 3);
        for threads in [1usize, 4] {
            let raced = race_at(threads, &p, &order);
            prop_assert_eq!(&raced, &reference);
        }
    }
}
